//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest 1.x API its test suites use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! [`Just`] / [`prop::collection::vec`] strategies, the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map` combinators,
//! [`prop_oneof!`], [`any`], and the `prop_assert!` family.
//!
//! Differences from upstream, deliberate for size:
//!
//! * **no shrinking** — a failing case panics with its case index and
//!   seed, which is enough to re-run it deterministically;
//! * `prop_assert!` panics instead of returning `TestCaseError` (test
//!   outcome is identical);
//! * generation is driven by the workspace's vendored xoshiro `StdRng`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many consecutive filter rejections abort a test case.
const MAX_REJECTS: usize = 10_000;

/// A generation strategy for values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value. Filters retry internally (bounded).
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (resampled, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Combined filter + map: keeps `Some` results, resamples on `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("proptest filter rejected too many values: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!(
            "proptest filter_map rejected too many values: {}",
            self.reason
        );
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed alternative strategies
/// (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Returns the canonical full-domain strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Full-domain strategy backed by a closure.
struct FnStrategy<T>(fn(&mut StdRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                FnStrategy(|rng: &mut StdRng| {
                    rand::RngCore::next_u64(rng) as $t
                })
                .boxed()
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        FnStrategy(|rng: &mut StdRng| rng.gen_bool(0.5)).boxed()
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> BoxedStrategy<Self> {
        // Finite doubles spanning a broad magnitude range.
        FnStrategy(|rng: &mut StdRng| {
            let mag = rng.gen_range(-300.0f64..300.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * rng.gen_range(0.0f64..10.0) * 10f64.powf(mag / 30.0)
        })
        .boxed()
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::Rng;

        /// Size argument of [`vec()`]: an exact length or a length range.
        pub trait IntoSizeRange {
            /// Samples a concrete length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }
}

/// Runner configuration and execution (mirrors `proptest::test_runner`).
pub mod test_runner {
    use super::{SeedableRng, StdRng, Strategy};

    /// A failed property case (upstream's error type, panic-backed here).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A hard failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Number of cases to run per property (subset of upstream's config).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives one property: `cases` deterministic seeds, each generating
    /// from `strategy` and invoking `body`. `PROPTEST_CASES` overrides the
    /// configured count.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        strategy: &S,
        mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        for case in 0..cases {
            // Distinct, deterministic seed per case (SplitMix-style mix).
            let seed = (case as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03);
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.new_value(&mut rng);
            if let Err(e) = body(value) {
                panic!("property failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{any, prop, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests (see the crate docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, &strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        use crate::test_runner::{run, ProptestConfig};
        run(
            &ProptestConfig::with_cases(64),
            &(1usize..5, -2.0f64..2.0),
            |(n, x)| {
                assert!((1..5).contains(&n));
                assert!((-2.0..2.0).contains(&x));
                Ok(())
            },
        );
    }

    #[test]
    fn vec_and_oneof_compose() {
        use crate::test_runner::{run, ProptestConfig};
        let strat = prop::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 1..4)
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |&l| l > 0);
        run(&ProptestConfig::with_cases(32), &(strat,), |(l,)| {
            assert!((1..4).contains(&l));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(a in any::<u64>(), (b, c) in (1usize..4, 0.0f64..1.0)) {
            prop_assert!(b < 4);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a, a);
        }
    }
}
