//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of the `rand` 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range` /
//! `gen_bool` over integer and float ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the upstream ChaCha12, so
//! streams differ from crates-io `rand`, but every consumer in this
//! workspace only relies on *determinism per seed*, never on a specific
//! stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (full-period regardless of seed).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a random word to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by rejection (no modulo bias).
fn uniform_below(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let w = rng.next_u64();
        if w <= zone {
            return w % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let i = r.gen_range(10u64..=12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
