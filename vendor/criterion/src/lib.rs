//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], `sample_size`, and [`Bencher::iter`].
//!
//! Measurement model (simpler than upstream, same shape): a short warm-up
//! sizes an iteration batch so each sample spans ≥ ~2 ms, then
//! `sample_size` samples are timed and min / mean / median are reported.
//! Set `CRITERION_JSON=<path>` to also write all results of the process as
//! a JSON array — the CI smoke run uses this to publish
//! `BENCH_compile.json`.
//!
//! Command line: any non-flag argument is a substring filter on benchmark
//! ids; `--quick` cuts samples to 3; other flags cargo passes (e.g.
//! `--bench`) are ignored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target minimum wall-clock span of one sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// Id carrying only a parameter (group name supplies the prefix).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    batch: u64,
    samples: usize,
    collected: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, batching iterations so samples are measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: grow the batch until it spans the
        // target, so per-sample noise stays small for fast bodies.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let span = t.elapsed();
            if span >= SAMPLE_TARGET || batch >= 1 << 20 {
                break;
            }
            // Aim directly for the target from the observed speed.
            let scale = (SAMPLE_TARGET.as_nanos() / span.as_nanos().max(1)).max(2);
            batch = batch.saturating_mul(scale as u64).min(1 << 20);
        }
        self.batch = batch;
        self.collected.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.collected.push(t.elapsed());
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    samples: usize,
}

/// Shared measurement settings and result sink.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line filter / `--quick` (called by the group macro).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--quick" => self.sample_size = 3,
                "--bench" | "--test" => {}
                // Flags with a value we ignore.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => skip_value = true,
                a if a.starts_with('-') => {}
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = id.into_id();
        let samples = self.sample_size;
        self.run_one(id, samples, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            batch: 1,
            samples,
            collected: Vec::new(),
        };
        f(&mut b);
        if b.collected.is_empty() {
            // The closure never called `iter`.
            return;
        }
        let mut per_iter: Vec<f64> = b
            .collected
            .iter()
            .map(|d| d.as_nanos() as f64 / b.batch as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(median),
            per_iter.len(),
        );
        self.results.push(BenchResult {
            id,
            min_ns: min,
            mean_ns: mean,
            median_ns: median,
            samples: per_iter.len(),
        });
    }

    /// Writes all results as a JSON array to `CRITERION_JSON`, if set.
    fn write_json(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "  {{\"name\": {:?}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"samples\": {}}}{comma}\n",
                r.id, r.min_ns, r.mean_ns, r.median_ns, r.samples
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_json();
    }
}

/// A named group sharing settings, created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, samples, f);
    }

    /// Benchmarks `f` with a borrowed input as `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function (`criterion_group!(name, f1, f2)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(2.5).into_id(), "2.5");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[1].id, "grp/7");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = Some("match".into());
        c.bench_function("other", |b| b.iter(|| 1));
        assert!(c.results.is_empty());
        c.bench_function("match_this", |b| b.iter(|| 1));
        assert_eq!(c.results.len(), 1);
    }
}
