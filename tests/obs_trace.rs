//! Golden-file and well-formedness tests for the compile pipeline's
//! observability export: a 2-cube compile must emit a Chrome-tracing JSON
//! document that parses, whose spans are properly nested (the four compile
//! phases under the root `compile` span, the LP phases under their
//! candidate), and whose span structure matches a checked-in golden file.
//! The no-op recorder must emit nothing at all.

use sr::obs::{MetricsRecorder, Recorder, SpanRecord, NOOP};
use sr::prelude::*;

/// Compile a 3-stage chain on a binary 2-cube with a fully serial search
/// and a live recorder. The workload compiles on the first candidate, so
/// the span sequence is small and stable — ideal for a golden file.
fn compile_2cube_recorded() -> (MetricsRecorder, Schedule) {
    let cube = GeneralizedHypercube::binary(2).unwrap();
    let tfg = sr::tfg::generators::chain(3, 500, 640);
    let alloc = sr::mapping::greedy(&tfg, &cube);
    let timing = Timing::new(64.0, 10.0);
    let config = CompileConfig {
        parallelism: 1,
        ..CompileConfig::default()
    };
    let rec = MetricsRecorder::new();
    let sched = compile_with_recorder(&cube, &tfg, &alloc, &timing, 200.0, &config, &rec)
        .expect("2-cube chain compiles");
    (rec, sched)
}

/// Render spans (already in begin order) as `depth name` lines. With a
/// serial search everything runs on one logical thread, so nesting depth
/// follows from interval containment: a span is a child of the innermost
/// earlier span that has not yet ended when it starts.
fn depth_lines(spans: &[SpanRecord]) -> String {
    let mut stack: Vec<f64> = Vec::new(); // end times of open ancestors
    let mut out = String::new();
    for s in spans {
        let end = s.start_us + s.dur_us.expect("compile closes every span");
        while let Some(&top) = stack.last() {
            if s.start_us >= top {
                stack.pop();
            } else {
                break;
            }
        }
        out.push_str(&format!("{} {}\n", stack.len(), s.name));
        stack.push(end);
    }
    out
}

#[test]
fn two_cube_compile_matches_golden_span_structure() {
    let (rec, sched) = compile_2cube_recorded();
    assert!(sched.peak_utilization() <= 1.0 + 1e-9);

    let got = depth_lines(&rec.spans());
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/trace_2cube.txt"
    );
    let want = std::fs::read_to_string(golden_path).expect("golden file exists");
    assert_eq!(
        got, want,
        "span structure drifted from tests/golden/trace_2cube.txt;\n\
         if the change is intentional, update the golden file to:\n{got}"
    );
}

// ---------------------------------------------------------------------------
// A tiny recursive-descent JSON validator — enough to prove the trace is
// well-formed without pulling in a JSON dependency.
// ---------------------------------------------------------------------------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn new(s: &'a str) -> Self {
        Json {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        self.ws();
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit} at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(|_| ())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.b.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {
                            out.push(esc as char)
                        }
                        b'u' => {
                            self.i += 4;
                            out.push('?');
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.string()?;
            self.eat(b':')?;
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("bad object at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("bad array at byte {}", self.i)),
            }
        }
    }

    fn document(mut self) -> Result<(), String> {
        self.value()?;
        self.ws();
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.i))
        }
    }
}

#[test]
fn chrome_trace_is_well_formed_json() {
    let (rec, _) = compile_2cube_recorded();
    let json = rec.chrome_trace_json();

    Json::new(&json).document().expect("trace parses as JSON");

    // Structural spot checks: the container keys, the process-name
    // metadata event, and complete events carrying timestamps/durations.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    assert!(json.contains("\"ph\":\"M\""));
    assert!(json.contains("\"process_name\""));
    for key in [
        "\"name\":\"compile\"",
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":1",
    ] {
        assert!(json.contains(key), "trace JSON missing {key}");
    }
    // Every phase span must surface in the trace, and the LP phases must
    // carry their pivot-counter args for chrome://tracing's detail pane.
    for name in [
        "phase.time_bounds",
        "phase.assign_paths",
        "phase.allocate_intervals",
        "phase.schedule_intervals",
        "phase.build_node_schedules",
        "candidate",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "missing span {name}"
        );
    }
    assert!(json.contains("\"lp_pivots\""), "LP phases carry pivot args");
}

#[test]
fn spans_are_nested_or_disjoint() {
    let (rec, _) = compile_2cube_recorded();
    let spans = rec.spans();
    assert!(!spans.is_empty());
    let eps = 1e-6;
    for (i, a) in spans.iter().enumerate() {
        let (a0, a1) = (a.start_us, a.start_us + a.dur_us.unwrap());
        for b in &spans[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let (b0, b1) = (b.start_us, b.start_us + b.dur_us.unwrap());
            let disjoint = b0 >= a1 - eps || a0 >= b1 - eps;
            let a_in_b = b0 <= a0 + eps && a1 <= b1 + eps;
            let b_in_a = a0 <= b0 + eps && b1 <= a1 + eps;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans {} and {} partially overlap",
                a.name,
                b.name
            );
        }
    }
}

#[test]
fn noop_recorder_emits_nothing() {
    // The no-op recorder is the default for `compile()`: it must report
    // disabled, hand out the sentinel span id, and never allocate.
    assert!(!NOOP.enabled());
    let id = NOOP.begin_span("compile", "");
    assert_eq!(id, sr::obs::SpanId::NONE);
    NOOP.end_span(id);
    NOOP.add("search.candidates_walked", 1);
    NOOP.observe("wormhole.blocked_us", 1.0);

    // An untouched metrics recorder exports an empty trace (metadata only,
    // no complete events) and no counters.
    let rec = MetricsRecorder::new();
    let json = rec.chrome_trace_json();
    Json::new(&json).document().expect("empty trace parses");
    assert!(!json.contains("\"ph\":\"X\""));
    assert!(rec.counters().is_empty());
}
