//! Tier-1 test of the runtime-observability layer on the §3 Claim workload:
//! the OI analyzer must *measure* what `claim.rs` asserts — a nonzero
//! output-interval spread with cross-invocation blocking under wormhole
//! flow-control, and exactly-`τ_in` spacing in the scheduled-routing replay
//! of the identical workload — and the event streams feeding it must be
//! deterministic regardless of compile parallelism.

use sr::prelude::*;
use sr::topology::NodeId;

const PERIOD: f64 = 120.0;
const CFG: SimConfig = SimConfig {
    invocations: 40,
    warmup: 6,
};

fn claim_setup() -> (GeneralizedHypercube, TaskFlowGraph, Allocation, Timing) {
    let cube = GeneralizedHypercube::binary(3).unwrap();
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0);
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &cube,
    )
    .unwrap();
    (cube, tfg, alloc, timing)
}

#[test]
fn analyzer_sees_wormhole_inconsistency_and_its_cause() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let sink = RingEventSink::with_capacity(1 << 16);
    let res = sim.run_with_events(PERIOD, &CFG, &sink).unwrap();
    assert!(!res.deadlocked());

    let report = analyze_oi(&sink.events(), PERIOD, CFG.warmup);
    // Nonzero OI spread, in agreement with the simulator's own statistics.
    assert!(!report.is_consistent(1e-6));
    assert!(
        report.max_deviation_us > 25.0,
        "expected strong alternation, got {:.3} µs",
        report.max_deviation_us
    );
    let stats = res.interval_stats();
    let analyzer_max = report.interval_summary.as_ref().expect("intervals").max;
    assert!(
        (analyzer_max - stats.max).abs() < 1e-6,
        "analyzer max {analyzer_max} vs simulator max {}",
        stats.max
    );
    // The Claim's mechanism is visible in the blocking chains: a message of
    // a later invocation stalls behind one of an *earlier* invocation.
    assert!(
        report.cross_invocation_stalls() > 0,
        "no cross-invocation stall attributed:\n{}",
        report.render()
    );
    assert!(report.render().contains("OUTPUT INCONSISTENCY"));
}

#[test]
fn scheduled_replay_holds_exactly_tau_in() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        PERIOD,
        &CompileConfig::default(),
    )
    .expect("claim scenario compiles");
    verify(&sched, &cube, &tfg).expect("schedule verifies");

    let events = replay_events(&sched, &tfg, &timing, CFG.invocations).expect("replays");
    // Structural contrast with wormhole: scheduled routing never blocks a
    // header — every message finds a completely clear path.
    assert!(
        !events.iter().any(|e| e.kind == SimEventKind::HeaderBlocked),
        "scheduled replay emitted a header block"
    );

    let report = analyze_oi(&events, PERIOD, CFG.warmup);
    assert_eq!(report.outputs.len(), CFG.invocations - CFG.warmup);
    assert!(report.stalls.is_empty());
    assert!(
        report.is_consistent(1e-9),
        "δ deviates by {} µs",
        report.max_deviation_us
    );
    assert!(report.render().contains("consistent"));
}

/// The event stream is produced by the single-threaded simulator core and
/// the pure replay, so its content must not depend on `--parallelism` (which
/// only fans out the compile feedback search) or on the run count.
#[test]
fn event_streams_are_deterministic_across_parallelism() {
    let (cube, tfg, alloc, timing) = claim_setup();

    // Two identical simulator runs → identical streams.
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let take = |sink: &RingEventSink| {
        sink.events()
            .iter()
            .map(|e| {
                (
                    e.time_us.to_bits(),
                    e.kind,
                    e.message,
                    e.invocation,
                    e.channel,
                )
            })
            .collect::<Vec<_>>()
    };
    let s1 = RingEventSink::with_capacity(1 << 16);
    let s2 = RingEventSink::with_capacity(1 << 16);
    sim.run_with_events(PERIOD, &CFG, &s1).unwrap();
    sim.run_with_events(PERIOD, &CFG, &s2).unwrap();
    assert_eq!(take(&s1), take(&s2));

    // Replays of schedules compiled at different parallelism levels →
    // identical streams (the compiler is parallelism-invariant).
    let mut streams = Vec::new();
    for parallelism in [1, 4] {
        let sched = compile(
            &cube,
            &tfg,
            &alloc,
            &timing,
            PERIOD,
            &CompileConfig {
                parallelism,
                ..CompileConfig::default()
            },
        )
        .expect("compiles");
        let events = replay_events(&sched, &tfg, &timing, CFG.invocations).unwrap();
        streams.push(
            events
                .iter()
                .map(|e| {
                    (
                        e.time_us.to_bits(),
                        e.kind,
                        e.message,
                        e.invocation,
                        e.channel,
                    )
                })
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(streams[0], streams[1]);
}
