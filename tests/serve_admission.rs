//! The serve acceptance scenario: a resident 8×8-torus daemon carrying 24
//! tenants admits a 25th on the warm path without perturbing any admitted
//! tenant's schedule — asserted bit-identically, segment for segment and
//! allocation row for row.
//!
//! The warm-path latency itself is measured by the `admission_latency`
//! bench (BENCH_serve.json); this test asserts a generous wall-clock bound
//! by default and the strict sub-millisecond budget when
//! `SR_STRICT_TIMING=1` (set on release-built CI bench hardware).

use std::collections::BTreeMap;
use std::time::Instant;

use sr::serve::{AdmitRung, Engine, Placement, ServeConfig, TenantSpec};
use sr::tfg::MessageId;
use sr::topology::{LinkId, Torus};

/// Tenant `i`: a two-task chain on its own node pair of the 64-node torus
/// (tenants 0..=24 cover nodes 0..=49, so placements never collide and
/// the mix of message sizes still varies per tenant).
fn spec(i: usize) -> TenantSpec {
    let base = (i * 2) % 62;
    TenantSpec {
        name: format!("app{i:02}"),
        tfg_text: format!(
            "task src{i} 200\ntask dst{i} 240\nmsg m{i} src{i} -> dst{i} {}",
            256 + 32 * (i % 8)
        ),
        placement: Placement::Nodes(vec![base, base + 1]),
        best_effort: false,
    }
}

fn engine() -> Engine {
    let topo = Torus::new(&[8, 8]).expect("torus");
    Engine::new(
        Box::new(topo),
        ServeConfig {
            period: 200.0,
            ..ServeConfig::default()
        },
    )
}

type Snapshot = (
    Vec<sr::core::Segment>,
    Vec<Vec<f64>>,
    BTreeMap<LinkId, Vec<(f64, f64)>>,
);

fn snapshot(eng: &Engine, name: &str) -> Snapshot {
    let t = eng.tenant(name).expect("admitted tenant");
    let s = t.schedule.as_ref().expect("real-time schedule");
    let rows = (0..s.assignment().len())
        .map(|m| s.allocation().row(MessageId(m)).to_vec())
        .collect();
    (s.segments().to_vec(), rows, t.spans.clone())
}

#[test]
fn twenty_fifth_tenant_admits_warm_without_perturbing_the_other_24() {
    let mut eng = engine();
    for i in 0..24 {
        let report = eng.admit(&spec(i), &sr::obs::NOOP).expect("tenant admits");
        assert!(
            matches!(report.rung, AdmitRung::Fast | AdmitRung::Adapted),
            "tenant {i} fell to rung {:?}",
            report.rung
        );
    }
    let before: Vec<Snapshot> = (0..24).map(|i| snapshot(&eng, &spec(i).name)).collect();

    // Prime the warm path: one cold admission fills the per-tenant memo
    // (standalone compile + admission result), then eviction restores the
    // 24-tenant ledger bit-identically.
    let cold_start = Instant::now();
    eng.admit(&spec(24), &sr::obs::NOOP)
        .expect("cold admission");
    let cold = cold_start.elapsed();
    let expected = snapshot(&eng, &spec(24).name);
    eng.evict(&spec(24).name, &sr::obs::NOOP).expect("evicts");

    // The warm re-admission: memoized end to end.
    let rec = sr::obs::MetricsRecorder::new();
    let warm_start = Instant::now();
    let report = eng.admit(&spec(24), &rec).expect("warm admission");
    let warm = warm_start.elapsed();
    assert!(
        report.replayed,
        "warm path should replay the memoized result"
    );
    assert_eq!(rec.counters()["serve.admit.replayed"], 1);

    // The 25th tenant reproduces its first admission exactly...
    assert_eq!(snapshot(&eng, &spec(24).name), expected);
    // ...and no admitted tenant moved, bit for bit.
    for (i, snap) in before.iter().enumerate() {
        assert_eq!(
            &snapshot(&eng, &spec(i).name),
            snap,
            "tenant {i} was perturbed"
        );
    }
    eng.check_invariants().expect("pinning contract holds");

    // Wall-clock budget: <1 ms warm on release bench hardware
    // (SR_STRICT_TIMING=1); a generous bound otherwise so debug builds and
    // loaded CI runners don't flake.
    let budget_ms = if std::env::var_os("SR_STRICT_TIMING").is_some_and(|v| v == "1") {
        1.0
    } else {
        250.0
    };
    assert!(
        warm.as_secs_f64() * 1e3 < budget_ms,
        "warm admission took {warm:?} (budget {budget_ms} ms, cold was {cold:?})"
    );
}

#[test]
fn warm_admission_beats_cold_on_a_loaded_fabric() {
    let mut eng = engine();
    for i in 0..24 {
        eng.admit(&spec(i), &sr::obs::NOOP).expect("tenant admits");
    }
    // Cold: the 25th spec has never been seen.
    let cold_start = Instant::now();
    eng.admit(&spec(24), &sr::obs::NOOP).expect("cold");
    let cold = cold_start.elapsed();
    eng.evict(&spec(24).name, &sr::obs::NOOP).expect("evict");
    // Warm it up once more and measure the replay.
    let warm_start = Instant::now();
    let report = eng.admit(&spec(24), &sr::obs::NOOP).expect("warm");
    let warm = warm_start.elapsed();
    assert!(report.replayed);
    // The warm path does no compile work; even on noisy runners it should
    // not be slower than the cold path by more than measurement jitter.
    assert!(
        warm <= cold.max(std::time::Duration::from_millis(5)),
        "warm {warm:?} vs cold {cold:?}"
    );
}

#[test]
fn saturating_the_fabric_yields_a_diagnosed_rejection() {
    let topo = Torus::new(&[4, 4]).expect("torus");
    let mut eng = Engine::new(
        Box::new(topo),
        ServeConfig {
            period: 30.0,
            ..ServeConfig::default()
        },
    );
    // Fill one node pair with heavy traffic, then ask for more of it.
    let heavy = |name: &str| TenantSpec {
        name: name.to_string(),
        tfg_text: "task a 100\ntask b 100\nmsg m a -> b 1500".to_string(),
        placement: Placement::Nodes(vec![0, 1]),
        best_effort: false,
    };
    eng.admit(&heavy("h0"), &sr::obs::NOOP)
        .expect("first heavy tenant");
    let mut rejected = 0;
    for k in 1..6 {
        match eng.admit(&heavy(&format!("h{k}")), &sr::obs::NOOP) {
            Ok(_) => {}
            Err(sr::serve::AdmitError::Infeasible(rej)) => {
                rejected += 1;
                assert!(!rej.detail.is_empty());
                assert!(rej.rungs_tried >= 1);
            }
            Err(e) => panic!("unexpected admit error: {e:?}"),
        }
    }
    assert!(rejected > 0, "saturation never produced a rejection");
    eng.check_invariants()
        .expect("rejections leave the ledger clean");
}
