//! Property-based testing of incremental schedule repair: over random
//! task-flow graphs, topologies, and fault draws, any repair that produces a
//! schedule must pass the replay verifier on the masked topology, avoid
//! every failed resource, and leave each unaffected message's path,
//! allocation row, and Ω switching commands bit-identical.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sr::prelude::*;
use sr::tfg::generators::{layered_random, LayeredParams};
use sr::tfg::MessageId;

#[derive(Debug, Clone)]
enum TopoSpec {
    Cube(usize),
    Ghc(Vec<usize>),
    Torus(Vec<usize>),
}

fn topo_spec() -> impl Strategy<Value = TopoSpec> {
    prop_oneof![
        (2usize..5).prop_map(TopoSpec::Cube),
        prop::collection::vec(2usize..4, 1..3).prop_map(TopoSpec::Ghc),
        prop::collection::vec(3usize..5, 1..3).prop_map(TopoSpec::Torus),
    ]
}

fn build(spec: &TopoSpec) -> Box<dyn Topology> {
    match spec {
        TopoSpec::Cube(d) => Box::new(GeneralizedHypercube::binary(*d).unwrap()),
        TopoSpec::Ghc(r) => Box::new(GeneralizedHypercube::new(r).unwrap()),
        TopoSpec::Torus(e) => Box::new(Torus::new(e).unwrap()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Repair soundness: whenever a random fault draw on a compiled random
    /// workload yields a repaired/degraded schedule, that schedule verifies
    /// on the masked topology and the unaffected messages are untouched.
    #[test]
    fn repair_is_sound_and_pins_unaffected_messages(
        spec in topo_spec(),
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        k in 1usize..4,
        load in 0.3f64..0.8,
    ) {
        // The vendored proptest only builds strategies from ≤6-tuples;
        // derive the criticality toggle from the fault seed instead.
        let all_critical = fault_seed % 2 == 0;
        let topo = build(&spec);
        let params = LayeredParams { layers: 3, width: 2, edge_probability: 0.6,
            ops: (500, 1500), bytes: (64, 1024) };
        let tfg = layered_random(seed, &params);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr::mapping::random(&tfg, topo.as_ref(), alloc_seed);
        let period = timing.longest_task(&tfg) / load;

        let Ok(sched) = compile(topo.as_ref(), &tfg, &alloc, &timing, period,
            &CompileConfig::default()) else { return Ok(()); };

        let faults = FaultSet::random_links(topo.as_ref(), k, fault_seed);
        let config = RepairConfig {
            critical: if all_critical { None } else { Some(vec![false; tfg.num_messages()]) },
            ..RepairConfig::default()
        };
        let outcome = repair(&sched, topo.as_ref(), &tfg, &timing, &faults, &config);
        let report = analyze_damage(&sched, &faults);

        match outcome.verdict {
            RepairVerdict::Unchanged => {
                prop_assert!(report.is_clean());
                prop_assert!(outcome.schedule.is_some());
            }
            RepairVerdict::Infeasible => prop_assert!(outcome.schedule.is_none()),
            RepairVerdict::Repaired | RepairVerdict::Degraded => {
                let repaired = outcome.schedule.as_ref().expect("schedule present");
                // The replay verifier accepts it on the masked topology and
                // no failed resource is used.
                let masked = MaskedTopology::new(topo.as_ref(), faults.clone());
                verify(repaired, &masked, &tfg)
                    .map_err(|e| TestCaseError::fail(format!("masked verify failed: {e}")))?;
                verify_with_faults(repaired, topo.as_ref(), &tfg, &faults)
                    .map_err(|e| TestCaseError::fail(format!("fault verify failed: {e}")))?;

                // Pinning: unaffected messages are bit-identical.
                let pinned: BTreeSet<MessageId> = report.unaffected.iter().copied().collect();
                for &m in &report.unaffected {
                    prop_assert_eq!(sched.assignment().path(m).nodes(),
                        repaired.assignment().path(m).nodes());
                    prop_assert_eq!(sched.allocation().row(m), repaired.allocation().row(m));
                }
                let segs = |s: &Schedule| s.segments().iter()
                    .filter(|seg| pinned.contains(&seg.message)).copied().collect::<Vec<_>>();
                prop_assert_eq!(segs(&sched), segs(repaired));
                for (old, new) in sched.node_schedules().iter().zip(repaired.node_schedules()) {
                    let omega = |ns: &sr::core::NodeSchedule| ns.commands().iter()
                        .filter(|c| pinned.contains(&c.message)).copied().collect::<Vec<_>>();
                    prop_assert_eq!(omega(old), omega(new));
                }

                // Dropped/demoted traffic really is off the schedule.
                for &m in outcome.dropped.iter().chain(outcome.demoted.iter().map(|(m, _)| m)) {
                    prop_assert!(repaired.assignment().links(m).is_empty());
                }
            }
        }
    }
}
