//! Golden-transcript smoke test for `srsched serve --stdio`: spawns the
//! real binary, drives a full session (admit, duplicate, list, query,
//! evict, malformed bytes, unknown op, stats, shutdown) over the framed
//! protocol, and pins every response byte-for-byte in
//! `tests/golden/serve_session.txt`.
//!
//! The one exception is the `stats` response, whose Prometheus payload is
//! deterministic but long and counter-set-coupled; its golden line is the
//! marker `<STATS>` and the test substring-checks the load-bearing metric
//! names instead.

use std::io::{Read, Write};
use std::process::{Command, Stdio};

const REQUESTS: &[&str] = &[
    r#"{"op":"admit","tenant":{"name":"cam0","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#,
    r#"{"op":"admit","tenant":{"name":"cam0","tfg":"task a 100\ntask b 100\nmsg m a -> b 256","placement":[0,1]}}"#,
    r#"{"op":"admit","tenant":{"name":"cam1","tfg":"task a 100\ntask b 100\nmsg m a -> b 512","placement":[5,6]}}"#,
    r#"{"op":"list"}"#,
    r#"{"op":"query","tenant":"cam0"}"#,
    r#"{"op":"evict","tenant":"cam1"}"#,
    r#"{oops"#,
    r#"{"op":"frobnicate"}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"shutdown"}"#,
];

fn frames(requests: &[&str]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in requests {
        out.extend_from_slice(&(r.len() as u32).to_be_bytes());
        out.extend_from_slice(r.as_bytes());
    }
    out
}

fn read_frames(mut bytes: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    while bytes.len() >= 4 {
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert!(bytes.len() >= 4 + len, "truncated frame in daemon output");
        out.push(String::from_utf8(bytes[4..4 + len].to_vec()).expect("UTF-8 response"));
        bytes = &bytes[4 + len..];
    }
    assert!(bytes.is_empty(), "trailing bytes after the last frame");
    out
}

#[test]
fn stdio_session_matches_golden_transcript() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_srsched"))
        .args([
            "serve",
            "--stdio",
            "--topo",
            "torus:4x4",
            "--period",
            "200",
            "--parallelism",
            "1",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn srsched serve --stdio");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(&frames(REQUESTS))
        .expect("write request frames");
    let mut output = Vec::new();
    child
        .stdout
        .take()
        .expect("stdout")
        .read_to_end(&mut output)
        .expect("read response frames");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exited with {status}");

    let responses = read_frames(&output);
    assert_eq!(responses.len(), REQUESTS.len());

    // Load-bearing assertions that survive any golden refresh.
    assert!(
        responses[0].contains("\"rung\":\"fast\""),
        "{}",
        responses[0]
    );
    assert!(
        responses[1].contains("\"kind\":\"duplicate_tenant\""),
        "{}",
        responses[1]
    );
    assert!(
        responses[6].contains("\"kind\":\"malformed\""),
        "{}",
        responses[6]
    );
    let stats = &responses[8];
    for metric in [
        "sr_serve_requests_total",
        "sr_serve_admit_total",
        "sr_serve_admit_fast_total",
        "sr_serve_errors_duplicate_tenant_total",
        "sr_serve_errors_malformed_total",
        "sr_serve_evict_total",
    ] {
        assert!(
            stats.contains(metric),
            "stats response lacks {metric}: {stats}"
        );
    }

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/serve_session.txt"
    );
    let want = std::fs::read_to_string(golden_path).expect("golden transcript");
    let got: Vec<String> = responses
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i == 8 {
                "<STATS>".to_string()
            } else {
                r.clone()
            }
        })
        .collect();
    let want_lines: Vec<&str> = want.lines().collect();
    assert_eq!(
        got,
        want_lines,
        "serve transcript drifted from {golden_path}; if intentional, update it to:\n{}",
        got.join("\n")
    );
}
