//! Round-trip test for [`Schedule::to_json`]: parse the exported JSON back
//! with a minimal hand-rolled parser (the export is dependency-free, so the
//! check is too) and compare every field against the live schedule's
//! summary and switching tables.

use std::collections::BTreeMap;

use sr::prelude::*;
use sr::tfg::MessageId;
use sr::topology::NodeId;

// ---------------------------------------------------------------------------
// A tiny JSON reader, sufficient for the documented export shape: objects,
// arrays, numbers, and plain strings (the export emits no escapes).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn num(&self) -> f64 {
        match self {
            Json::Num(x) => *x,
            other => panic!("expected number, got {other:?}"),
        }
    }
    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected object, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.i, p.s.len(), "trailing garbage at byte {}", p.i);
        v
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) {
        self.skip_ws();
        assert_eq!(
            self.s.get(self.i),
            Some(&c),
            "expected '{}' at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match self.s[self.i] {
            b'{' => {
                self.i += 1;
                let mut m = BTreeMap::new();
                self.skip_ws();
                if self.s[self.i] == b'}' {
                    self.i += 1;
                    return Json::Obj(m);
                }
                loop {
                    let key = match self.value() {
                        Json::Str(k) => k,
                        other => panic!("non-string key {other:?}"),
                    };
                    self.eat(b':');
                    m.insert(key, self.value());
                    self.skip_ws();
                    match self.s[self.i] {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Json::Obj(m);
                        }
                        c => panic!("unexpected '{}' in object", c as char),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut v = Vec::new();
                self.skip_ws();
                if self.s[self.i] == b']' {
                    self.i += 1;
                    return Json::Arr(v);
                }
                loop {
                    v.push(self.value());
                    self.skip_ws();
                    match self.s[self.i] {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Json::Arr(v);
                        }
                        c => panic!("unexpected '{}' in array", c as char),
                    }
                }
            }
            b'"' => {
                self.i += 1;
                let start = self.i;
                while self.s[self.i] != b'"' {
                    self.i += 1;
                }
                let s = std::str::from_utf8(&self.s[start..self.i]).unwrap().into();
                self.i += 1;
                Json::Str(s)
            }
            _ => {
                let start = self.i;
                while self.i < self.s.len()
                    && matches!(
                        self.s[self.i],
                        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                    )
                {
                    self.i += 1;
                }
                Json::Num(
                    std::str::from_utf8(&self.s[start..self.i])
                        .unwrap()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad number at byte {start}")),
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------

fn compiled() -> (TaskFlowGraph, Schedule) {
    let topo = GeneralizedHypercube::binary(4).unwrap();
    let tfg = sr::tfg::generators::diamond(4, 500, 1280);
    let timing = Timing::new(64.0, 10.0);
    let alloc = sr::mapping::greedy(&tfg, &topo);
    let sched = compile(
        &topo,
        &tfg,
        &alloc,
        &timing,
        80.0,
        &CompileConfig::default(),
    )
    .expect("compiles");
    (tfg, sched)
}

#[test]
fn json_roundtrips_against_the_live_schedule() {
    let (tfg, sched) = compiled();
    let doc = Parser::parse(&sched.to_json());

    // Scalars.
    assert_eq!(doc.get("period_us").num(), sched.period());
    assert_eq!(doc.get("latency_us").num(), sched.latency());
    assert_eq!(doc.get("guard_time_us").num(), sched.guard_time());
    assert_eq!(doc.get("peak_utilization").num(), sched.peak_utilization());

    // Messages: one entry per message, path and segments verbatim.
    let messages = doc.get("messages").arr();
    assert_eq!(messages.len(), tfg.num_messages());
    for (i, m) in messages.iter().enumerate() {
        assert_eq!(m.get("id").num() as usize, i);
        let id = MessageId(i);
        let want_path: Vec<f64> = sched
            .assignment()
            .path(id)
            .nodes()
            .iter()
            .map(|n| n.index() as f64)
            .collect();
        let got_path: Vec<f64> = m.get("path").arr().iter().map(Json::num).collect();
        assert_eq!(got_path, want_path, "path of M{i}");
        let want_segs: Vec<(f64, f64)> = sched
            .segments()
            .iter()
            .filter(|s| s.message == id)
            .map(|s| (s.start, s.end))
            .collect();
        let got_segs: Vec<(f64, f64)> = m
            .get("segments")
            .arr()
            .iter()
            .map(|pair| (pair.arr()[0].num(), pair.arr()[1].num()))
            .collect();
        assert_eq!(got_segs, want_segs, "segments of M{i}");
    }

    // Nodes: array index == node id, commands match the switching tables.
    let nodes = doc.get("nodes").arr();
    assert_eq!(nodes.len(), sched.node_schedules().len());
    let port = |p: sr::core::Port| match p {
        sr::core::Port::Processor => "processor".to_string(),
        sr::core::Port::Link(l) => format!("link:{}", l.index()),
    };
    for (n, entry) in nodes.iter().enumerate() {
        assert_eq!(entry.get("node").num() as usize, n);
        let ns = sched.node_schedule(NodeId(n));
        let cmds = entry.get("commands").arr();
        assert_eq!(cmds.len(), ns.commands().len(), "command count on N{n}");
        for (c, want) in cmds.iter().zip(ns.commands()) {
            assert_eq!(c.get("start").num(), want.start);
            assert_eq!(c.get("end").num(), want.end);
            assert_eq!(c.get("from").str(), port(want.connection.from));
            assert_eq!(c.get("to").str(), port(want.connection.to));
            assert_eq!(c.get("message").num() as usize, want.message.index());
        }
    }
}

/// The compact `num()` formatting (`100.0` for integral values, shortest
/// round-trip otherwise) must stay lossless: every parsed float equals the
/// source float exactly, not approximately — checked above with `==`; this
/// test pins the two formats explicitly.
#[test]
fn number_formats_are_lossless() {
    let (_, sched) = compiled();
    let json = sched.to_json();
    assert!(json.contains("\"period_us\":80.0"), "integral format");
    let doc = Parser::parse(&json);
    // An LP-derived fractional quantity survives the round trip bit-exactly.
    assert_eq!(
        doc.get("latency_us").num().to_bits(),
        sched.latency().to_bits()
    );
}
