//! End-to-end test of the daemon's operational surfaces: a 24-tenant
//! admit/evict workload driven through the framed protocol while the
//! HTTP exposition listener and the audit journal are attached, followed
//! by `serve-replay` verification of the journal — including the
//! torn-final-line and rotated-prefix recovery paths.
//!
//! The engine here is built exactly as `srsched serve --topo torus:8x8
//! --period 200` would build it (all other knobs at their CLI defaults),
//! and the journal's genesis meta line records those same values — so
//! `serve-replay` reconstructs a bit-identical engine from the file
//! alone, which is the whole contract.

use std::io::{Read, Write};
use std::net::TcpStream;

use sr::prelude::*;
use sr::serve::Daemon;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sr_serve_ops_{name}_{}", std::process::id()));
    p
}

/// The engine `srsched serve --topo torus:8x8 --period 200` builds:
/// every other knob at its command-line default.
fn engine() -> sr::serve::Engine {
    let topo = sr_cli::parse_topology("torus:8x8").expect("topo");
    let config = CompileConfig {
        guard_time: 0.0,
        parallelism: 0,
        spare_capacity: 0.0,
        alloc_engine: AllocEngine::Simplex,
        partition: 0,
        ..CompileConfig::default()
    };
    let serve_cfg = sr::serve::ServeConfig {
        period: 200.0,
        timing: Timing::calibrated_dvb(64.0),
        feedback_scales: config.feedback_scales.clone(),
        batch_threads: 0,
        compile: config,
        ..sr::serve::ServeConfig::default()
    };
    sr::serve::Engine::new(topo, serve_cfg)
}

/// The genesis meta pairs the CLI would write for that invocation.
const META: &[(&str, &str)] = &[
    ("topo", "torus:8x8"),
    ("period", "200"),
    ("bandwidth", "64"),
    ("guard", "0"),
    ("spare", "0"),
    ("parallelism", "0"),
    ("partition", "0"),
    ("alloc_engine", "simplex"),
];

/// Tenant `i`: a two-task chain on its own node pair (the serve_drive
/// workload shape).
fn admit_req(i: usize) -> String {
    let a = (i * 2) % 62;
    let b = a + 1;
    format!(
        r#"{{"op":"admit","tenant":{{"name":"drv{i}","tfg":"task a{i} 100\ntask b{i} 100\nmsg m{i} a{i} -> b{i} 256","placement":[{a},{b}]}}}}"#
    )
}

fn ok_frame(daemon: &mut Daemon, request: &str) -> String {
    let (response, _stop) = daemon.handle_frame(request.as_bytes());
    assert!(response.contains("\"ok\":true"), "refused: {response}");
    response
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connects");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("reads");
    let (head, body) = text.split_once("\r\n\r\n").expect("has head");
    (head.to_string(), body.to_string())
}

fn replay(path: &std::path::Path) -> Result<String, String> {
    let opts = sr_cli::Options {
        command: "serve-replay".into(),
        input: Some(path.display().to_string()),
        ..sr_cli::Options::default()
    };
    let mut out = String::new();
    match sr_cli::run(&opts, &mut out) {
        Ok(()) => Ok(out),
        Err(e) => Err(format!("{e} (output so far: {out})")),
    }
}

fn clean(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(format!("{}.1", path.display()));
}

#[test]
fn workload_is_observed_and_replays_bit_identically() {
    let journal = tmp_path("workload");
    clean(&journal);
    let mut daemon = Daemon::new(engine());
    daemon.attach_journal(&journal, META).expect("journal");
    let addr = daemon.attach_http("127.0.0.1:0").expect("http");

    for i in 0..24 {
        ok_frame(&mut daemon, &admit_req(i));
    }
    for i in 0..4 {
        ok_frame(
            &mut daemon,
            &format!(r#"{{"op":"evict","tenant":"drv{i}"}}"#),
        );
    }

    // The scrape exposes the cumulative counters and the per-rung
    // latency histograms the workload just filled.
    let (head, metrics) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(metrics.contains("sr_serve_admit_total 24"), "{metrics}");
    assert!(metrics.contains("sr_serve_evict_total 4"), "{metrics}");
    assert!(
        metrics.contains("sr_serve_admit_latency_fast{quantile=\"0.5\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sr_serve_admit_latency_fast_count 24"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sr_serve_evict_latency{quantile=\"0.95\"}"),
        "{metrics}"
    );

    let (_, health) = http_get(addr, "/healthz");
    assert!(health.contains("\"ok\":true"), "{health}");
    assert!(health.contains("\"tenants\":20"), "{health}");
    assert!(health.contains("\"attached\":true"), "{health}");
    // Genesis meta + 24 admits + 4 evicts.
    assert!(health.contains("\"lines\":29"), "{health}");

    let (_, tenants) = http_get(addr, "/tenants");
    assert!(tenants.contains("\"count\":20"), "{tenants}");
    assert!(tenants.contains("\"name\":\"drv23\""), "{tenants}");
    assert!(!tenants.contains("\"name\":\"drv0\""), "{tenants}");

    let (_, stop) = daemon.handle_frame(br#"{"op":"shutdown"}"#);
    assert!(stop, "shutdown stops the daemon");
    drop(daemon);

    let out = replay(&journal).expect("replay verifies");
    assert!(
        out.contains("28 ops verified bit-identical (24 admits, 4 evicts, 0 rejects)"),
        "{out}"
    );
    assert!(out.contains("tenants: 20"), "{out}");
    clean(&journal);
}

#[test]
fn torn_final_line_reports_the_tear_and_verifies_the_prefix() {
    let journal = tmp_path("torn");
    clean(&journal);
    let mut daemon = Daemon::new(engine());
    daemon.attach_journal(&journal, META).expect("journal");
    for i in 0..6 {
        ok_frame(&mut daemon, &admit_req(i));
    }
    ok_frame(&mut daemon, r#"{"op":"evict","tenant":"drv0"}"#);
    drop(daemon);

    // Crash mid-write: chop the final record in half.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let whole = text.trim_end_matches('\n');
    let last_start = whole.rfind('\n').expect("several lines") + 1;
    let torn_at = last_start + (whole.len() - last_start) / 2;
    std::fs::write(&journal, &text[..torn_at]).expect("truncates");

    let out = replay(&journal).expect("prefix still verifies");
    assert!(out.contains("torn line 8"), "{out}");
    assert!(out.contains("verified the intact prefix"), "{out}");
    assert!(
        out.contains("6 ops verified bit-identical (6 admits, 0 evicts, 0 rejects)"),
        "{out}"
    );
    clean(&journal);
}

#[test]
fn rotated_journal_is_stitched_from_the_previous_chunk() {
    let journal = tmp_path("rotated");
    clean(&journal);
    let mut daemon = Daemon::new(engine());
    // A deliberately tiny rotation budget (the clamp floor): the
    // workload below spans one rotation boundary, so the genesis meta
    // line ends up in `<path>.1` and replay must stitch.
    daemon
        .attach_journal_with(&journal, 4096, META)
        .expect("journal");
    for i in 0..6 {
        ok_frame(&mut daemon, &admit_req(i));
    }
    for _ in 0..5 {
        ok_frame(&mut daemon, r#"{"op":"evict","tenant":"drv0"}"#);
        ok_frame(&mut daemon, &admit_req(0));
    }
    drop(daemon);

    let rotated = std::path::PathBuf::from(format!("{}.1", journal.display()));
    assert!(
        rotated.exists(),
        "the workload crosses the 4096-byte budget"
    );

    let out = replay(&journal).expect("stitched replay verifies");
    assert!(out.contains("stitching rotated prefix"), "{out}");
    assert!(
        out.contains("16 ops verified bit-identical (11 admits, 5 evicts, 0 rejects)"),
        "{out}"
    );
    clean(&journal);
}
