//! Property-based testing of the serve engine's multi-tenant pinning
//! contract: over random admit/evict interleavings on a 4×4 torus, every
//! admitted tenant's schedule stays bit-identical to its standalone
//! compile, eviction restores the ledger exactly, and evict-then-readmit
//! reproduces the original admission byte for byte.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sr::serve::{AdmitError, Engine, Placement, ServeConfig, TenantSpec};
use sr::tfg::MessageId;
use sr::topology::Torus;

const POOL: usize = 6;

/// Tenant `i` from the pool: a two-task chain pinned to its own node pair,
/// so every tenant's path links are private and admission stays on the
/// fast rung (which is what makes "rows == standalone compile" assertable
/// for *all* interleavings).
fn spec(i: usize) -> TenantSpec {
    TenantSpec {
        name: format!("t{i}"),
        tfg_text: format!(
            "task a{i} 100\ntask b{i} 120\nmsg m{i} a{i} -> b{i} {}",
            128 + 64 * i
        ),
        placement: Placement::Nodes(vec![2 * i, 2 * i + 1]),
        best_effort: false,
    }
}

fn engine() -> Engine {
    let topo = Torus::new(&[4, 4]).expect("torus");
    Engine::new(Box::new(topo), ServeConfig::default())
}

/// The standalone compile of tenant `i`: what a fresh engine with an empty
/// ledger admits (the fast rung clones the memoized standalone schedule
/// verbatim).
fn standalone(i: usize) -> sr::core::Schedule {
    let mut eng = engine();
    eng.admit(&spec(i), &sr::obs::NOOP)
        .expect("standalone admits");
    eng.tenant(&format!("t{i}"))
        .expect("tenant present")
        .schedule
        .clone()
        .expect("real-time schedule")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any admit/evict interleaving leaves every admitted tenant's rows,
    /// segments, and spans bit-identical to its standalone compile, and
    /// the ledger invariants hold after every step.
    #[test]
    fn interleavings_preserve_the_pinning_contract(
        ops in prop::collection::vec((0usize..POOL, any::<bool>()), 1..24),
    ) {
        let references: Vec<sr::core::Schedule> = (0..POOL).map(standalone).collect();
        let mut eng = engine();
        let mut first_spans: BTreeMap<usize, _> = BTreeMap::new();

        for &(i, admit) in &ops {
            let name = format!("t{i}");
            if admit {
                match eng.admit(&spec(i), &sr::obs::NOOP) {
                    Ok(report) => {
                        prop_assert_eq!(report.rung, sr::serve::AdmitRung::Fast);
                        let t = eng.tenant(&name).expect("admitted");
                        // Evict-then-readmit reproduces the original
                        // admission exactly.
                        if let Some(prev) = first_spans.get(&i) {
                            prop_assert_eq!(prev, &t.spans);
                        } else {
                            first_spans.insert(i, t.spans.clone());
                        }
                    }
                    Err(AdmitError::Duplicate(_)) => {
                        prop_assert!(eng.tenant(&name).is_some());
                    }
                    Err(e) => prop_assert!(false, "unexpected admit error: {e:?}"),
                }
            } else {
                let was_admitted = eng.tenant(&name).is_some();
                prop_assert_eq!(eng.evict(&name, &sr::obs::NOOP).is_ok(), was_admitted);
            }
            eng.check_invariants()
                .map_err(|e| TestCaseError::fail(format!("invariants: {e}")))?;

            // Every admitted tenant stays bit-identical to standalone.
            for t in eng.tenants() {
                let idx: usize = t.name[1..].parse().expect("pool name");
                let reference = &references[idx];
                let got = t.schedule.as_ref().expect("real-time schedule");
                prop_assert_eq!(got.segments(), reference.segments());
                for m in 0..got.assignment().len() {
                    let m = MessageId(m);
                    prop_assert_eq!(
                        got.assignment().path(m).nodes(),
                        reference.assignment().path(m).nodes()
                    );
                    prop_assert_eq!(got.allocation().row(m), reference.allocation().row(m));
                }
            }
        }

        // Draining the table restores the empty ledger bit-identically.
        let names: Vec<String> = eng.tenants().map(|t| t.name.clone()).collect();
        for name in names {
            eng.evict(&name, &sr::obs::NOOP).expect("drain");
        }
        prop_assert!(eng.ledger().is_empty());
    }
}
