//! Integration tests for fault injection and incremental schedule repair:
//! the PR's acceptance scenario (DVB on a 4×4 torus, one failed link) plus
//! the degradation ladder's end states.

use std::collections::BTreeSet;

use sr::core::{Command, NodeSchedule};
use sr::prelude::*;
use sr::tfg::MessageId;

fn dvb_on_torus4x4() -> (Torus, TaskFlowGraph, Timing, Schedule) {
    let topo = Torus::new(&[4, 4]).unwrap();
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &topo, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.5;
    let sched = compile(
        &topo,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )
    .expect("DVB at load 0.5 compiles on the 4x4 torus");
    (topo, tfg, timing, sched)
}

/// The acceptance scenario: kill one link under a scheduled path and repair.
/// The repaired schedule is verifier-clean on the surviving network and
/// modifies *only* the affected messages — paths, allocation rows, segments,
/// and Ω switching commands of every unaffected message stay bit-identical.
#[test]
fn one_failed_link_repairs_and_pins_everything_else() {
    let (topo, tfg, timing, sched) = dvb_on_torus4x4();
    let dead = (0..tfg.num_messages())
        .map(MessageId)
        .find_map(|m| sched.assignment().links(m).first().copied())
        .expect("some message crosses a link");
    let faults = FaultSet::new().fail_link(dead);

    let report = analyze_damage(&sched, &faults);
    assert!(!report.affected.is_empty(), "chosen link carries traffic");
    assert!(!report.unaffected.is_empty(), "most traffic avoids it");
    assert!(report.lost.is_empty(), "no endpoint died");

    let outcome = repair(
        &sched,
        &topo,
        &tfg,
        &timing,
        &faults,
        &RepairConfig::default(),
    );
    assert_eq!(
        outcome.verdict,
        RepairVerdict::Repaired,
        "{:?}",
        outcome.verdict
    );
    let repaired = outcome.schedule.as_ref().expect("repaired schedule");
    verify(repaired, &topo, &tfg).unwrap();
    verify_with_faults(repaired, &topo, &tfg, &faults).unwrap();
    assert_eq!(outcome.rerouted, report.affected);

    let pinned: BTreeSet<MessageId> = report.unaffected.iter().copied().collect();
    for &m in &report.unaffected {
        assert_eq!(
            sched.assignment().path(m).nodes(),
            repaired.assignment().path(m).nodes()
        );
        assert_eq!(sched.allocation().row(m), repaired.allocation().row(m));
    }
    for &m in &report.affected {
        assert!(
            !repaired.assignment().links(m).contains(&dead),
            "{m} still routed over the dead link"
        );
    }
    let seg_of = |s: &Schedule| -> Vec<_> {
        s.segments()
            .iter()
            .filter(|seg| pinned.contains(&seg.message))
            .copied()
            .collect::<Vec<_>>()
    };
    assert_eq!(seg_of(&sched), seg_of(repaired));
    let omega_of = |ns: &NodeSchedule| -> Vec<Command> {
        ns.commands()
            .iter()
            .filter(|c| pinned.contains(&c.message))
            .copied()
            .collect()
    };
    for (old, new) in sched.node_schedules().iter().zip(repaired.node_schedules()) {
        assert_eq!(old.node(), new.node());
        assert_eq!(omega_of(old), omega_of(new), "Ω drifted on {}", old.node());
    }
}

/// A fault set that touches no scheduled path leaves the schedule untouched.
#[test]
fn unused_link_failure_is_unchanged() {
    let (topo, tfg, timing, sched) = dvb_on_torus4x4();
    let used: BTreeSet<_> = (0..tfg.num_messages())
        .map(MessageId)
        .flat_map(|m| sched.assignment().links(m))
        .collect();
    let spare = (0..topo.num_links())
        .map(sr::topology::LinkId)
        .find(|l| !used.contains(l))
        .expect("the 4x4 torus has idle links at load 0.5");

    let outcome = repair(
        &sched,
        &topo,
        &tfg,
        &timing,
        &FaultSet::new().fail_link(spare),
        &RepairConfig::default(),
    );
    assert_eq!(outcome.verdict, RepairVerdict::Unchanged);
    let same = outcome.schedule.expect("schedule retained");
    assert_eq!(same.segments(), sched.segments());
}

/// Failing a message's endpoint node is unrepairable when everything is
/// critical, and degrades (dropping that message's traffic) when nothing is.
#[test]
fn endpoint_failure_walks_the_degradation_ladder() {
    let (topo, tfg, timing, sched) = dvb_on_torus4x4();
    let victim = sched.assignment().path(MessageId(0)).source();
    let faults = FaultSet::new().fail_node(victim);

    let strict = repair(
        &sched,
        &topo,
        &tfg,
        &timing,
        &faults,
        &RepairConfig::default(),
    );
    assert_eq!(strict.verdict, RepairVerdict::Infeasible);
    assert!(strict.schedule.is_none());

    let lax = repair(
        &sched,
        &topo,
        &tfg,
        &timing,
        &faults,
        &RepairConfig {
            critical: Some(vec![false; tfg.num_messages()]),
            ..RepairConfig::default()
        },
    );
    assert_eq!(lax.verdict, RepairVerdict::Degraded);
    let degraded = lax.schedule.as_ref().expect("degraded schedule");
    verify_with_faults(degraded, &topo, &tfg, &faults).unwrap();
    assert!(!lax.dropped.is_empty());
    for &m in &lax.dropped {
        assert!(degraded.assignment().links(m).is_empty());
    }
}

/// Spare-capacity reservation (ε headroom) leaves room the repair can use:
/// the ε-compiled schedule keeps every per-link/per-interval load under the
/// tightened cap while still passing the standard verifier.
#[test]
fn spare_capacity_compile_supports_repair() {
    let topo = Torus::new(&[4, 4]).unwrap();
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &topo, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.5;
    let sched = compile(
        &topo,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig {
            spare_capacity: 0.1,
            ..CompileConfig::default()
        },
    )
    .expect("load 0.5 leaves 10% headroom");
    verify(&sched, &topo, &tfg).unwrap();
    assert!(sched.peak_utilization() <= 0.9 + 1e-6);

    let dead = sched.assignment().links(MessageId(0)).first().copied();
    if let Some(dead) = dead {
        let outcome = repair(
            &sched,
            &topo,
            &tfg,
            &timing,
            &FaultSet::new().fail_link(dead),
            &RepairConfig::default(),
        );
        assert!(
            matches!(
                outcome.verdict,
                RepairVerdict::Repaired | RepairVerdict::Unchanged
            ),
            "{:?}",
            outcome.verdict
        );
    }
}
