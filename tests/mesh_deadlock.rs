//! Differential deadlock study: dimension-order wormhole routing on a
//! *mesh* acquires links in a strict dimension order with no cyclic
//! dependencies, so the simulator must never report deadlock there — while
//! the same workloads on the *torus* (wraparound rings) legitimately can.

use sr::prelude::*;
use sr::tfg::generators::{layered_random, LayeredParams};

fn workloads() -> Vec<TaskFlowGraph> {
    (0..6)
        .map(|seed| {
            layered_random(
                seed,
                &LayeredParams {
                    layers: 4,
                    width: 4,
                    edge_probability: 0.6,
                    ops: (500, 2000),
                    bytes: (512, 6400),
                },
            )
        })
        .collect()
}

#[test]
fn dimension_order_on_mesh_never_deadlocks() {
    let mesh = sr::topology::Mesh::new(&[4, 4]).unwrap();
    let timing = Timing::new(64.0, 50.0);
    for (i, tfg) in workloads().iter().enumerate() {
        for alloc_seed in [1u64, 2, 3] {
            let alloc = sr::mapping::random(tfg, &mesh, alloc_seed);
            let sim = WormholeSim::new(&mesh, tfg, &alloc, &timing).unwrap();
            // Saturating load: worst case for hold-and-wait.
            let period = timing.longest_task(tfg);
            let res = sim
                .run(
                    period,
                    &SimConfig {
                        invocations: 25,
                        warmup: 4,
                    },
                )
                .unwrap();
            assert!(
                !res.deadlocked(),
                "mesh deadlocked on workload {i}, alloc {alloc_seed}"
            );
            assert_eq!(res.records().len(), 25);
        }
    }
}

#[test]
fn same_workloads_on_torus_can_deadlock_but_mesh_stats_stay_sane() {
    let mesh = sr::topology::Mesh::new(&[4, 4]).unwrap();
    let torus = Torus::new(&[4, 4]).unwrap();
    let timing = Timing::new(64.0, 50.0);
    let mut torus_deadlocks = 0;
    for tfg in &workloads() {
        let alloc_m = sr::mapping::random(tfg, &mesh, 1);
        let alloc_t = sr::mapping::random(tfg, &torus, 1);
        let period = timing.longest_task(tfg);
        let cfg = SimConfig {
            invocations: 25,
            warmup: 4,
        };

        let mesh_res = WormholeSim::new(&mesh, tfg, &alloc_m, &timing)
            .unwrap()
            .run(period, &cfg)
            .unwrap();
        assert!(!mesh_res.deadlocked());
        // Occupancy is a valid fraction on every link.
        for l in 0..mesh.num_links() {
            let o = mesh_res.link_occupancy(LinkId(l));
            assert!((0.0..=1.0 + 1e-9).contains(&o), "occupancy {o}");
        }

        let torus_res = WormholeSim::new(&torus, tfg, &alloc_t, &timing)
            .unwrap()
            .run(period, &cfg)
            .unwrap();
        if torus_res.deadlocked() {
            torus_deadlocks += 1;
        }
    }
    // Not asserted > 0 (it depends on the seeds), but report for the log.
    println!("torus deadlocks across workloads: {torus_deadlocks}/6");
}
