//! Golden structure test for the `report` subcommand on the torus 4×4 DVB
//! figure workload: the document's tag skeleton (sections, headings, SVG
//! panels) is pinned in `tests/golden/report_structure.txt`. Timing values
//! float freely — only the *shape* of the report is golden, so adding or
//! dropping a panel fails loudly while rerunning with different LP pivots
//! does not.

use sr_cli::{parse_args, report, run};

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn torus4x4_dvb_report_matches_golden_structure() {
    let dir = std::env::temp_dir().join("srsched_report_golden");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("torus4x4_dvb.html");
    let opts = parse_args(&args(&format!(
        "report --topo torus:4x4 --tfg dvb:10 --bandwidth 128 --alloc scatter:7 \
         --period 58.82 --out {}",
        path.display()
    )))
    .unwrap();
    let mut out = String::new();
    run(&opts, &mut out).unwrap();

    // The one-line text summary shows both flow-control disciplines ran.
    assert!(out.contains("wormhole :"), "{out}");
    assert!(out.contains("scheduled:"), "{out}");

    let html = std::fs::read_to_string(&path).unwrap();
    // Self-contained: a full document with zero external references.
    assert!(html.starts_with("<!DOCTYPE html>"));
    for banned in ["http://", "https://", "<script", "<link", "src=", "@import"] {
        assert!(!html.contains(banned), "external reference: {banned}");
    }
    // Both disciplines appear in the side-by-side panel.
    assert!(html.contains("<th>wormhole</th><th>scheduled</th>"));

    let got = report::structure(&html);
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/report_structure.txt"
    );
    let want = std::fs::read_to_string(golden_path).expect("golden file");
    assert_eq!(
        got.trim(),
        want.trim(),
        "report skeleton drifted from {golden_path}; if the change is \
         intentional, update the golden file to:\n{got}"
    );
    let _ = std::fs::remove_file(&path);
}
