//! End-to-end integration: compile scheduled-routing communication
//! schedules for the paper's workload on every evaluated topology and check
//! the promised properties hold.

use sr::prelude::*;

fn platforms() -> Vec<(String, Box<dyn Topology>)> {
    vec![
        (
            "cube6".into(),
            Box::new(GeneralizedHypercube::binary(6).unwrap()) as Box<dyn Topology>,
        ),
        (
            "ghc444".into(),
            Box::new(GeneralizedHypercube::new(&[4, 4, 4]).unwrap()),
        ),
        ("torus8x8".into(), Box::new(Torus::new(&[8, 8]).unwrap())),
        ("torus444".into(), Box::new(Torus::new(&[4, 4, 4]).unwrap())),
    ]
}

/// DVB at B=128 compiles on every 64-node platform across the whole load
/// sweep (the paper's Figs. 7–10 at the higher bandwidth), and every
/// compiled schedule verifies.
#[test]
fn dvb_at_b128_compiles_and_verifies_everywhere() {
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    let tau_c = timing.longest_task(&tfg);
    for (name, topo) in platforms() {
        let alloc = sr::mapping::random_distinct(&tfg, topo.as_ref(), 7).unwrap();
        let mut compiled = 0;
        for load in [0.25, 0.5, 0.75, 1.0] {
            let period = tau_c / load;
            match compile(
                topo.as_ref(),
                &tfg,
                &alloc,
                &timing,
                period,
                &CompileConfig::default(),
            ) {
                Ok(s) => {
                    verify(&s, topo.as_ref(), &tfg)
                        .unwrap_or_else(|e| panic!("{name} load {load}: {e}"));
                    assert!(s.peak_utilization() <= 1.0 + 1e-6);
                    assert_eq!(s.period(), period);
                    compiled += 1;
                }
                Err(CompileError::IntervalUnschedulable { .. })
                | Err(CompileError::AllocationInfeasible { .. }) => {
                    // Isolated schedulability failures occur on the 8x8
                    // torus (the paper saw them too); anything else fails
                    // the test below.
                }
                Err(e) => panic!("{name} load {load}: unexpected {e}"),
            }
        }
        assert!(compiled >= 3, "{name}: only {compiled}/4 loads compiled");
    }
}

/// The schedule's segments exactly cover each message's transmission time
/// and respect its windows — checked by the verifier, re-checked here
/// directly on the public API.
#[test]
fn segments_cover_durations() {
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let tfg = dvb_uniform(6);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let s = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        80.0,
        &CompileConfig::default(),
    )
    .unwrap();
    for (id, _) in tfg.iter_messages() {
        if s.assignment().links(id).is_empty() {
            continue;
        }
        let total: f64 = s
            .segments()
            .iter()
            .filter(|seg| seg.message == id)
            .map(|seg| seg.end - seg.start)
            .sum();
        let want = s.bounds().window(id).duration();
        assert!((total - want).abs() < 1e-5, "{id}: {total} vs {want}");
    }
}

/// Compile-time predictability: an overloaded network is rejected with a
/// typed error, never a bogus schedule.
#[test]
fn overload_is_rejected_not_mis_scheduled() {
    let tiny = GeneralizedHypercube::binary(2).unwrap(); // 4 nodes, 4 links
    let tfg = dvb_uniform(8); // far too much traffic
    let timing = Timing::calibrated_dvb(64.0);
    let alloc = sr::mapping::random(&tfg, &tiny, 7);
    let err = compile(
        &tiny,
        &tfg,
        &alloc,
        &timing,
        50.0,
        &CompileConfig::default(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CompileError::UtilizationExceeded { .. }
                | CompileError::AllocationInfeasible { .. }
                | CompileError::IntervalUnschedulable { .. }
                | CompileError::NodeOverloaded { .. }
        ),
        "got {err:?}"
    );
}

/// The latency reported by the schedule equals the time-bound latency and
/// dominates the critical path.
#[test]
fn latency_accounting() {
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let s = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        60.0,
        &CompileConfig::default(),
    )
    .unwrap();
    assert!(s.latency() >= timing.critical_path(&tfg) - 1e-9);
    assert_eq!(s.latency(), s.bounds().latency());
}

/// Wormhole simulation of the same workload conserves invocations: every
/// invocation completes exactly once, in order, unless the run deadlocks.
#[test]
fn wormhole_conserves_invocations() {
    let tfg = dvb_uniform(8);
    let timing = Timing::calibrated_dvb(128.0);
    for (name, topo) in platforms() {
        let alloc = sr::mapping::random_distinct(&tfg, topo.as_ref(), 7).unwrap();
        let sim = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing).unwrap();
        let cfg = SimConfig {
            invocations: 30,
            warmup: 5,
        };
        let res = sim.run(70.0, &cfg).unwrap();
        if !res.deadlocked() {
            assert_eq!(res.records().len(), 30, "{name}");
            for (j, r) in res.records().iter().enumerate() {
                assert_eq!(r.index, j);
                assert!(r.output_time >= r.input_time, "{name} inv {j}");
            }
            // Outputs are produced in order.
            for w in res.records().windows(2) {
                assert!(w[1].output_time >= w[0].output_time - 1e-9, "{name}");
            }
        }
    }
}

/// Replaying the scheduled-routing path assignment under wormhole routing:
/// the custom-route API accepts the compiled paths (the two systems agree on
/// what a valid route is).
#[test]
fn sr_paths_replay_under_wr() {
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let tfg = dvb_uniform(6);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let s = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        80.0,
        &CompileConfig::default(),
    )
    .unwrap();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing)
        .unwrap()
        .with_routes(s.assignment().paths())
        .unwrap();
    let res = sim
        .run(
            80.0,
            &SimConfig {
                invocations: 20,
                warmup: 4,
            },
        )
        .unwrap();
    assert!(!res.deadlocked() || res.records().len() > 4);
}
