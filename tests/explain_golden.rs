//! Golden test for `srsched explain` on the forced-infeasible torus 4×4
//! DVB workload (B = 64 bytes/µs, capacity scale pinned to 0.5): the full
//! diagnosis text — candidate walk, blocking subset, and the Farkas
//! certificate's saturated links with their binding interval sets — is
//! pinned in `tests/golden/explain_torus4x4_b64.txt`. The diagnosis is
//! emitted by the compiler's deterministic serial walk, so the text is
//! bit-identical across runs and `--parallelism` settings.

use sr_cli::{parse_args, run};

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

const EXPLAIN_ARGS: &str =
    "explain --topo torus:4x4 --tfg dvb:4 --bandwidth 64 --alloc scatter:7 --cap-scale 0.5";

#[test]
fn explain_forced_infeasible_torus4x4_matches_golden() {
    let opts = parse_args(&args(EXPLAIN_ARGS)).unwrap();
    let mut out = String::new();
    run(&opts, &mut out).unwrap();

    // The acceptance claims, asserted directly so a golden refresh can
    // never silently drop them: at least one saturated link with its
    // binding interval set, and the blocking message subset.
    assert!(out.contains("verdict: infeasible"), "{out}");
    assert!(out.contains("saturated link L"), "{out}");
    assert!(out.contains("binding intervals {"), "{out}");
    assert!(out.contains("blocking demand rows:"), "{out}");

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/explain_torus4x4_b64.txt"
    );
    let want = std::fs::read_to_string(golden_path).expect("golden file");
    assert_eq!(
        out.trim(),
        want.trim(),
        "explain output drifted from {golden_path}; if the change is \
         intentional, update the golden file to:\n{out}"
    );
}

#[test]
fn explain_is_parallelism_invariant() {
    let serial = {
        let opts = parse_args(&args(&format!("{EXPLAIN_ARGS} --parallelism 1"))).unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        out
    };
    let parallel = {
        let opts = parse_args(&args(&format!("{EXPLAIN_ARGS} --parallelism 4"))).unwrap();
        let mut out = String::new();
        run(&opts, &mut out).unwrap();
        out
    };
    assert_eq!(serial, parallel);
}

#[test]
fn explain_feasible_reports_winner_and_bottlenecks() {
    let opts = parse_args(&args(
        "explain --topo torus:4x4 --tfg dvb:4 --bandwidth 64 --alloc scatter:7",
    ))
    .unwrap();
    let mut out = String::new();
    run(&opts, &mut out).unwrap();
    assert!(out.contains("verdict: scheduled"), "{out}");
    assert!(out.contains("bottlenecks (tightest capacity rows"), "{out}");
    assert!(out.contains("% of "), "{out}");
}
