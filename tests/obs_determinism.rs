//! The `--metrics` counters must be deterministic under `--parallelism N`:
//! the speculative parallel search replays the exact serial candidate walk,
//! so every counter derived from that walk (candidates, outcomes, LP pivots,
//! arena sizes, …) is identical at any thread count. Only counters under the
//! `par.` namespace — speculative work actually performed and path-pool
//! traffic — are allowed to depend on thread timing.

use proptest::prelude::*;
use sr::obs::MetricsRecorder;
use sr::prelude::*;
use sr::tfg::generators::{chain, diamond};
use std::collections::BTreeMap;

/// Compile the workload at the given thread count and return every counter
/// outside the thread-timing-dependent `par.` namespace.
fn deterministic_counters(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    threads: usize,
) -> (BTreeMap<String, u64>, Option<String>) {
    let config = CompileConfig {
        parallelism: threads,
        ..CompileConfig::default()
    };
    let rec = MetricsRecorder::new();
    let outcome = compile_with_recorder(topo, tfg, alloc, timing, period, &config, &rec)
        .err()
        .map(|e| e.to_string());
    let counters = rec
        .counters()
        .into_iter()
        .filter(|(k, _)| !k.starts_with("par."))
        .collect();
    (counters, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counters_identical_at_any_thread_count(
        dim in 2usize..4,
        shape in 0usize..2,
        stages in 2usize..5,
        bytes_idx in 0usize..3,
        slack in 0usize..4,
    ) {
        let bytes = [256u64, 640, 1280][bytes_idx];
        let cube = GeneralizedHypercube::binary(dim).unwrap();
        let tfg = match shape {
            0 => chain(stages, 500, bytes),
            _ => diamond(stages, 500, bytes),
        };
        let alloc = sr::mapping::greedy(&tfg, &cube);
        let timing = Timing::new(64.0, 10.0);
        // Periods from "at the longest-task bound" (often unschedulable,
        // exercising the full feedback walk) up to comfortably feasible.
        let period = timing.longest_task(&tfg) * (1.0 + 0.5 * slack as f64);

        let serial = deterministic_counters(&cube, &tfg, &alloc, &timing, period, 1);
        let parallel = deterministic_counters(&cube, &tfg, &alloc, &timing, period, 4);
        prop_assert_eq!(serial, parallel);
    }
}

/// The parallel search should still report its speculative work somewhere:
/// the `par.` counters exist precisely so thread-dependent quantities have a
/// home outside the deterministic namespace.
#[test]
fn parallel_search_reports_par_namespace() {
    let cube = GeneralizedHypercube::binary(3).unwrap();
    let tfg = chain(4, 500, 640);
    let alloc = sr::mapping::greedy(&tfg, &cube);
    let timing = Timing::new(64.0, 10.0);
    let config = CompileConfig {
        parallelism: 4,
        ..CompileConfig::default()
    };
    let rec = MetricsRecorder::new();
    compile_with_recorder(&cube, &tfg, &alloc, &timing, 200.0, &config, &rec)
        .expect("chain compiles");
    let counters = rec.counters();
    assert!(counters.contains_key("par.pathpool.misses"));
    assert!(counters.contains_key("par.speculative.seed_evals"));
    // And the walk-derived view is present alongside it.
    assert_eq!(counters["search.outcome.scheduled"], 1);
}
