//! Differential testing: wherever scheduled routing compiles, its promised
//! throughput/latency must be *at least as consistent* as what the wormhole
//! simulator delivers on the identical workload, and the paper's headline
//! (SR constant where WR is inconsistent) must hold at saturating loads.

use sr::prelude::*;

struct Case {
    name: &'static str,
    topo: Box<dyn Topology>,
    bandwidth: f64,
    load: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "cube6-b64-hi",
            topo: Box::new(GeneralizedHypercube::binary(6).unwrap()),
            bandwidth: 64.0,
            load: 0.9,
        },
        Case {
            name: "cube6-b128-hi",
            topo: Box::new(GeneralizedHypercube::binary(6).unwrap()),
            bandwidth: 128.0,
            load: 1.0,
        },
        Case {
            name: "ghc444-b64-hi",
            topo: Box::new(GeneralizedHypercube::new(&[4, 4, 4]).unwrap()),
            bandwidth: 64.0,
            load: 0.9,
        },
        Case {
            name: "torus444-b128-hi",
            topo: Box::new(Torus::new(&[4, 4, 4]).unwrap()),
            bandwidth: 128.0,
            load: 0.93,
        },
    ]
}

/// At high load, WR shows OI (or deadlock/saturation) while SR compiles with
/// a verified contention-free schedule on the same TFG + allocation.
#[test]
fn sr_constant_where_wr_inconsistent() {
    let tfg = dvb_uniform(8);
    let mut differentials = 0;
    for case in cases() {
        let timing = Timing::calibrated_dvb(case.bandwidth);
        let alloc = sr::mapping::random_distinct(&tfg, case.topo.as_ref(), 7).unwrap();
        let period = timing.longest_task(&tfg) / case.load;

        let wr = WormholeSim::new(case.topo.as_ref(), &tfg, &alloc, &timing).unwrap();
        let res = wr.run(period, &SimConfig::default()).unwrap();
        let wr_oi = res.has_output_inconsistency(1e-6);

        let sr = compile(
            case.topo.as_ref(),
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig::default(),
        );
        if let Ok(s) = &sr {
            verify(s, case.topo.as_ref(), &tfg).unwrap();
        }
        if wr_oi && sr.is_ok() {
            differentials += 1;
        }
        println!(
            "{}: WR OI={wr_oi}, SR {}",
            case.name,
            if sr.is_ok() { "ok" } else { "fail" }
        );
    }
    assert!(
        differentials >= 3,
        "expected SR to beat WR on most saturated cases, got {differentials}/4"
    );
}

/// Where neither system is stressed (low load, no shared links), WR is
/// consistent too — SR's value is the guarantee, not a throughput win.
#[test]
fn both_consistent_at_low_load() {
    let tfg = dvb_uniform(4);
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::greedy(&tfg, &cube);
    let period = timing.longest_task(&tfg) / 0.2;

    let res = WormholeSim::new(&cube, &tfg, &alloc, &timing)
        .unwrap()
        .run(period, &SimConfig::default())
        .unwrap();
    assert!(!res.has_output_inconsistency(1e-6));

    let s = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )
    .unwrap();
    verify(&s, &cube, &tfg).unwrap();
}

/// Operational closure: executing the compiled schedule invocation by
/// invocation gives *exactly* one output per period — the measured
/// counterpart of the verifier's static guarantees — on the same workload
/// where wormhole routing's measured intervals wobble.
#[test]
fn executed_schedule_is_operationally_constant() {
    let tfg = dvb_uniform(8);
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.9;

    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )
    .expect("compiles");
    let exec = sr::core::execute(&sched, &tfg, &alloc, &timing, 40).expect("executes");
    assert!(exec.is_throughput_constant(1e-9));
    assert_eq!(exec.invocations().len(), 40);

    let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)
        .unwrap()
        .run(period, &SimConfig::default())
        .unwrap();
    // At this load WR wobbles; SR does not.
    assert!(wr.has_output_inconsistency(1e-6));
    // And SR's measured latency never exceeds its compile-time bound.
    assert!(exec.latencies()[0] <= sched.latency() + 1e-6);
}

/// Under the *same* injected fault set, wormhole routing obliviously
/// re-routes over the masked topology and keeps (or worsens) its output
/// inconsistency, while scheduled routing repairs incrementally and — where
/// the repair is feasible — its executed output interval stays exactly
/// constant.
#[test]
fn same_faults_wr_obliviously_reroutes_sr_repairs() {
    let tfg = dvb_uniform(8);
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.9;

    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        period,
        &CompileConfig::default(),
    )
    .expect("compiles");

    // Fail a link some scheduled message actually uses.
    let dead = (0..tfg.num_messages())
        .map(sr::tfg::MessageId)
        .find_map(|m| sched.assignment().links(m).first().copied())
        .expect("traffic exists");
    let faults = FaultSet::new().fail_link(dead);

    // SR: incremental repair, then operational execution of the repaired
    // schedule — one output per period, exactly.
    let outcome = repair(
        &sched,
        &cube,
        &tfg,
        &timing,
        &faults,
        &RepairConfig::default(),
    );
    let repaired = outcome
        .schedule
        .as_ref()
        .expect("one dead link on a 6-cube at load 0.9 is repairable");
    verify_with_faults(repaired, &cube, &tfg, &faults).unwrap();
    let exec = sr::core::execute(repaired, &tfg, &alloc, &timing, 40).expect("executes");
    assert!(
        exec.is_throughput_constant(1e-9),
        "repaired SR output interval must stay constant"
    );

    // WR on the identical fault set: the simulator silently re-routes over
    // the masked topology and the output interval still wobbles (or the
    // network outright deadlocks on the detours).
    let masked = MaskedTopology::new(&cube, faults.clone());
    let wr = WormholeSim::new(&masked, &tfg, &alloc, &timing)
        .unwrap()
        .run(period, &SimConfig::default())
        .unwrap();
    assert!(
        wr.deadlocked() || wr.has_output_inconsistency(1e-6),
        "WR under faults should stay inconsistent: {:?}",
        wr.interval_stats()
    );
}

/// SR's latency is period-independent while WR's mean latency grows with
/// load — the monotone degradation the paper plots.
#[test]
fn wr_latency_grows_with_load_sr_latency_does_not() {
    let tfg = dvb_uniform(8);
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let timing = Timing::calibrated_dvb(64.0);
    // Seed 13 (formerly 7): the vendored StdRng draws a different stream
    // than upstream rand's, and the seed-7 placement is borderline — it no
    // longer compiles at load 0.9. Any seed whose placement compiles at all
    // three loads works here; 13 does and keeps WR latency growth visible.
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 13).unwrap();
    let tau_c = timing.longest_task(&tfg);

    let mut wr_lat = Vec::new();
    let mut sr_lat = Vec::new();
    for load in [0.3, 0.6, 0.9] {
        let period = tau_c / load;
        let res = WormholeSim::new(&cube, &tfg, &alloc, &timing)
            .unwrap()
            .run(period, &SimConfig::default())
            .unwrap();
        wr_lat.push(res.latency_stats().mean);
        let s = compile(
            &cube,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig::default(),
        )
        .expect("compiles at all three loads");
        sr_lat.push(s.latency());
    }
    assert!(
        wr_lat[2] > wr_lat[0] + 1.0,
        "WR latency should grow: {wr_lat:?}"
    );
    // SR latency is a function of the window structure only; across loads it
    // stays within one τ_c of itself.
    let spread = sr_lat.iter().cloned().fold(f64::MIN, f64::max)
        - sr_lat.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread <= tau_c + 1e-6,
        "SR latency spread {spread}: {sr_lat:?}"
    );
}
