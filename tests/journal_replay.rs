//! Tier-1 tests of the persistent event journal: a run journaled to disk
//! and replayed offline must feed [`analyze_oi`] the *same* event stream —
//! bit-identical timestamps, identical report — and a journal written from
//! a truncated ring (overflowed [`RingEventSink`]) must replay into the
//! analyzer without panics. A property test pins the ring's newest-wins
//! retention with `NO_ID` sentinels through wraparound.

use proptest::prelude::*;
use sr::prelude::*;

const PERIOD: f64 = 120.0;
const CFG: SimConfig = SimConfig {
    invocations: 40,
    warmup: 6,
};

fn claim_setup() -> (GeneralizedHypercube, TaskFlowGraph, Allocation, Timing) {
    let cube = GeneralizedHypercube::binary(3).unwrap();
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0);
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &cube,
    )
    .unwrap();
    (cube, tfg, alloc, timing)
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sr_journal_replay_{name}_{}", std::process::id()));
    p
}

fn bits(events: &[SimEvent]) -> Vec<(u64, SimEventKind, u32, u32, u32)> {
    events
        .iter()
        .map(|e| {
            (
                e.time_us.to_bits(),
                e.kind,
                e.message,
                e.invocation,
                e.channel,
            )
        })
        .collect()
}

/// Acceptance: journal replay reproduces the live `analyze_oi` statistics
/// bit-identically (f64 fields compared through `to_bits`).
#[test]
fn journal_replay_reproduces_live_oi_bit_identically() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let sink = RingEventSink::with_capacity(1 << 16);
    sim.run_with_events(PERIOD, &CFG, &sink).unwrap();
    let live_events = sink.events();
    let live = analyze_oi(&live_events, PERIOD, CFG.warmup);

    let path = tmp_path("bitident");
    let _ = std::fs::remove_file(&path);
    let mut w = JournalWriter::create(&path, sr::obs::DEFAULT_MAX_BYTES).unwrap();
    w.meta(&[("command", "simulate"), ("workload", "claim_chain")])
        .unwrap();
    w.events(&live_events).unwrap();
    w.flush().unwrap();

    let data = read_journal(&path).unwrap();
    assert_eq!(data.skipped, 0);
    assert_eq!(data.meta["workload"], "claim_chain");
    assert_eq!(bits(&data.events), bits(&live_events));

    let replayed = analyze_oi(&data.events, PERIOD, CFG.warmup);
    let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(as_bits(&replayed.outputs), as_bits(&live.outputs));
    assert_eq!(as_bits(&replayed.intervals), as_bits(&live.intervals));
    assert_eq!(
        replayed.max_deviation_us.to_bits(),
        live.max_deviation_us.to_bits()
    );
    assert_eq!(
        replayed.min_interval_us.to_bits(),
        live.min_interval_us.to_bits()
    );
    assert_eq!(replayed.stalls.len(), live.stalls.len());
    assert_eq!(replayed.render(), live.render());
    let _ = std::fs::remove_file(&path);
}

/// A ring too small for the run drops the oldest events; the journaled
/// remainder must still parse cleanly and analyze without panics, keeping
/// the tail (deliveries and outputs) the analyzer needs.
#[test]
fn truncated_ring_journal_feeds_analyzer_without_panics() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let sink = RingEventSink::with_capacity(128);
    sim.run_with_events(PERIOD, &CFG, &sink).unwrap();
    assert!(sink.dropped() > 0, "run must overflow the ring");

    let path = tmp_path("truncated");
    let _ = std::fs::remove_file(&path);
    let mut w = JournalWriter::create(&path, sr::obs::DEFAULT_MAX_BYTES).unwrap();
    w.events(&sink.events()).unwrap();
    w.flush().unwrap();

    let data = read_journal(&path).unwrap();
    assert_eq!(data.skipped, 0);
    assert_eq!(data.events.len(), 128);
    // The ring dropped the early outputs, so the analyzer's consecutive
    // walk from the warmup invocation finds nothing — it must degrade to
    // an empty report, not panic, and still render.
    let report = analyze_oi(&data.events, PERIOD, CFG.warmup);
    assert!(report.render().contains("OI report"));
    // The tail of the stream (what the ring keeps) does include outputs.
    assert!(data
        .events
        .iter()
        .any(|e| e.kind == SimEventKind::OutputProduced));

    // A journal truncated mid-line (crash) still parses up to the damage.
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.len() * 2 / 3;
    let truncated = &text[..cut];
    let partial = parse_journal(truncated);
    assert!(partial.skipped <= 1, "at most the cut line is lost");
    let _ = analyze_oi(&partial.events, PERIOD, CFG.warmup);
    let _ = std::fs::remove_file(&path);
}

proptest! {
    /// Newest-wins retention: for any event sequence (including `NO_ID`
    /// sentinel fields) and any capacity, the ring retains exactly the
    /// last `min(n, capacity)` events in order, counts the overwrites,
    /// and the survivors round-trip through the journal bit-identically.
    #[test]
    fn ring_overflow_keeps_newest_and_journal_round_trips(
        capacity in 1usize..48,
        specs in prop::collection::vec(
            // The last value of the message/channel ranges maps to NO_ID.
            (0u64..1u64 << 52, 0u8..6, 0u32..65, 0u32..16, 0u32..129),
            0..160,
        ),
    ) {
        let kinds = [
            SimEventKind::MessageInjected,
            SimEventKind::HeaderBlocked,
            SimEventKind::LinkAcquired,
            SimEventKind::LinkReleased,
            SimEventKind::FlitDelivered,
            SimEventKind::OutputProduced,
        ];
        let events: Vec<SimEvent> = specs
            .iter()
            .map(|&(t, k, m, inv, ch)| SimEvent {
                time_us: t as f64 / 16.0,
                kind: kinds[k as usize],
                message: if m == 64 { NO_ID } else { m },
                invocation: inv,
                channel: if ch == 128 { NO_ID } else { ch },
            })
            .collect();

        let sink = RingEventSink::with_capacity(capacity);
        for e in &events {
            sink.record(*e);
        }
        let kept = sink.events();
        let expect_len = events.len().min(capacity.max(1));
        prop_assert_eq!(kept.len(), expect_len);
        prop_assert_eq!(
            sink.dropped(),
            events.len().saturating_sub(capacity.max(1)) as u64
        );
        // Exactly the newest `expect_len` events, in recording order.
        prop_assert_eq!(bits(&kept), bits(&events[events.len() - expect_len..]));

        // Survivors (with NO_ID sentinels) round-trip through journal text.
        let mut text = String::new();
        for e in &kept {
            let id = |v: u32| if v == NO_ID { "null".to_string() } else { v.to_string() };
            text.push_str(&format!(
                "{{\"t\":\"event\",\"time_us\":{},\"kind\":\"{}\",\"message\":{},\"invocation\":{},\"channel\":{}}}\n",
                e.time_us, e.kind.label(), id(e.message), id(e.invocation), id(e.channel)
            ));
        }
        let data = parse_journal(&text);
        prop_assert_eq!(data.skipped, 0);
        prop_assert_eq!(bits(&data.events), bits(&kept));
    }
}
