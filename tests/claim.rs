//! Integration test of the paper's §3 Claim: FCFS wormhole flow-control
//! produces output inconsistency when messages of different invocations
//! share a link, and scheduled routing removes it on the identical workload.

use sr::prelude::*;

fn claim_setup() -> (GeneralizedHypercube, TaskFlowGraph, Allocation, Timing) {
    let cube = GeneralizedHypercube::binary(3).unwrap();
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0); // tasks 10 µs, big messages 100 µs
                                           // M1: N0->N1 uses directed channel 0->1. M2: N0->N3, dimension-ordered
                                           // N0->N1->N3, whose first hop is the *same* directed channel — the
                                           // Claim's premise — while the equivalent route N0->N2->N3 stays free.
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &cube,
    )
    .unwrap();
    (cube, tfg, alloc, timing)
}

#[test]
fn wormhole_exhibits_output_inconsistency() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let res = sim
        .run(
            120.0,
            &SimConfig {
                invocations: 40,
                warmup: 6,
            },
        )
        .unwrap();
    assert!(!res.deadlocked());
    assert!(res.has_output_inconsistency(1e-6));
    // The Claim's signature: intervals alternate around values ≠ τ_in.
    let s = res.interval_stats();
    assert!(s.spread() > 50.0, "expected strong alternation, got {s:?}");
}

#[test]
fn scheduled_routing_removes_it() {
    let (cube, tfg, alloc, timing) = claim_setup();
    let s = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        120.0,
        &CompileConfig::default(),
    )
    .expect("claim scenario compiles");
    verify(&s, &cube, &tfg).expect("schedule verifies");
    // The compiler must have rerouted M2 off the dimension-order path:
    // the two big messages no longer share any link.
    let m1 = sr::tfg::MessageId(0);
    let m2 = sr::tfg::MessageId(2);
    let l1 = s.assignment().links(m1);
    let l2 = s.assignment().links(m2);
    assert!(
        l1.iter().all(|l| !l2.contains(l)),
        "M1 {l1:?} and M2 {l2:?} still share a link"
    );
}

#[test]
fn wider_period_decouples_invocations() {
    // "Very large values of the input period are not interesting because
    // messages from different invocations do not contend": at τ_in far above
    // the invocation latency, WR is consistent too.
    let (cube, tfg, alloc, timing) = claim_setup();
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
    let res = sim
        .run(
            2_000.0,
            &SimConfig {
                invocations: 20,
                warmup: 4,
            },
        )
        .unwrap();
    assert!(!res.has_output_inconsistency(1e-6));
}

#[test]
fn adaptive_style_reroute_does_not_save_wormhole() {
    // §3 also argues OI persists under alternative fixed routes when a third
    // message interferes: replay the SR-chosen routes under WR flow-control
    // at a period where the *small* coupling message still queues behind the
    // big ones on the shared destination node's AP — output stays dependent
    // on FCFS timing, SR's windows do not.
    let (cube, tfg, alloc, timing) = claim_setup();
    let sched = compile(
        &cube,
        &tfg,
        &alloc,
        &timing,
        120.0,
        &CompileConfig::default(),
    )
    .expect("compiles");
    let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing)
        .unwrap()
        .with_routes(sched.assignment().paths())
        .unwrap();
    let res = sim
        .run(
            120.0,
            &SimConfig {
                invocations: 40,
                warmup: 6,
            },
        )
        .unwrap();
    // With disjoint big-message routes this particular workload becomes
    // consistent under WR too — the difference is that WR offers no
    // compile-time guarantee. What we assert here is agreement on the
    // steady-state rate when no link is shared.
    if !res.deadlocked() {
        let s = res.interval_stats();
        assert!((s.mean - 120.0).abs() < 1.0, "mean interval {s:?}");
    }
}
