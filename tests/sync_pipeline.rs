//! End-to-end §7 synchronization pipeline: simulate clock skew, size the
//! guard, compile with it, verify and execute the guarded schedule.

use sr::prelude::*;
use sr::sync::{simulate_sync, skew_bound, ClockEnsemble, SyncConfig};

#[test]
fn skew_to_guard_to_schedule() {
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let tfg = dvb_uniform(10);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.8;

    let clocks = ClockEnsemble::random(64, 1, 50.0, 5.0);
    let cfg = SyncConfig {
        interval: 500.0,
        ..SyncConfig::default()
    };
    let outcome = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 25, 3);
    assert!(outcome.max_skew() <= skew_bound(outcome.tree_depth(), &cfg, 50.0) + 1e-9);

    let guard = outcome.required_guard();
    assert!(guard > 0.0 && guard < 5.0, "guard {guard}");
    let compile_config = CompileConfig {
        guard_time: guard,
        ..CompileConfig::default()
    };
    let sched = compile(&cube, &tfg, &alloc, &timing, period, &compile_config)
        .expect("tight sync admits a schedule");
    verify(&sched, &cube, &tfg).expect("guarded schedule verifies");
    assert_eq!(sched.guard_time(), guard);

    // Operational execution still gives one output per period.
    let exec = sr::core::execute(&sched, &tfg, &alloc, &timing, 20).expect("executes");
    assert!(exec.is_throughput_constant(1e-9));
}

#[test]
fn hopeless_skew_is_rejected_at_compile_time() {
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let tfg = dvb_uniform(10);
    let timing = Timing::calibrated_dvb(128.0);
    let alloc = sr::mapping::random_distinct(&tfg, &cube, 7).unwrap();
    let period = timing.longest_task(&tfg) / 0.8;

    // Sync so loose the guard swamps the intervals.
    let clocks = ClockEnsemble::random(64, 1, 200.0, 5.0);
    let cfg = SyncConfig {
        interval: 200_000.0,
        ..SyncConfig::default()
    };
    let outcome = simulate_sync(&cube, NodeId(0), &clocks, &cfg, 10, 3);
    let guard = outcome.required_guard();
    assert!(guard > 10.0, "guard {guard}");
    let compile_config = CompileConfig {
        guard_time: guard,
        ..CompileConfig::default()
    };
    let err = compile(&cube, &tfg, &alloc, &timing, period, &compile_config).unwrap_err();
    assert!(
        matches!(err, CompileError::IntervalUnschedulable { .. }),
        "got {err:?}"
    );
}
