//! Property-based end-to-end testing: random task-flow graphs on random
//! small topologies either compile into schedules that pass the verifier,
//! or fail with a legitimate schedulability error — never a panic, never an
//! unverifiable schedule.

use proptest::prelude::*;
use sr::prelude::*;
use sr::tfg::generators::{layered_random, LayeredParams};

#[derive(Debug, Clone)]
enum TopoSpec {
    Cube(usize),
    Ghc(Vec<usize>),
    Torus(Vec<usize>),
}

fn topo_spec() -> impl Strategy<Value = TopoSpec> {
    prop_oneof![
        (2usize..5).prop_map(TopoSpec::Cube),
        prop::collection::vec(2usize..4, 1..3).prop_map(TopoSpec::Ghc),
        prop::collection::vec(3usize..5, 1..3).prop_map(TopoSpec::Torus),
    ]
}

fn build(spec: &TopoSpec) -> Box<dyn Topology> {
    match spec {
        TopoSpec::Cube(d) => Box::new(GeneralizedHypercube::binary(*d).unwrap()),
        TopoSpec::Ghc(r) => Box::new(GeneralizedHypercube::new(r).unwrap()),
        TopoSpec::Torus(e) => Box::new(Torus::new(e).unwrap()),
    }
}

fn tfg_params() -> impl Strategy<Value = LayeredParams> {
    (2usize..4, 1usize..4, 0.2f64..0.9).prop_map(|(layers, width, p)| LayeredParams {
        layers,
        width,
        edge_probability: p,
        ops: (500, 2000),
        bytes: (64, 2048),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// compile ∘ verify never produces an invalid schedule, and failures
    /// carry schedulability-shaped errors.
    #[test]
    fn compile_then_verify_or_legitimate_failure(
        spec in topo_spec(),
        seed in any::<u64>(),
        params in tfg_params(),
        load in 0.2f64..1.0,
        alloc_seed in any::<u64>(),
    ) {
        let topo = build(&spec);
        let tfg = layered_random(seed, &params);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr::mapping::random(&tfg, topo.as_ref(), alloc_seed);
        let period = timing.longest_task(&tfg) / load;

        match compile(topo.as_ref(), &tfg, &alloc, &timing, period, &CompileConfig::default()) {
            Ok(s) => {
                verify(&s, topo.as_ref(), &tfg)
                    .map_err(|e| TestCaseError::fail(format!("verify failed: {e}")))?;
                prop_assert!(s.peak_utilization() <= 1.0 + 1e-6);
                prop_assert!(s.latency() >= timing.critical_path(&tfg) - 1e-6);
            }
            Err(
                CompileError::UtilizationExceeded { .. }
                | CompileError::AllocationInfeasible { .. }
                | CompileError::IntervalUnschedulable { .. }
                | CompileError::NodeOverloaded { .. }
                | CompileError::TimeBounds(sr::tfg::TfgError::MessageExceedsPeriod { .. }),
            ) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// The wormhole simulator always terminates and keeps its accounting
    /// consistent on random workloads.
    #[test]
    fn wormhole_terminates_and_accounts(
        spec in topo_spec(),
        seed in any::<u64>(),
        params in tfg_params(),
        load in 0.3f64..1.5, // deliberately includes over-saturation
        alloc_seed in any::<u64>(),
    ) {
        let topo = build(&spec);
        let tfg = layered_random(seed, &params);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr::mapping::random(&tfg, topo.as_ref(), alloc_seed);
        let period = timing.longest_task(&tfg) / load;

        let sim = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing).unwrap();
        let cfg = SimConfig { invocations: 15, warmup: 3 };
        let res = sim.run(period, &cfg).unwrap();
        // The completed prefix is consistent.
        for (j, r) in res.records().iter().enumerate() {
            prop_assert_eq!(r.index, j);
            prop_assert!(r.latency() > 0.0);
        }
        if !res.deadlocked() {
            prop_assert_eq!(res.records().len(), cfg.invocations);
        }
    }

    /// When SR compiles, replaying its exact paths through the wormhole
    /// simulator is always accepted by the route validator.
    #[test]
    fn compiled_paths_are_valid_wormhole_routes(
        spec in topo_spec(),
        seed in any::<u64>(),
        alloc_seed in any::<u64>(),
    ) {
        let topo = build(&spec);
        let params = LayeredParams { layers: 3, width: 2, edge_probability: 0.6,
            ops: (500, 1500), bytes: (64, 1024) };
        let tfg = layered_random(seed, &params);
        let timing = Timing::new(64.0, 20.0);
        let alloc = sr::mapping::random(&tfg, topo.as_ref(), alloc_seed);
        let period = timing.longest_task(&tfg) * 2.0;

        if let Ok(s) = compile(topo.as_ref(), &tfg, &alloc, &timing, period, &CompileConfig::default()) {
            let sim = WormholeSim::new(topo.as_ref(), &tfg, &alloc, &timing).unwrap();
            prop_assert!(sim.with_routes(s.assignment().paths()).is_ok());
        }
    }
}
