use std::collections::{BTreeSet, VecDeque};
use std::sync::OnceLock;

use crate::{LinkId, NodeId, Path, Topology};

/// A set of failed links and nodes.
///
/// A failed node takes all of its incident links down with it; a failed link
/// leaves its endpoints alive. The set is the input both to the masked
/// topology view ([`MaskedTopology`]) and to the damage analyzer in
/// `sr-core`, which partitions a compiled schedule's messages into those
/// whose paths survive untouched and those that must be re-routed.
///
/// # Examples
///
/// ```
/// use sr_topology::{FaultSet, LinkId, NodeId};
///
/// let faults = FaultSet::new().fail_link(LinkId(3)).fail_node(NodeId(5));
/// assert!(faults.is_link_failed(LinkId(3)));
/// assert!(faults.is_node_failed(NodeId(5)));
/// assert_eq!(faults.num_failed_links(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    links: BTreeSet<LinkId>,
    nodes: BTreeSet<NodeId>,
}

impl FaultSet {
    /// An empty fault set (the healthy network).
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Builder: marks `link` as failed.
    pub fn fail_link(mut self, link: LinkId) -> Self {
        self.links.insert(link);
        self
    }

    /// Builder: marks `node` as failed.
    pub fn fail_node(mut self, node: NodeId) -> Self {
        self.nodes.insert(node);
        self
    }

    /// A fault set with the given failed links.
    pub fn with_links<I: IntoIterator<Item = LinkId>>(links: I) -> Self {
        FaultSet {
            links: links.into_iter().collect(),
            nodes: BTreeSet::new(),
        }
    }

    /// A fault set with the given failed nodes.
    pub fn with_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        FaultSet {
            links: BTreeSet::new(),
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Draws `k` distinct failed links uniformly from `topo`, deterministic
    /// in `seed`.
    ///
    /// Uses a partial Fisher–Yates shuffle over the dense link index space
    /// driven by a splitmix64 stream, so draws are reproducible without any
    /// external RNG dependency.
    ///
    /// # Panics
    ///
    /// Panics if `k > topo.num_links()`.
    pub fn random_links(topo: &dyn Topology, k: usize, seed: u64) -> Self {
        let n = topo.num_links();
        assert!(k <= n, "cannot fail {k} of {n} links");
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in 0..k {
            let j = i + (splitmix64(&mut state) as usize) % (n - i);
            idx.swap(i, j);
        }
        FaultSet::with_links(idx[..k].iter().map(|&i| LinkId(i)))
    }

    /// `true` when `link` is failed (explicitly, not via a failed endpoint).
    pub fn is_link_failed(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// `true` when `node` is failed.
    pub fn is_node_failed(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// `true` when `link` is unusable in `topo`: failed itself or incident
    /// to a failed node.
    pub fn link_masked(&self, link: LinkId, topo: &dyn Topology) -> bool {
        if self.is_link_failed(link) {
            return true;
        }
        let (a, b) = topo.link_endpoints(link);
        self.is_node_failed(a) || self.is_node_failed(b)
    }

    /// The explicitly failed links, ascending.
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().copied()
    }

    /// The failed nodes, ascending.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of explicitly failed links.
    pub fn num_failed_links(&self) -> usize {
        self.links.len()
    }

    /// Number of failed nodes.
    pub fn num_failed_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }
}

impl std::fmt::Display for FaultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "no faults");
        }
        let mut first = true;
        for l in &self.links {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        for n in &self.nodes {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A topology with a [`FaultSet`] applied: the same dense node/link index
/// space as the inner topology, but failed links (and every link incident to
/// a failed node) are invisible to adjacency, routing, and path enumeration.
///
/// Keeping the index space unchanged is what makes incremental repair cheap:
/// utilization matrices, pinned allocations, and switching schedules indexed
/// by the original [`LinkId`]s stay valid verbatim for surviving resources.
///
/// Routing on the mask is recomputed from scratch by breadth-first search
/// (the inner topology's algebraic routing no longer applies once edges are
/// missing): [`Topology::distance`] reads a per-source BFS distance row
/// computed lazily on first use (so constructing the mask is `O(n + faults)`
/// and a workload that routes between few pairs never pays for the full
/// all-pairs table), and [`Topology::shortest_paths`] enumerates shortest
/// paths through the BFS distance DAG in deterministic ascending-neighbor
/// order. When the
/// inner dimension-order path survives the mask intact it is promoted to the
/// front of the enumeration, preserving the trait's "dimension-order first"
/// contract wherever it is still meaningful.
///
/// # Examples
///
/// ```
/// use sr_topology::{FaultSet, MaskedTopology, NodeId, Topology, Torus};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let torus = Torus::new(&[4, 4])?;
/// let healthy = torus.shortest_paths(NodeId(0), NodeId(1), 8);
/// let link = torus.link_between(NodeId(0), NodeId(1)).unwrap();
/// let masked = MaskedTopology::new(&torus, FaultSet::new().fail_link(link));
/// // The direct hop is gone; the masked route detours.
/// assert_eq!(healthy[0].hops(), 1);
/// assert!(masked.connects(NodeId(0), NodeId(1)));
/// assert_eq!(masked.distance(NodeId(0), NodeId(1)), 3);
/// # Ok(())
/// # }
/// ```
pub struct MaskedTopology<'a> {
    inner: &'a dyn Topology,
    faults: FaultSet,
    neighbors: Vec<Vec<NodeId>>,
    /// Per-source hop-distance rows over surviving edges, BFS-computed
    /// lazily on first use; `u32::MAX` = unreachable.
    dist: Vec<OnceLock<Vec<u32>>>,
    name: String,
}

const UNREACHABLE: u32 = u32::MAX;

impl<'a> MaskedTopology<'a> {
    /// Applies `faults` to `inner`.
    ///
    /// # Panics
    ///
    /// Panics if the fault set names a node or link outside `inner`'s index
    /// space.
    pub fn new(inner: &'a dyn Topology, faults: FaultSet) -> Self {
        let n = inner.num_nodes();
        for node in faults.failed_nodes() {
            assert!(
                node.index() < n,
                "failed node {node} out of range for {}",
                inner.name()
            );
        }
        for link in faults.failed_links() {
            assert!(
                link.index() < inner.num_links(),
                "failed link {link} out of range for {}",
                inner.name()
            );
        }
        let neighbors: Vec<Vec<NodeId>> = (0..n)
            .map(|u| {
                let u = NodeId(u);
                if faults.is_node_failed(u) {
                    return Vec::new();
                }
                inner
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| {
                        !faults.is_node_failed(v)
                            && !faults.is_link_failed(
                                inner.link_between(u, v).expect("neighbors are adjacent"),
                            )
                    })
                    .collect()
            })
            .collect();
        let dist = (0..n).map(|_| OnceLock::new()).collect();
        let name = format!(
            "Masked({}, -{}L/-{}N)",
            inner.name(),
            faults.num_failed_links(),
            faults.num_failed_nodes()
        );
        MaskedTopology {
            inner,
            faults,
            neighbors,
            dist,
            name,
        }
    }

    /// The fault set applied to this view.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The unmasked topology.
    pub fn inner(&self) -> &'a dyn Topology {
        self.inner
    }

    /// The BFS distance row from `src`, computed on first use and cached.
    fn dist_row(&self, src: usize) -> &[u32] {
        self.dist[src].get_or_init(|| {
            let n = self.inner.num_nodes();
            let mut row = vec![UNREACHABLE; n];
            row[src] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                let du = row[u];
                for &v in &self.neighbors[u] {
                    if row[v.index()] == UNREACHABLE {
                        row[v.index()] = du + 1;
                        queue.push_back(v.index());
                    }
                }
            }
            row
        })
    }

    /// `true` when a surviving route from `a` to `b` exists.
    pub fn connects(&self, a: NodeId, b: NodeId) -> bool {
        self.masked_dist(a, b) != UNREACHABLE
    }

    /// `true` when every pair of surviving nodes is mutually reachable.
    pub fn is_connected(&self) -> bool {
        let n = self.inner.num_nodes();
        let alive: Vec<usize> = (0..n)
            .filter(|&u| !self.faults.is_node_failed(NodeId(u)))
            .collect();
        // Links are undirected, so reachability is symmetric and transitive:
        // one surviving node reaching every other one is equivalent to full
        // pairwise mutual reachability.
        let Some(&first) = alive.first() else {
            return true;
        };
        let row = self.dist_row(first);
        alive.iter().all(|&v| row[v] != UNREACHABLE)
    }

    fn masked_dist(&self, a: NodeId, b: NodeId) -> u32 {
        // Undirected links make hop distance symmetric; reading through the
        // *destination* row means path enumeration toward one target forces
        // exactly one BFS, however many intermediate nodes it inspects.
        self.dist_row(b.index())[a.index()]
    }

    /// Enumerates up to `cap` shortest paths through the BFS distance DAG,
    /// trying neighbors in ascending order at every step.
    fn enumerate_shortest(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path> {
        let mut out = Vec::new();
        if cap == 0 || !self.connects(src, dst) {
            return out;
        }
        let mut prefix = vec![src];
        self.dag_recurse(dst, &mut prefix, cap, &mut out);
        out
    }

    fn dag_recurse(&self, dst: NodeId, prefix: &mut Vec<NodeId>, cap: usize, out: &mut Vec<Path>) {
        if out.len() >= cap {
            return;
        }
        let here = *prefix.last().expect("prefix is non-empty");
        if here == dst {
            out.push(Path::new(prefix.clone()));
            return;
        }
        let remaining = self.masked_dist(here, dst);
        for &v in &self.neighbors[here.index()] {
            if self.masked_dist(v, dst) + 1 == remaining {
                prefix.push(v);
                self.dag_recurse(dst, prefix, cap, out);
                prefix.pop();
                if out.len() >= cap {
                    return;
                }
            }
        }
    }

    /// `true` when `path` uses only surviving nodes and links.
    pub fn path_survives(&self, path: &Path) -> bool {
        path.nodes().iter().all(|&v| !self.faults.is_node_failed(v))
            && path.nodes().windows(2).all(|w| {
                self.inner
                    .link_between(w[0], w[1])
                    .is_some_and(|l| !self.faults.is_link_failed(l))
            })
    }
}

impl Topology for MaskedTopology<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn mixed_radix_hint(&self) -> Option<&crate::MixedRadix> {
        // Failures do not renumber nodes, so the inner coordinate system
        // still describes the surviving fabric.
        self.inner.mixed_radix_hint()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        // Endpoints stay defined even for failed links: the id space is the
        // inner topology's, only usability changes.
        self.inner.link_endpoints(link)
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        if self.faults.is_node_failed(a) || self.faults.is_node_failed(b) {
            return None;
        }
        self.inner
            .link_between(a, b)
            .filter(|&l| !self.faults.is_link_failed(l))
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let d = self.masked_dist(a, b);
        assert!(
            d != UNREACHABLE,
            "{a} and {b} are disconnected in {}",
            self.name
        );
        d as usize
    }

    /// The inner dimension-order path when it survives the mask; otherwise
    /// the first masked shortest path.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are disconnected under the mask; call
    /// [`MaskedTopology::connects`] first.
    fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let inner_path = self.inner.dimension_order_path(src, dst);
        if self.path_survives(&inner_path) {
            return inner_path;
        }
        self.enumerate_shortest(src, dst, 1)
            .into_iter()
            .next()
            .unwrap_or_else(|| panic!("{src} and {dst} are disconnected in {}", self.name))
    }

    fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path> {
        if src == dst {
            return if cap == 0 {
                Vec::new()
            } else {
                vec![Path::trivial(src)]
            };
        }
        let mut paths = self.enumerate_shortest(src, dst, cap);
        // Promote the surviving dimension-order path to the front to keep the
        // trait's "dimension-order first" contract where it still applies.
        let dop = self.inner.dimension_order_path(src, dst);
        if self.path_survives(&dop) {
            if let Some(pos) = paths.iter().position(|p| *p == dop) {
                paths[..=pos].rotate_right(1);
            } else if !paths.is_empty() {
                // Cap cut it off during enumeration; force it in.
                paths.pop();
                paths.insert(0, dop);
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneralizedHypercube, Mesh, Torus};

    #[test]
    fn empty_fault_set_changes_nothing() {
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let masked = MaskedTopology::new(&cube, FaultSet::new());
        assert_eq!(masked.num_nodes(), 8);
        assert_eq!(masked.num_links(), 12);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    masked.distance(NodeId(a), NodeId(b)),
                    cube.distance(NodeId(a), NodeId(b))
                );
            }
            assert_eq!(masked.neighbors(NodeId(a)), cube.neighbors(NodeId(a)));
        }
        let p = masked.dimension_order_path(NodeId(0), NodeId(7));
        assert_eq!(p, cube.dimension_order_path(NodeId(0), NodeId(7)));
    }

    #[test]
    fn failed_link_is_invisible() {
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let link = cube.link_between(NodeId(0), NodeId(1)).unwrap();
        let masked = MaskedTopology::new(&cube, FaultSet::new().fail_link(link));
        assert_eq!(masked.link_between(NodeId(0), NodeId(1)), None);
        assert!(!masked.neighbors(NodeId(0)).contains(&NodeId(1)));
        assert_eq!(masked.distance(NodeId(0), NodeId(1)), 3);
        let p = masked.dimension_order_path(NodeId(0), NodeId(1));
        assert_eq!(p.hops(), 3);
        assert!(masked.path_survives(&p));
    }

    #[test]
    fn failed_node_takes_links_down() {
        let torus = Torus::new(&[4, 4]).unwrap();
        let masked = MaskedTopology::new(&torus, FaultSet::new().fail_node(NodeId(5)));
        assert!(masked.neighbors(NodeId(5)).is_empty());
        for &v in torus.neighbors(NodeId(5)) {
            assert!(!masked.neighbors(v).contains(&NodeId(5)));
            assert_eq!(masked.link_between(v, NodeId(5)), None);
        }
        assert!(!masked.connects(NodeId(0), NodeId(5)));
        assert!(masked.connects(NodeId(0), NodeId(10)));
    }

    #[test]
    fn shortest_paths_avoid_faults_and_are_shortest() {
        let torus = Torus::new(&[4, 4]).unwrap();
        let link = torus.link_between(NodeId(0), NodeId(1)).unwrap();
        let faults = FaultSet::new().fail_link(link);
        let masked = MaskedTopology::new(&torus, faults);
        let paths = masked.shortest_paths(NodeId(0), NodeId(1), 16);
        assert!(!paths.is_empty());
        for p in &paths {
            assert_eq!(p.hops(), masked.distance(NodeId(0), NodeId(1)));
            assert!(masked.path_survives(p));
            assert!(p.is_simple());
        }
    }

    #[test]
    fn surviving_dimension_order_path_comes_first() {
        let torus = Torus::new(&[4, 4]).unwrap();
        // Fail a link unrelated to the 0 -> 5 route.
        let far = torus.link_between(NodeId(10), NodeId(11)).unwrap();
        let masked = MaskedTopology::new(&torus, FaultSet::new().fail_link(far));
        let paths = masked.shortest_paths(NodeId(0), NodeId(5), 8);
        assert_eq!(paths[0], torus.dimension_order_path(NodeId(0), NodeId(5)));
    }

    #[test]
    fn trivial_pair_yields_trivial_path() {
        let mesh = Mesh::new(&[3, 3]).unwrap();
        let masked = MaskedTopology::new(&mesh, FaultSet::new());
        let paths = masked.shortest_paths(NodeId(4), NodeId(4), 4);
        assert_eq!(paths, vec![Path::trivial(NodeId(4))]);
    }

    #[test]
    fn disconnection_detected() {
        // Mesh corner: node 0 in a 2x2 mesh has exactly two links; failing
        // both isolates it.
        let mesh = Mesh::new(&[2, 2]).unwrap();
        let l1 = mesh.link_between(NodeId(0), NodeId(1)).unwrap();
        let l2 = mesh.link_between(NodeId(0), NodeId(2)).unwrap();
        let masked = MaskedTopology::new(&mesh, FaultSet::with_links([l1, l2]));
        assert!(!masked.connects(NodeId(0), NodeId(3)));
        assert!(!masked.is_connected());
        assert!(masked.shortest_paths(NodeId(0), NodeId(3), 4).is_empty());
        assert!(masked.connects(NodeId(1), NodeId(2)));
    }

    #[test]
    fn random_links_is_deterministic_and_distinct() {
        let torus = Torus::new(&[4, 4]).unwrap();
        let a = FaultSet::random_links(&torus, 5, 42);
        let b = FaultSet::random_links(&torus, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.num_failed_links(), 5);
        let c = FaultSet::random_links(&torus, 5, 43);
        assert_ne!(a, c); // overwhelmingly likely for distinct seeds
    }

    #[test]
    fn display_lists_faults() {
        let fs = FaultSet::new().fail_link(LinkId(2)).fail_node(NodeId(7));
        assert_eq!(fs.to_string(), "L2,N7");
        assert_eq!(FaultSet::new().to_string(), "no faults");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_panics() {
        let mesh = Mesh::new(&[2, 2]).unwrap();
        let _ = MaskedTopology::new(&mesh, FaultSet::new().fail_node(NodeId(99)));
    }
}
