//! Multicomputer interconnection topologies for scheduled routing.
//!
//! This crate models the direct networks evaluated by Shukla & Agrawal
//! (ISCA '91): mixed-radix **generalized hypercubes** ([`GeneralizedHypercube`])
//! and **k-ary n-dimensional tori** ([`Torus`]).
//!
//! The channel model follows the paper exactly: every pair of adjacent nodes
//! is joined by a single *bidirectional, half-duplex* link, so a link is one
//! schedulable resource that can carry at most one message at a time in
//! either direction. Links are identified by dense [`LinkId`] indices so that
//! utilization matrices can be plain rectangular arrays.
//!
//! Two routing services are provided on every topology:
//!
//! * [`Topology::dimension_order_path`] — the deterministic LSD-to-MSD
//!   ("e-cube") path the paper uses both as the wormhole-routing function and
//!   as the baseline path assignment, and
//! * [`Topology::shortest_paths`] — enumeration of the *multiple equivalent
//!   shortest paths* between non-adjacent nodes that scheduled routing
//!   exploits, with a configurable cap.
//!
//! # Examples
//!
//! ```
//! use sr_topology::{GeneralizedHypercube, NodeId, Topology};
//!
//! # fn main() -> Result<(), sr_topology::TopologyError> {
//! // The paper's binary 6-cube: 64 nodes, 192 links.
//! let cube = GeneralizedHypercube::binary(6)?;
//! assert_eq!(cube.num_nodes(), 64);
//! assert_eq!(cube.num_links(), 192);
//!
//! let path = cube.dimension_order_path(NodeId(0), NodeId(63));
//! assert_eq!(path.hops(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
mod error;
mod fault;
mod ghc;
mod ids;
mod mesh;
mod mixed_radix;
mod path;
mod stats;
mod torus;

pub use error::TopologyError;
pub use fault::{FaultSet, MaskedTopology};
pub use ghc::GeneralizedHypercube;
pub use ids::{LinkId, NodeId};
pub use mesh::Mesh;
pub use mixed_radix::MixedRadix;
pub use path::Path;
pub use stats::TopologyStats;
pub use torus::Torus;

/// A direct interconnection network with half-duplex links.
///
/// Implementations expose dense node and link index spaces
/// (`0..num_nodes()`, `0..num_links()`) so callers can use flat arrays keyed
/// by [`NodeId`]/[`LinkId`].
///
/// The trait is object-safe; the scheduled-routing and wormhole crates accept
/// `&dyn Topology`. `Send + Sync` is a supertrait so the compiler's parallel
/// feedback search can share one topology across worker threads (every
/// implementation is immutable data).
pub trait Topology: Send + Sync {
    /// Human-readable name, e.g. `"GHC(2,2,2,2,2,2)"` or `"Torus(8,8)"`.
    fn name(&self) -> String;

    /// Number of nodes in the network.
    fn num_nodes(&self) -> usize;

    /// Number of half-duplex links in the network.
    fn num_links(&self) -> usize;

    /// The two endpoints of a link, in ascending node order.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId);

    /// The link joining `a` and `b`, if they are adjacent.
    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId>;

    /// Neighbors of `node`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// Length (in hops) of a shortest path from `a` to `b`.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// The deterministic dimension-order (LSD-to-MSD) path from `src` to
    /// `dst`.
    ///
    /// This is the routing function the paper attributes to wormhole-routed
    /// machines and uses as the baseline path assignment: the source address
    /// is corrected digit by digit starting from the least significant digit
    /// until it equals the destination address.
    fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path;

    /// Up to `cap` distinct shortest paths from `src` to `dst`.
    ///
    /// The dimension-order path is always first, so `shortest_paths(a, b, 1)`
    /// degenerates to the baseline routing. Enumeration order is
    /// deterministic.
    ///
    /// For `src == dst` a single empty path is returned.
    fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path>;

    /// Maximum node degree of the topology.
    fn degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|n| self.neighbors(NodeId(n)).len())
            .max()
            .unwrap_or(0)
    }

    /// The mixed-radix coordinate system behind this topology's node
    /// numbering, when it has one (tori, generalized hypercubes, meshes).
    ///
    /// Partitioners use this to cut the fabric along coordinate
    /// hyperplanes instead of raw index ranges; topologies without a
    /// coordinate structure return `None` and callers fall back to a
    /// BFS-layer decomposition.
    fn mixed_radix_hint(&self) -> Option<&MixedRadix> {
        None
    }

    /// Network diameter (longest shortest-path distance over all pairs).
    ///
    /// Computed by brute force; intended for tests and reporting, not inner
    /// loops.
    fn diameter(&self) -> usize {
        let n = self.num_nodes();
        let mut d = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                d = d.max(self.distance(NodeId(a), NodeId(b)));
            }
        }
        d
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn topology_is_object_safe() {
        let cube = GeneralizedHypercube::binary(3).unwrap();
        let dyn_topo: &dyn Topology = &cube;
        assert_eq!(dyn_topo.num_nodes(), 8);
        assert_eq!(dyn_topo.degree(), 3);
    }

    #[test]
    fn diameter_binary_cube_is_dimension_count() {
        let cube = GeneralizedHypercube::binary(4).unwrap();
        assert_eq!(cube.diameter(), 4);
    }

    #[test]
    fn diameter_torus() {
        let t = Torus::new(&[4, 4]).unwrap();
        assert_eq!(t.diameter(), 4); // 2 + 2
    }
}
