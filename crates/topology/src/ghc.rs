use crate::adjacency::Adjacency;
use crate::path::enumerate_interleavings;
use crate::{MixedRadix, NodeId, Path, Topology, TopologyError};

/// A mixed-radix **generalized hypercube** (GHC) \[Agr86\].
///
/// Nodes carry mixed-radix addresses; two nodes are adjacent iff their
/// addresses differ in exactly **one** digit (by any amount). With radices
/// `(r_0, …, r_{d-1})` each node has degree `Σ (r_i − 1)`:
///
/// * `GHC(2,2,2,2,2,2)` — the paper's **binary 6-cube**: 64 nodes, degree 6,
///   192 links;
/// * `GHC(4,4,4)` — 64 nodes, degree 9, 288 links.
///
/// A shortest path corrects each differing digit once, in some order, so the
/// number of shortest paths between nodes at Hamming distance `h` is `h!`.
///
/// # Examples
///
/// ```
/// use sr_topology::{GeneralizedHypercube, NodeId, Topology};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let ghc = GeneralizedHypercube::new(&[4, 4, 4])?;
/// assert_eq!(ghc.num_nodes(), 64);
/// assert_eq!(ghc.degree(), 9);
/// assert_eq!(ghc.num_links(), 288);
///
/// // Distance is Hamming distance over digits.
/// assert_eq!(ghc.distance(NodeId(0), NodeId(63)), 3);
/// assert_eq!(ghc.shortest_paths(NodeId(0), NodeId(63), 100).len(), 6); // 3!
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneralizedHypercube {
    radix: MixedRadix,
    adj: Adjacency,
}

impl GeneralizedHypercube {
    /// Creates a generalized hypercube with the given per-dimension radices.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] for an empty radix list, radices below 2,
    /// or an excessive node count.
    pub fn new(radices: &[usize]) -> Result<Self, TopologyError> {
        let radix = MixedRadix::new(radices)?;
        let mr = radix.clone();
        let adj = Adjacency::build(radix.num_nodes(), move |node| {
            let digits = mr.digits(node);
            let mut nb = Vec::new();
            for (dim, &r) in mr.radices().iter().enumerate() {
                for v in 0..r {
                    if v != digits[dim] {
                        nb.push(mr.with_digit(node, dim, v));
                    }
                }
            }
            nb
        });
        Ok(GeneralizedHypercube { radix, adj })
    }

    /// The binary hypercube of the given dimension (`radix 2` everywhere).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoDimensions`] when `dimensions == 0` and
    /// [`TopologyError::TooManyNodes`] for very large dimension counts.
    pub fn binary(dimensions: usize) -> Result<Self, TopologyError> {
        Self::new(&vec![2; dimensions])
    }

    /// The address codec of this hypercube.
    pub fn mixed_radix(&self) -> &MixedRadix {
        &self.radix
    }

    /// Dimensions in which `a` and `b` differ, ascending (LSD first).
    fn differing_dims(&self, a: NodeId, b: NodeId) -> Vec<usize> {
        (0..self.radix.dimensions())
            .filter(|&d| self.radix.digit(a, d) != self.radix.digit(b, d))
            .collect()
    }
}

impl Topology for GeneralizedHypercube {
    fn name(&self) -> String {
        let radices: Vec<String> = self.radix.radices().iter().map(|r| r.to_string()).collect();
        format!("GHC({})", radices.join(","))
    }

    fn mixed_radix_hint(&self) -> Option<&MixedRadix> {
        Some(self.mixed_radix())
    }

    fn num_nodes(&self) -> usize {
        self.radix.num_nodes()
    }

    fn num_links(&self) -> usize {
        self.adj.num_links()
    }

    fn link_endpoints(&self, link: crate::LinkId) -> (NodeId, NodeId) {
        self.adj.link_endpoints(link)
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<crate::LinkId> {
        self.adj.link_between(a, b)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.adj.neighbors(node)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.radix.hamming(a, b)
    }

    fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let mut nodes = vec![src];
        let mut here = src;
        for dim in 0..self.radix.dimensions() {
            let want = self.radix.digit(dst, dim);
            if self.radix.digit(here, dim) != want {
                here = self.radix.with_digit(here, dim, want);
                nodes.push(here);
            }
        }
        Path::new(nodes)
    }

    fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path> {
        let dims = self.differing_dims(src, dst);
        let move_counts = vec![1usize; dims.len()];
        let radix = &self.radix;
        enumerate_interleavings(src, &move_counts, cap, |node, i| {
            let dim = dims[i];
            radix.with_digit(node, dim, radix.digit(dst, dim))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;

    #[test]
    fn binary_6_cube_dimensions() {
        let c = GeneralizedHypercube::binary(6).unwrap();
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.degree(), 6);
        assert_eq!(c.num_links(), 64 * 6 / 2);
        assert_eq!(c.name(), "GHC(2,2,2,2,2,2)");
    }

    #[test]
    fn ghc_444_dimensions() {
        let g = GeneralizedHypercube::new(&[4, 4, 4]).unwrap();
        assert_eq!(g.num_nodes(), 64);
        assert_eq!(g.degree(), 9);
        assert_eq!(g.num_links(), 64 * 9 / 2);
    }

    #[test]
    fn adjacency_is_single_digit_difference() {
        let g = GeneralizedHypercube::new(&[3, 3]).unwrap();
        for n in 0..9 {
            for &m in g.neighbors(NodeId(n)) {
                assert_eq!(g.mixed_radix().hamming(NodeId(n), m), 1);
            }
        }
    }

    #[test]
    fn dimension_order_path_corrects_lsd_first() {
        let c = GeneralizedHypercube::binary(3).unwrap();
        let p = c.dimension_order_path(NodeId(0), NodeId(0b101));
        // LSD first: 000 -> 001 -> 101.
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(5)]);
    }

    #[test]
    fn dimension_order_path_is_shortest_and_valid() {
        let g = GeneralizedHypercube::new(&[4, 2, 3]).unwrap();
        for a in 0..g.num_nodes() {
            for b in 0..g.num_nodes() {
                let p = g.dimension_order_path(NodeId(a), NodeId(b));
                assert!(p.validate(&g));
                assert_eq!(p.hops(), g.distance(NodeId(a), NodeId(b)));
                assert_eq!(p.source(), NodeId(a));
                assert_eq!(p.destination(), NodeId(b));
            }
        }
    }

    #[test]
    fn shortest_paths_count_is_factorial_of_distance() {
        let c = GeneralizedHypercube::binary(4).unwrap();
        let paths = c.shortest_paths(NodeId(0), NodeId(0b1111), usize::MAX);
        assert_eq!(paths.len(), 24); // 4!
        for p in &paths {
            assert!(p.validate(&c));
            assert_eq!(p.hops(), 4);
            assert!(p.is_simple());
        }
        // All distinct.
        let set: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn shortest_paths_first_is_dimension_order() {
        let g = GeneralizedHypercube::new(&[4, 4, 4]).unwrap();
        for (a, b) in [(0usize, 63usize), (5, 40), (17, 17), (1, 2)] {
            let paths = g.shortest_paths(NodeId(a), NodeId(b), 10);
            assert_eq!(paths[0], g.dimension_order_path(NodeId(a), NodeId(b)));
        }
    }

    #[test]
    fn same_node_trivial_path() {
        let c = GeneralizedHypercube::binary(3).unwrap();
        let paths = c.shortest_paths(NodeId(2), NodeId(2), 5);
        assert_eq!(paths, vec![Path::trivial(NodeId(2))]);
    }

    #[test]
    fn link_endpoints_consistent_with_link_between() {
        let g = GeneralizedHypercube::new(&[3, 2]).unwrap();
        for l in 0..g.num_links() {
            let (a, b) = g.link_endpoints(LinkId(l));
            assert_eq!(g.link_between(a, b), Some(LinkId(l)));
        }
    }
}
