use crate::{NodeId, TopologyError};

/// Mixed-radix address codec shared by generalized hypercubes and tori.
///
/// A node's address is a digit vector `(a_0, a_1, …, a_{d-1})` with
/// `0 <= a_i < radix_i`; digit 0 is the **least significant digit** (LSD).
/// The dense [`NodeId`] encoding is
/// `a_0 + a_1·r_0 + a_2·r_0·r_1 + …`.
///
/// # Examples
///
/// ```
/// use sr_topology::{MixedRadix, NodeId};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let mr = MixedRadix::new(&[4, 4, 4])?;
/// let digits = mr.digits(NodeId(27));
/// assert_eq!(digits, vec![3, 2, 1]); // 3 + 2·4 + 1·16 = 27
/// assert_eq!(mr.encode(&digits), NodeId(27));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRadix {
    radices: Vec<usize>,
    /// `weights[i]` = product of radices of dimensions `< i`.
    weights: Vec<usize>,
    num_nodes: usize,
}

/// Upper bound on node counts; keeps utilization matrices laptop-sized.
const MAX_NODES: usize = 1 << 20;

impl MixedRadix {
    /// Creates a codec for the given per-dimension radices.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoDimensions`] for an empty radix list,
    /// [`TopologyError::RadixTooSmall`] if any radix is below 2, and
    /// [`TopologyError::TooManyNodes`] if the product of radices exceeds the
    /// supported maximum.
    pub fn new(radices: &[usize]) -> Result<Self, TopologyError> {
        if radices.is_empty() {
            return Err(TopologyError::NoDimensions);
        }
        for (dimension, &radix) in radices.iter().enumerate() {
            if radix < 2 {
                return Err(TopologyError::RadixTooSmall { dimension, radix });
            }
        }
        let product: u128 = radices.iter().map(|&r| r as u128).product();
        if product > MAX_NODES as u128 {
            return Err(TopologyError::TooManyNodes {
                requested: product,
                max: MAX_NODES,
            });
        }
        let mut weights = Vec::with_capacity(radices.len());
        let mut w = 1usize;
        for &r in radices {
            weights.push(w);
            w *= r;
        }
        Ok(MixedRadix {
            radices: radices.to_vec(),
            weights,
            num_nodes: w,
        })
    }

    /// Number of dimensions.
    pub fn dimensions(&self) -> usize {
        self.radices.len()
    }

    /// Per-dimension radices.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// Total number of addresses (`Π radices`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Decodes a node id into its digit vector (LSD first).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn digits(&self, node: NodeId) -> Vec<usize> {
        assert!(
            node.0 < self.num_nodes,
            "node {node} out of range for {} nodes",
            self.num_nodes
        );
        let mut rest = node.0;
        self.radices
            .iter()
            .map(|&r| {
                let d = rest % r;
                rest /= r;
                d
            })
            .collect()
    }

    /// Encodes a digit vector (LSD first) into a node id.
    ///
    /// # Panics
    ///
    /// Panics if the digit count does not match [`Self::dimensions`] or any
    /// digit is out of range for its radix.
    pub fn encode(&self, digits: &[usize]) -> NodeId {
        assert_eq!(
            digits.len(),
            self.radices.len(),
            "digit count {} does not match dimension count {}",
            digits.len(),
            self.radices.len()
        );
        let mut id = 0usize;
        for (i, (&d, &r)) in digits.iter().zip(&self.radices).enumerate() {
            assert!(
                d < r,
                "digit {d} out of range for radix {r} in dimension {i}"
            );
            id += d * self.weights[i];
        }
        NodeId(id)
    }

    /// Returns `node` with dimension `dim` replaced by `digit`.
    ///
    /// This is the single-hop "digit correction" move of a generalized
    /// hypercube.
    ///
    /// # Panics
    ///
    /// Panics if `node`, `dim`, or `digit` is out of range.
    pub fn with_digit(&self, node: NodeId, dim: usize, digit: usize) -> NodeId {
        assert!(dim < self.radices.len(), "dimension {dim} out of range");
        assert!(
            digit < self.radices[dim],
            "digit {digit} out of range for radix {}",
            self.radices[dim]
        );
        let current = self.digit(node, dim);
        let delta = (digit as isize - current as isize) * self.weights[dim] as isize;
        NodeId((node.0 as isize + delta) as usize)
    }

    /// Extracts the digit of `node` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `dim` is out of range.
    pub fn digit(&self, node: NodeId, dim: usize) -> usize {
        assert!(node.0 < self.num_nodes, "node {node} out of range");
        assert!(dim < self.radices.len(), "dimension {dim} out of range");
        (node.0 / self.weights[dim]) % self.radices[dim]
    }

    /// Hamming distance between two addresses (number of differing digits).
    pub fn hamming(&self, a: NodeId, b: NodeId) -> usize {
        let da = self.digits(a);
        let db = self.digits(b);
        da.iter().zip(&db).filter(|(x, y)| x != y).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(MixedRadix::new(&[]), Err(TopologyError::NoDimensions));
    }

    #[test]
    fn rejects_radix_one() {
        assert_eq!(
            MixedRadix::new(&[2, 1]),
            Err(TopologyError::RadixTooSmall {
                dimension: 1,
                radix: 1
            })
        );
    }

    #[test]
    fn rejects_huge() {
        assert!(matches!(
            MixedRadix::new(&[1 << 11, 1 << 11]),
            Err(TopologyError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip_all() {
        let mr = MixedRadix::new(&[3, 4, 2]).unwrap();
        assert_eq!(mr.num_nodes(), 24);
        for n in 0..24 {
            let d = mr.digits(NodeId(n));
            assert_eq!(mr.encode(&d), NodeId(n));
        }
    }

    #[test]
    fn digit_matches_digits() {
        let mr = MixedRadix::new(&[4, 4, 4]).unwrap();
        for n in 0..64 {
            let all = mr.digits(NodeId(n));
            #[allow(clippy::needless_range_loop)] // `dim` is also the query argument
            for dim in 0..3 {
                assert_eq!(mr.digit(NodeId(n), dim), all[dim]);
            }
        }
    }

    #[test]
    fn with_digit_replaces_only_that_dimension() {
        let mr = MixedRadix::new(&[4, 4]).unwrap();
        let n = mr.encode(&[1, 2]);
        let m = mr.with_digit(n, 0, 3);
        assert_eq!(mr.digits(m), vec![3, 2]);
    }

    #[test]
    fn hamming_distance() {
        let mr = MixedRadix::new(&[2, 2, 2]).unwrap();
        assert_eq!(mr.hamming(NodeId(0), NodeId(7)), 3);
        assert_eq!(mr.hamming(NodeId(5), NodeId(5)), 0);
        assert_eq!(mr.hamming(NodeId(0), NodeId(4)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digits_panics_out_of_range() {
        let mr = MixedRadix::new(&[2, 2]).unwrap();
        mr.digits(NodeId(4));
    }
}
