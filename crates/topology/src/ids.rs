use std::fmt;

/// Dense index of a node in a [`Topology`](crate::Topology).
///
/// Node ids are the mixed-radix encoding of the node's coordinate vector,
/// so `NodeId(0)` is the all-zeros address.
///
/// # Examples
///
/// ```
/// use sr_topology::NodeId;
///
/// let n = NodeId(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(n.to_string(), "N5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// Dense index of a half-duplex link in a [`Topology`](crate::Topology).
///
/// A link is a single schedulable resource joining two adjacent nodes; the
/// paper's channel model is bidirectional half-duplex, so there is exactly
/// one `LinkId` per adjacent node pair.
///
/// # Examples
///
/// ```
/// use sr_topology::LinkId;
///
/// let l = LinkId(3);
/// assert_eq!(l.index(), 3);
/// assert_eq!(l.to_string(), "L3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<usize> for LinkId {
    fn from(value: usize) -> Self {
        LinkId(value)
    }
}

impl From<LinkId> for usize {
    fn from(value: LinkId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 7usize.into();
        let raw: usize = n.into();
        assert_eq!(raw, 7);
    }

    #[test]
    fn link_id_roundtrip() {
        let l: LinkId = 9usize.into();
        let raw: usize = l.into();
        assert_eq!(raw, 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", NodeId(0)), "N0");
        assert_eq!(format!("{}", LinkId(0)), "L0");
    }
}
