use crate::adjacency::Adjacency;
use crate::path::enumerate_interleavings;
use crate::{MixedRadix, NodeId, Path, Topology, TopologyError};

/// A k-ary n-dimensional **mesh** (a torus without wraparound links).
///
/// Meshes matter for the wormhole baseline: dimension-order routing on a
/// mesh is provably deadlock-free under hold-while-blocked channel capture
/// (link acquisition follows a strict dimension ordering with no cycles),
/// whereas torus wraparound rings can deadlock without virtual channels.
/// The mesh is therefore the natural control platform when studying the
/// simulator's deadlock reports.
///
/// # Examples
///
/// ```
/// use sr_topology::{Mesh, NodeId, Topology};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let m = Mesh::new(&[8, 8])?;
/// assert_eq!(m.num_nodes(), 64);
/// assert_eq!(m.num_links(), 2 * 7 * 8); // 112: no wraparound
/// assert_eq!(m.distance(NodeId(0), NodeId(7)), 7); // no shortcut
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    radix: MixedRadix,
    adj: Adjacency,
}

impl Mesh {
    /// Creates a mesh with the given per-dimension extents.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] for an empty extent list, extents below
    /// 2, or an excessive node count.
    pub fn new(extents: &[usize]) -> Result<Self, TopologyError> {
        let radix = MixedRadix::new(extents)?;
        let mr = radix.clone();
        let adj = Adjacency::build(radix.num_nodes(), move |node| {
            let mut nb = Vec::new();
            for (dim, &k) in mr.radices().iter().enumerate() {
                let d = mr.digit(node, dim);
                if d + 1 < k {
                    nb.push(mr.with_digit(node, dim, d + 1));
                }
                if d > 0 {
                    nb.push(mr.with_digit(node, dim, d - 1));
                }
            }
            nb
        });
        Ok(Mesh { radix, adj })
    }

    /// The address codec of this mesh.
    pub fn mixed_radix(&self) -> &MixedRadix {
        &self.radix
    }

    /// Per-dimension signed offsets from `a` to `b`.
    fn offsets(&self, a: NodeId, b: NodeId) -> Vec<isize> {
        (0..self.radix.dimensions())
            .map(|d| self.radix.digit(b, d) as isize - self.radix.digit(a, d) as isize)
            .collect()
    }
}

impl Topology for Mesh {
    fn name(&self) -> String {
        let extents: Vec<String> = self.radix.radices().iter().map(|r| r.to_string()).collect();
        format!("Mesh({})", extents.join(","))
    }

    fn mixed_radix_hint(&self) -> Option<&MixedRadix> {
        Some(self.mixed_radix())
    }

    fn num_nodes(&self) -> usize {
        self.radix.num_nodes()
    }

    fn num_links(&self) -> usize {
        self.adj.num_links()
    }

    fn link_endpoints(&self, link: crate::LinkId) -> (NodeId, NodeId) {
        self.adj.link_endpoints(link)
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<crate::LinkId> {
        self.adj.link_between(a, b)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.adj.neighbors(node)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.offsets(a, b).iter().map(|d| d.unsigned_abs()).sum()
    }

    fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let offsets = self.offsets(src, dst);
        let mut nodes = vec![src];
        let mut here = src;
        for (dim, &off) in offsets.iter().enumerate() {
            let step = off.signum();
            for _ in 0..off.unsigned_abs() {
                let d = self.radix.digit(here, dim) as isize + step;
                here = self.radix.with_digit(here, dim, d as usize);
                nodes.push(here);
            }
        }
        Path::new(nodes)
    }

    fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path> {
        let offsets = self.offsets(src, dst);
        let dims: Vec<(usize, isize)> = offsets
            .iter()
            .enumerate()
            .filter(|(_, &o)| o != 0)
            .map(|(d, &o)| (d, o.signum()))
            .collect();
        if dims.is_empty() {
            return vec![Path::trivial(src)];
        }
        let counts: Vec<usize> = dims
            .iter()
            .map(|&(d, _)| offsets[d].unsigned_abs())
            .collect();
        let radix = &self.radix;
        enumerate_interleavings(src, &counts, cap, |node, i| {
            let (dim, step) = dims[i];
            let d = radix.digit(node, dim) as isize + step;
            radix.with_digit(node, dim, d as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_link_count() {
        let m = Mesh::new(&[4, 4, 4]).unwrap();
        assert_eq!(m.num_nodes(), 64);
        // Per dimension: 3 links per row, 16 rows -> 48; x3 dims = 144.
        assert_eq!(m.num_links(), 144);
        assert_eq!(m.name(), "Mesh(4,4,4)");
        // Corner degree 3, center degree 6.
        assert_eq!(m.neighbors(NodeId(0)).len(), 3);
        let center = m.mixed_radix().encode(&[1, 1, 1]);
        assert_eq!(m.neighbors(center).len(), 6);
    }

    #[test]
    fn no_wraparound() {
        let m = Mesh::new(&[8]).unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(7)), 7);
        assert!(m.link_between(NodeId(0), NodeId(7)).is_none());
        assert_eq!(m.num_links(), 7);
    }

    #[test]
    fn dimension_order_path_valid_and_shortest() {
        let m = Mesh::new(&[3, 3]).unwrap();
        for a in 0..9 {
            for b in 0..9 {
                let p = m.dimension_order_path(NodeId(a), NodeId(b));
                assert!(p.validate(&m));
                assert_eq!(p.hops(), m.distance(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn shortest_path_count_is_multinomial() {
        let m = Mesh::new(&[4, 4]).unwrap();
        let a = m.mixed_radix().encode(&[0, 0]);
        let b = m.mixed_radix().encode(&[2, 2]);
        let paths = m.shortest_paths(a, b, usize::MAX);
        assert_eq!(paths.len(), 6); // C(4,2)
        for p in &paths {
            assert!(p.validate(&m));
            assert_eq!(p.hops(), 4);
        }
        assert_eq!(paths[0], m.dimension_order_path(a, b));
    }

    #[test]
    fn trivial_path_for_same_node() {
        let m = Mesh::new(&[2, 2]).unwrap();
        assert_eq!(
            m.shortest_paths(NodeId(3), NodeId(3), 5),
            vec![Path::trivial(NodeId(3))]
        );
    }
}
