use crate::adjacency::Adjacency;
use crate::path::enumerate_interleavings;
use crate::{MixedRadix, NodeId, Path, Topology, TopologyError};

/// A k-ary n-dimensional **torus** (wraparound mesh).
///
/// Nodes carry mixed-radix addresses; two nodes are adjacent iff their
/// addresses differ by ±1 (mod `k_i`) in exactly one dimension. The paper
/// evaluates the 64-node `8×8` and `4×4×4` tori.
///
/// A shortest path takes, per dimension, the minimal number of unit steps in
/// the shorter ring direction; shortest paths are all interleavings of those
/// steps (and, when an extent is even and the offset is exactly half of it,
/// both ring directions are shortest and are both enumerated). Tori have far
/// fewer alternative shortest paths than generalized hypercubes of the same
/// size, which is why the paper finds path assignment harder on them.
///
/// # Examples
///
/// ```
/// use sr_topology::{NodeId, Topology, Torus};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let t = Torus::new(&[8, 8])?;
/// assert_eq!(t.num_nodes(), 64);
/// assert_eq!(t.degree(), 4);
/// assert_eq!(t.num_links(), 128);
/// assert_eq!(t.distance(NodeId(0), NodeId(7)), 1); // wraparound
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    radix: MixedRadix,
    adj: Adjacency,
}

/// A signed unit move along one torus dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Move {
    dim: usize,
    dir: isize, // +1 or -1
    count: usize,
}

impl Torus {
    /// Creates a torus with the given per-dimension extents.
    ///
    /// # Errors
    ///
    /// Propagates [`TopologyError`] for an empty extent list, extents below
    /// 2, or an excessive node count.
    pub fn new(extents: &[usize]) -> Result<Self, TopologyError> {
        let radix = MixedRadix::new(extents)?;
        let mr = radix.clone();
        let adj = Adjacency::build(radix.num_nodes(), move |node| {
            let mut nb = Vec::new();
            for (dim, &k) in mr.radices().iter().enumerate() {
                let d = mr.digit(node, dim);
                nb.push(mr.with_digit(node, dim, (d + 1) % k));
                nb.push(mr.with_digit(node, dim, (d + k - 1) % k));
            }
            nb
        });
        Ok(Torus { radix, adj })
    }

    /// The address codec of this torus.
    pub fn mixed_radix(&self) -> &MixedRadix {
        &self.radix
    }

    /// One unit step from `node` along `dim` in direction `dir` (±1).
    fn step(&self, node: NodeId, dim: usize, dir: isize) -> NodeId {
        let k = self.radix.radices()[dim];
        let d = self.radix.digit(node, dim) as isize;
        let next = (d + dir).rem_euclid(k as isize) as usize;
        self.radix.with_digit(node, dim, next)
    }

    /// Per-dimension minimal moves from `a` to `b`.
    ///
    /// For each dimension returns the step count in the shorter direction;
    /// `tie` marks dimensions where both directions are equally short
    /// (extent even, offset exactly half, extent > 2).
    fn moves(&self, a: NodeId, b: NodeId) -> (Vec<Move>, Vec<usize>) {
        let mut moves = Vec::new();
        let mut ties = Vec::new();
        for (dim, &k) in self.radix.radices().iter().enumerate() {
            let da = self.radix.digit(a, dim) as isize;
            let db = self.radix.digit(b, dim) as isize;
            let forward = (db - da).rem_euclid(k as isize) as usize;
            if forward == 0 {
                continue;
            }
            let backward = k - forward;
            let (count, dir) = if forward <= backward {
                (forward, 1)
            } else {
                (backward, -1)
            };
            if forward == backward && k > 2 {
                ties.push(moves.len());
            }
            moves.push(Move { dim, dir, count });
        }
        (moves, ties)
    }
}

impl Topology for Torus {
    fn name(&self) -> String {
        let extents: Vec<String> = self.radix.radices().iter().map(|r| r.to_string()).collect();
        format!("Torus({})", extents.join(","))
    }

    fn mixed_radix_hint(&self) -> Option<&MixedRadix> {
        Some(self.mixed_radix())
    }

    fn num_nodes(&self) -> usize {
        self.radix.num_nodes()
    }

    fn num_links(&self) -> usize {
        self.adj.num_links()
    }

    fn link_endpoints(&self, link: crate::LinkId) -> (NodeId, NodeId) {
        self.adj.link_endpoints(link)
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<crate::LinkId> {
        self.adj.link_between(a, b)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.adj.neighbors(node)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (moves, _) = self.moves(a, b);
        moves.iter().map(|m| m.count).sum()
    }

    fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> Path {
        let (moves, _) = self.moves(src, dst);
        let mut nodes = vec![src];
        let mut here = src;
        for m in &moves {
            for _ in 0..m.count {
                here = self.step(here, m.dim, m.dir);
                nodes.push(here);
            }
        }
        Path::new(nodes)
    }

    fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<Path> {
        let (base_moves, ties) = self.moves(src, dst);
        if base_moves.is_empty() {
            return vec![Path::trivial(src)];
        }
        let mut out: Vec<Path> = Vec::new();
        // Branch over direction choices for tied dimensions (positive first,
        // matching the dimension-order path), then interleave unit steps.
        let combos = 1usize << ties.len();
        for combo in 0..combos {
            if out.len() >= cap {
                break;
            }
            let mut moves = base_moves.clone();
            for (bit, &mi) in ties.iter().enumerate() {
                if combo & (1 << bit) != 0 {
                    moves[mi].dir = -moves[mi].dir;
                }
            }
            let counts: Vec<usize> = moves.iter().map(|m| m.count).collect();
            let remaining = cap - out.len();
            let paths = enumerate_interleavings(src, &counts, remaining, |node, i| {
                self.step(node, moves[i].dim, moves[i].dir)
            });
            out.extend(paths);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_8x8_shape() {
        let t = Torus::new(&[8, 8]).unwrap();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.degree(), 4);
        assert_eq!(t.num_links(), 128);
        assert_eq!(t.name(), "Torus(8,8)");
    }

    #[test]
    fn torus_444_shape() {
        let t = Torus::new(&[4, 4, 4]).unwrap();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.degree(), 6);
        assert_eq!(t.num_links(), 192);
    }

    #[test]
    fn radix2_dimension_has_single_link() {
        // A 2x2 torus is a 4-cycle... actually each dim contributes 1 link
        // per node pair (deduplicated), so it is the complete graph K4 minus
        // nothing: nodes (0,0),(1,0),(0,1),(1,1); each node has 2 neighbors.
        let t = Torus::new(&[2, 2]).unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.degree(), 2);
        assert_eq!(t.num_links(), 4);
    }

    #[test]
    fn wraparound_distance() {
        let t = Torus::new(&[8]).unwrap();
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 1);
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.distance(NodeId(1), NodeId(6)), 3);
    }

    #[test]
    fn dimension_order_path_valid_and_shortest() {
        let t = Torus::new(&[4, 4, 4]).unwrap();
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                let p = t.dimension_order_path(NodeId(a), NodeId(b));
                assert!(p.validate(&t), "invalid path {p}");
                assert_eq!(p.hops(), t.distance(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn shortest_paths_interleaving_count() {
        let t = Torus::new(&[8, 8]).unwrap();
        // Offset (2, 3): C(5, 2) = 10 interleavings, no ties.
        let a = t.mixed_radix().encode(&[0, 0]);
        let b = t.mixed_radix().encode(&[2, 3]);
        let paths = t.shortest_paths(a, b, usize::MAX);
        assert_eq!(paths.len(), 10);
        for p in &paths {
            assert_eq!(p.hops(), 5);
            assert!(p.validate(&t));
            assert!(p.is_simple());
        }
        let distinct: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn tie_directions_both_enumerated() {
        let t = Torus::new(&[8]).unwrap();
        // Offset 4 in an 8-ring: both directions are shortest.
        let paths = t.shortest_paths(NodeId(0), NodeId(4), usize::MAX);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
        for p in &paths {
            assert_eq!(p.hops(), 4);
            assert!(p.validate(&t));
        }
    }

    #[test]
    fn no_tie_on_radix_2() {
        let t = Torus::new(&[2, 2]).unwrap();
        let paths = t.shortest_paths(NodeId(0), NodeId(1), usize::MAX);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn first_path_is_dimension_order() {
        let t = Torus::new(&[4, 4]).unwrap();
        for (a, b) in [(0usize, 15usize), (3, 12), (5, 5), (1, 9)] {
            let paths = t.shortest_paths(NodeId(a), NodeId(b), 50);
            assert_eq!(paths[0], t.dimension_order_path(NodeId(a), NodeId(b)));
        }
    }

    #[test]
    fn cap_respected_with_ties() {
        let t = Torus::new(&[8, 8]).unwrap();
        let a = t.mixed_radix().encode(&[0, 0]);
        let b = t.mixed_radix().encode(&[4, 4]); // ties in both dims
        let all = t.shortest_paths(a, b, usize::MAX);
        // C(8,4) = 70 interleavings x 4 direction combos.
        assert_eq!(all.len(), 280);
        let capped = t.shortest_paths(a, b, 100);
        assert_eq!(capped.len(), 100);
        assert_eq!(&all[..100], &capped[..]);
    }
}
