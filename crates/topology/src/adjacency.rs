use std::collections::HashMap;

use crate::{LinkId, NodeId};

/// Precomputed adjacency structure shared by the concrete topologies.
///
/// Built once at construction from a neighbor function; provides dense link
/// ids (one per unordered adjacent pair) and O(1) link lookup.
#[derive(Debug, Clone)]
pub(crate) struct Adjacency {
    neighbors: Vec<Vec<NodeId>>,
    links: Vec<(NodeId, NodeId)>,
    link_index: HashMap<(NodeId, NodeId), LinkId>,
}

impl Adjacency {
    /// Builds the structure for `num_nodes` nodes using `neighbors_of`.
    ///
    /// The neighbor function may report duplicates (e.g. a radix-2 torus
    /// dimension where +1 and -1 reach the same node); they are deduplicated
    /// here. Link ids are assigned in ascending `(min, max)` endpoint order
    /// of first discovery, scanning nodes in ascending order.
    pub(crate) fn build<F>(num_nodes: usize, mut neighbors_of: F) -> Self
    where
        F: FnMut(NodeId) -> Vec<NodeId>,
    {
        let mut neighbors: Vec<Vec<NodeId>> = Vec::with_capacity(num_nodes);
        for n in 0..num_nodes {
            let mut nb = neighbors_of(NodeId(n));
            nb.sort_unstable();
            nb.dedup();
            debug_assert!(nb.iter().all(|m| m.0 < num_nodes && m.0 != n));
            neighbors.push(nb);
        }
        let mut links = Vec::new();
        let mut link_index = HashMap::new();
        for (n, nb) in neighbors.iter().enumerate() {
            for &m in nb {
                if m.0 > n {
                    let id = LinkId(links.len());
                    links.push((NodeId(n), m));
                    link_index.insert((NodeId(n), m), id);
                }
            }
        }
        Adjacency {
            neighbors,
            links,
            link_index,
        }
    }

    pub(crate) fn num_links(&self) -> usize {
        self.links.len()
    }

    pub(crate) fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        self.links[link.0]
    }

    pub(crate) fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.link_index.get(&key).copied()
    }

    pub(crate) fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Adjacency {
        Adjacency::build(n, |v| {
            vec![NodeId((v.0 + 1) % n), NodeId((v.0 + n - 1) % n)]
        })
    }

    #[test]
    fn ring_link_count() {
        let a = ring(5);
        assert_eq!(a.num_links(), 5);
    }

    #[test]
    fn two_node_ring_dedups_parallel_links() {
        // +1 and -1 from node 0 both reach node 1: one link, not two.
        let a = ring(2);
        assert_eq!(a.num_links(), 1);
        assert_eq!(a.neighbors(NodeId(0)), &[NodeId(1)]);
    }

    #[test]
    fn link_between_is_symmetric() {
        let a = ring(4);
        assert_eq!(
            a.link_between(NodeId(0), NodeId(1)),
            a.link_between(NodeId(1), NodeId(0))
        );
        assert!(a.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn endpoints_are_ordered() {
        let a = ring(4);
        for l in 0..a.num_links() {
            let (x, y) = a.link_endpoints(LinkId(l));
            assert!(x < y);
        }
    }
}
