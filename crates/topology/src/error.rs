use std::error::Error;
use std::fmt;

/// Errors arising while constructing or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A topology was requested with no dimensions.
    NoDimensions,
    /// A dimension radix/extent was too small to form a network.
    ///
    /// Generalized hypercubes and tori require every radix to be at least 2.
    RadixTooSmall {
        /// Index of the offending dimension.
        dimension: usize,
        /// The rejected radix value.
        radix: usize,
    },
    /// The requested topology would exceed the supported node count.
    TooManyNodes {
        /// Product of the radices requested.
        requested: u128,
        /// Maximum supported node count.
        max: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoDimensions => {
                write!(f, "topology must have at least one dimension")
            }
            TopologyError::RadixTooSmall { dimension, radix } => write!(
                f,
                "dimension {dimension} has radix {radix}, but at least 2 is required"
            ),
            TopologyError::TooManyNodes { requested, max } => write!(
                f,
                "requested {requested} nodes exceeds the supported maximum of {max}"
            ),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TopologyError::NoDimensions.to_string(),
            "topology must have at least one dimension"
        );
        let e = TopologyError::RadixTooSmall {
            dimension: 1,
            radix: 1,
        };
        assert!(e.to_string().contains("dimension 1"));
        let e = TopologyError::TooManyNodes {
            requested: 1 << 40,
            max: 1 << 20,
        };
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TopologyError>();
    }
}
