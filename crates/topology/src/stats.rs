//! Aggregate structural statistics of a topology.
//!
//! The paper's §6 discussion leans on structural differences ("being a
//! topology with more links, it reaches the required utilization value for
//! more load points", "due to the smaller number of alternative paths in
//! tori…"); [`TopologyStats`] quantifies exactly those properties so the
//! comparison is reproducible.

use crate::{NodeId, Topology};

/// Structural summary of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// Node count.
    pub nodes: usize,
    /// Half-duplex link count.
    pub links: usize,
    /// Maximum node degree.
    pub degree: usize,
    /// Network diameter (hops).
    pub diameter: usize,
    /// Mean shortest-path distance over distinct ordered pairs.
    pub mean_distance: f64,
    /// Mean number of shortest paths over distinct ordered pairs, with path
    /// enumeration capped at `path_cap` (so GHC factorials do not explode).
    pub mean_alternative_paths: f64,
    /// Mean **link diversity**: distinct links usable by some shortest path
    /// divided by the path length, averaged over pairs. 1.0 means every
    /// pair has exactly one shortest path; higher values mean routing
    /// freedom. Note the trade the paper's §6 exposes: tori score high here
    /// (long paths fan widely) yet still congest, because their *aggregate*
    /// link capacity and 1-hop adjacency are much lower than a same-size
    /// GHC's — spreading room is not the same as capacity.
    pub mean_link_diversity: f64,
    /// The cap used for the path-diversity average.
    pub path_cap: usize,
}

impl TopologyStats {
    /// Computes all statistics by exhaustive pair enumeration.
    ///
    /// Cost is `O(n² · path_cap)`; fine for the paper's 64-node machines,
    /// not for inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `path_cap == 0` or the topology has fewer than 2 nodes.
    pub fn compute(topo: &dyn Topology, path_cap: usize) -> TopologyStats {
        assert!(path_cap > 0, "path cap must be positive");
        let n = topo.num_nodes();
        assert!(n >= 2, "statistics need at least two nodes");
        let mut dist_sum = 0usize;
        let mut path_sum = 0usize;
        let mut diversity_sum = 0.0f64;
        let mut diameter = 0usize;
        let mut pairs = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let d = topo.distance(NodeId(a), NodeId(b));
                dist_sum += d;
                diameter = diameter.max(d);
                let paths = topo.shortest_paths(NodeId(a), NodeId(b), path_cap);
                path_sum += paths.len();
                let union: std::collections::HashSet<_> =
                    paths.iter().flat_map(|p| p.links(topo)).collect();
                diversity_sum += union.len() as f64 / d.max(1) as f64;
                pairs += 1;
            }
        }
        TopologyStats {
            nodes: n,
            links: topo.num_links(),
            degree: topo.degree(),
            diameter,
            mean_distance: dist_sum as f64 / pairs as f64,
            mean_alternative_paths: path_sum as f64 / pairs as f64,
            mean_link_diversity: diversity_sum / pairs as f64,
            path_cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneralizedHypercube, Mesh, Torus};

    #[test]
    fn cube_statistics() {
        let c = GeneralizedHypercube::binary(3).unwrap();
        let s = TopologyStats::compute(&c, 16);
        assert_eq!(s.nodes, 8);
        assert_eq!(s.links, 12);
        assert_eq!(s.degree, 3);
        assert_eq!(s.diameter, 3);
        // Mean Hamming distance over distinct pairs of 3-bit words:
        // Σ d·C(3,d) / 7 = (3 + 6 + 3) / 7 = 12/7.
        assert!((s.mean_distance - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ghc_vs_torus_structural_comparison() {
        // The paper's structural argument (§6): the 4x4x4 GHC has more
        // links and shorter distances than the 4x4x4 torus — that, not raw
        // path fan-out, is why it reaches U <= 1 at more load points.
        let ghc = GeneralizedHypercube::new(&[4, 4, 4]).unwrap();
        let torus = Torus::new(&[4, 4, 4]).unwrap();
        let sg = TopologyStats::compute(&ghc, 32);
        let st = TopologyStats::compute(&torus, 32);
        assert!(sg.links > st.links);
        assert!(sg.mean_distance < st.mean_distance);
        assert!(sg.diameter < st.diameter);
        // Both offer genuine routing freedom…
        assert!(sg.mean_link_diversity > 1.0);
        assert!(st.mean_link_diversity > 1.0);
        // …but the torus pays for its spread with much longer paths.
        assert!(st.mean_alternative_paths > 1.0);
    }

    #[test]
    fn torus_beats_mesh() {
        let torus = Torus::new(&[4, 4]).unwrap();
        let mesh = Mesh::new(&[4, 4]).unwrap();
        let st = TopologyStats::compute(&torus, 32);
        let sm = TopologyStats::compute(&mesh, 32);
        assert!(st.links > sm.links);
        assert!(st.diameter < sm.diameter);
    }

    #[test]
    #[should_panic(expected = "path cap")]
    fn zero_cap_panics() {
        let c = GeneralizedHypercube::binary(2).unwrap();
        let _ = TopologyStats::compute(&c, 0);
    }
}
