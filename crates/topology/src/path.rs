use crate::{LinkId, NodeId, Topology};

/// A route through the network, stored as the visited node sequence.
///
/// A path with `k` hops visits `k + 1` nodes; a zero-hop path (source equals
/// destination) holds a single node. Paths are simple (no repeated nodes)
/// when produced by this crate's routing functions; [`Path::is_simple`]
/// checks the property for externally constructed paths.
///
/// # Examples
///
/// ```
/// use sr_topology::{GeneralizedHypercube, NodeId, Topology};
///
/// # fn main() -> Result<(), sr_topology::TopologyError> {
/// let cube = GeneralizedHypercube::binary(3)?;
/// let p = cube.dimension_order_path(NodeId(0), NodeId(5));
/// assert_eq!(p.hops(), 2);
/// assert_eq!(p.source(), NodeId(0));
/// assert_eq!(p.destination(), NodeId(5));
/// assert_eq!(p.links(&cube).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from a node sequence.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a path must visit at least one node");
        Path { nodes }
    }

    /// A zero-hop path at `node`.
    pub fn trivial(node: NodeId) -> Self {
        Path { nodes: vec![node] }
    }

    /// The visited nodes, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The first node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The last node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path is non-empty")
    }

    /// `true` when no node repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// The links traversed, in hop order.
    ///
    /// # Panics
    ///
    /// Panics if consecutive nodes are not adjacent in `topo`; use
    /// [`Path::validate`] for a non-panicking check.
    pub fn links(&self, topo: &dyn Topology) -> Vec<LinkId> {
        self.nodes
            .windows(2)
            .map(|w| {
                topo.link_between(w[0], w[1]).unwrap_or_else(|| {
                    panic!(
                        "path hop {} -> {} is not a link in {}",
                        w[0],
                        w[1],
                        topo.name()
                    )
                })
            })
            .collect()
    }

    /// Checks that every consecutive node pair is adjacent in `topo`.
    pub fn validate(&self, topo: &dyn Topology) -> bool {
        self.nodes
            .windows(2)
            .all(|w| topo.link_between(w[0], w[1]).is_some())
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "->")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// Enumerates routes as interleavings of per-dimension unit moves.
///
/// Both topology families route by applying, in some order, a fixed multiset
/// of single-hop "moves" (digit corrections in a GHC, ±1 steps in a torus).
/// `move_counts[d]` is how many identical moves dimension `d` still needs;
/// `advance(node, dim)` applies one move of dimension `dim` and returns the
/// next node. Enumeration is deterministic: dimension order is tried
/// ascending at every step, so the all-LSD-first path comes out first.
pub(crate) fn enumerate_interleavings<F>(
    src: NodeId,
    move_counts: &[usize],
    cap: usize,
    mut advance: F,
) -> Vec<Path>
where
    F: FnMut(NodeId, usize) -> NodeId,
{
    let mut out = Vec::new();
    if cap == 0 {
        return out;
    }
    let mut counts = move_counts.to_vec();
    let mut prefix = vec![src];
    recurse(&mut counts, &mut prefix, cap, &mut out, &mut advance);
    out
}

fn recurse<F>(
    counts: &mut [usize],
    prefix: &mut Vec<NodeId>,
    cap: usize,
    out: &mut Vec<Path>,
    advance: &mut F,
) where
    F: FnMut(NodeId, usize) -> NodeId,
{
    if out.len() >= cap {
        return;
    }
    if counts.iter().all(|&c| c == 0) {
        out.push(Path::new(prefix.clone()));
        return;
    }
    let here = *prefix.last().expect("prefix is non-empty");
    for dim in 0..counts.len() {
        if counts[dim] == 0 {
            continue;
        }
        counts[dim] -= 1;
        prefix.push(advance(here, dim));
        recurse(counts, prefix, cap, out, advance);
        prefix.pop();
        counts[dim] += 1;
        if out.len() >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(3));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.destination());
        assert!(p.is_simple());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_path_panics() {
        let _ = Path::new(vec![]);
    }

    #[test]
    fn simple_detection() {
        let p = Path::new(vec![NodeId(0), NodeId(1), NodeId(0)]);
        assert!(!p.is_simple());
    }

    #[test]
    fn display_format() {
        let p = Path::new(vec![NodeId(0), NodeId(2)]);
        assert_eq!(p.to_string(), "N0->N2");
    }

    #[test]
    fn interleavings_multinomial_count() {
        // Two dims with 1 move each -> 2 orders; with (2,1) -> 3 orders.
        let paths = enumerate_interleavings(NodeId(0), &[1, 1], usize::MAX, |n, d| {
            NodeId(n.0 + (d + 1) * 10)
        });
        assert_eq!(paths.len(), 2);
        let paths = enumerate_interleavings(NodeId(0), &[2, 1], usize::MAX, |n, d| {
            NodeId(n.0 + (d + 1) * 10)
        });
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn interleavings_respect_cap() {
        let paths = enumerate_interleavings(NodeId(0), &[3, 3], 5, |n, d| NodeId(n.0 * 2 + d + 1));
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn interleavings_zero_moves_gives_trivial() {
        let paths = enumerate_interleavings(NodeId(4), &[0, 0], 10, |n, _| n);
        assert_eq!(paths, vec![Path::trivial(NodeId(4))]);
    }
}
