//! Property-based tests over both topology families.

use proptest::prelude::*;
use sr_topology::{GeneralizedHypercube, Mesh, NodeId, Topology, Torus};

/// Strategy generating small-but-nontrivial GHC radix vectors.
fn ghc_radices() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..5, 1..4)
}

/// Strategy generating small torus extent vectors.
fn torus_extents() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..7, 1..4)
}

fn check_symmetry(topo: &dyn Topology) {
    for n in 0..topo.num_nodes() {
        for &m in topo.neighbors(NodeId(n)) {
            assert!(
                topo.neighbors(m).contains(&NodeId(n)),
                "asymmetric adjacency {n} vs {m} in {}",
                topo.name()
            );
            assert!(topo.link_between(NodeId(n), m).is_some());
        }
    }
}

fn check_handshake(topo: &dyn Topology) {
    let degree_sum: usize = (0..topo.num_nodes())
        .map(|n| topo.neighbors(NodeId(n)).len())
        .sum();
    assert_eq!(degree_sum, 2 * topo.num_links(), "handshake lemma violated");
}

fn check_paths(topo: &dyn Topology, a: usize, b: usize) {
    let a = NodeId(a % topo.num_nodes());
    let b = NodeId(b % topo.num_nodes());
    let d = topo.distance(a, b);
    assert_eq!(d, topo.distance(b, a), "distance asymmetric");

    let dop = topo.dimension_order_path(a, b);
    assert!(dop.validate(topo));
    assert_eq!(dop.hops(), d);
    assert!(dop.is_simple());

    let paths = topo.shortest_paths(a, b, 64);
    assert!(!paths.is_empty());
    assert_eq!(
        paths[0], dop,
        "first enumerated path must be dimension-order"
    );
    let distinct: std::collections::HashSet<_> = paths.iter().collect();
    assert_eq!(distinct.len(), paths.len(), "duplicate shortest paths");
    for p in &paths {
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), b);
        assert_eq!(p.hops(), d, "non-shortest path enumerated");
        assert!(p.validate(topo));
        assert!(p.is_simple());
    }
}

/// Triangle inequality via one intermediate node.
fn check_triangle(topo: &dyn Topology, a: usize, b: usize, c: usize) {
    let n = topo.num_nodes();
    let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
    assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ghc_adjacency_symmetric(radices in ghc_radices()) {
        let g = GeneralizedHypercube::new(&radices).unwrap();
        check_symmetry(&g);
        check_handshake(&g);
    }

    #[test]
    fn torus_adjacency_symmetric(extents in torus_extents()) {
        let t = Torus::new(&extents).unwrap();
        check_symmetry(&t);
        check_handshake(&t);
    }

    #[test]
    fn mesh_adjacency_symmetric(extents in torus_extents()) {
        let m = Mesh::new(&extents).unwrap();
        check_symmetry(&m);
        check_handshake(&m);
    }

    #[test]
    fn mesh_paths_are_shortest_and_valid(
        extents in torus_extents(),
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let m = Mesh::new(&extents).unwrap();
        check_paths(&m, a, b);
    }

    #[test]
    fn mesh_distance_matches_bfs(extents in torus_extents(), a in any::<usize>()) {
        let m = Mesh::new(&extents).unwrap();
        let src = NodeId(a % m.num_nodes());
        let bfs = bfs_distances(&m, src);
        #[allow(clippy::needless_range_loop)] // `n` is also the NodeId value
        for n in 0..m.num_nodes() {
            prop_assert_eq!(m.distance(src, NodeId(n)), bfs[n]);
        }
    }

    #[test]
    fn mesh_dominates_torus_distance(extents in torus_extents(), a in any::<usize>(), b in any::<usize>()) {
        // Removing wraparound can only lengthen shortest paths.
        let m = Mesh::new(&extents).unwrap();
        let t = Torus::new(&extents).unwrap();
        let a = NodeId(a % m.num_nodes());
        let b = NodeId(b % m.num_nodes());
        prop_assert!(m.distance(a, b) >= t.distance(a, b));
    }

    #[test]
    fn ghc_paths_are_shortest_and_valid(
        radices in ghc_radices(),
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let g = GeneralizedHypercube::new(&radices).unwrap();
        check_paths(&g, a, b);
    }

    #[test]
    fn torus_paths_are_shortest_and_valid(
        extents in torus_extents(),
        a in any::<usize>(),
        b in any::<usize>(),
    ) {
        let t = Torus::new(&extents).unwrap();
        check_paths(&t, a, b);
    }

    #[test]
    fn ghc_triangle_inequality(
        radices in ghc_radices(),
        a in any::<usize>(),
        b in any::<usize>(),
        c in any::<usize>(),
    ) {
        let g = GeneralizedHypercube::new(&radices).unwrap();
        check_triangle(&g, a, b, c);
    }

    #[test]
    fn torus_triangle_inequality(
        extents in torus_extents(),
        a in any::<usize>(),
        b in any::<usize>(),
        c in any::<usize>(),
    ) {
        let t = Torus::new(&extents).unwrap();
        check_triangle(&t, a, b, c);
    }

    #[test]
    fn ghc_distance_matches_bfs(radices in ghc_radices(), a in any::<usize>()) {
        let g = GeneralizedHypercube::new(&radices).unwrap();
        let src = NodeId(a % g.num_nodes());
        let bfs = bfs_distances(&g, src);
        #[allow(clippy::needless_range_loop)] // `n` is also the NodeId value
        for n in 0..g.num_nodes() {
            prop_assert_eq!(g.distance(src, NodeId(n)), bfs[n]);
        }
    }

    #[test]
    fn torus_distance_matches_bfs(extents in torus_extents(), a in any::<usize>()) {
        let t = Torus::new(&extents).unwrap();
        let src = NodeId(a % t.num_nodes());
        let bfs = bfs_distances(&t, src);
        #[allow(clippy::needless_range_loop)] // `n` is also the NodeId value
        for n in 0..t.num_nodes() {
            prop_assert_eq!(t.distance(src, NodeId(n)), bfs[n]);
        }
    }
}

fn bfs_distances(topo: &dyn Topology, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topo.num_nodes()];
    dist[src.0] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(v) = queue.pop_front() {
        for &w in topo.neighbors(v) {
            if dist[w.0] == usize::MAX {
                dist[w.0] = dist[v.0] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}
