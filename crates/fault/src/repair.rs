use std::collections::{BTreeMap, BTreeSet};

use sr_core::{
    admit_best_effort, analyze_damage, assign_paths_partial, reallocate_pinned, AllocBasisCache,
    AllocEngine, AssignPathsConfig, BestEffortGrant, DamageReport, FlowWorkspace,
    ReallocAttemptOutcome, Schedule, EPS,
};
use sr_obs::{span_with, Recorder, NOOP};
use sr_tfg::{MessageId, TaskFlowGraph, Timing};
use sr_topology::{FaultSet, MaskedTopology, Path, Topology};

/// Tuning knobs for incremental schedule repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// Path-assignment knobs for the partial `AssignPaths` run over the
    /// masked topology.
    pub assign_paths: AssignPathsConfig,
    /// Capacity scales tried for the pinned re-allocation, analogous to
    /// [`sr_core::CompileConfig::feedback_scales`]: when the re-routed
    /// traffic cannot be packed into the surviving idle time, a tighter
    /// scale spreads it across more intervals.
    pub feedback_scales: Vec<f64>,
    /// Per-message criticality (`critical[m]`): critical messages must stay
    /// on the real-time schedule for a repair to count, non-critical ones
    /// may be demoted to best-effort when full repair fails. `None` (the
    /// default) treats every message as critical.
    pub critical: Option<Vec<bool>>,
    /// Shortest-path cap for best-effort admission of demoted messages.
    pub best_effort_path_cap: usize,
    /// Backend for the pinned re-allocation rows, analogous to
    /// [`sr_core::CompileConfig::alloc_engine`]: the simplex LP (default,
    /// bit-identical to the historical repair), or the min-cost-flow
    /// kernel for large fabrics.
    pub alloc_engine: AllocEngine,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            assign_paths: AssignPathsConfig::default(),
            feedback_scales: vec![1.0, 0.9, 0.8],
            critical: None,
            best_effort_path_cap: 16,
            alloc_engine: AllocEngine::Simplex,
        }
    }
}

/// How a repair attempt ended, from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairVerdict {
    /// The fault set touches no scheduled path; the schedule stands as-is.
    Unchanged,
    /// Every affected message was re-routed onto surviving resources; no
    /// message was demoted or dropped.
    Repaired,
    /// A valid schedule was produced, but some messages were demoted to
    /// best-effort or dropped with a failed endpoint.
    Degraded,
    /// No valid schedule exists within the degradation ladder: a critical
    /// message is unroutable, or the surviving capacity cannot carry the
    /// critical traffic.
    Infeasible,
}

impl std::fmt::Display for RepairVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RepairVerdict::Unchanged => "unchanged",
            RepairVerdict::Repaired => "repaired",
            RepairVerdict::Degraded => "degraded",
            RepairVerdict::Infeasible => "infeasible",
        })
    }
}

/// How one step of the diagnosed repair ladder ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStepOutcome {
    /// The rung produced a valid repaired schedule at this scale.
    Succeeded,
    /// The partial re-route's peak utilization exceeded link capacity; the
    /// rung's scale ladder was never entered.
    UtilizationExceeded,
    /// The pinned re-allocation was infeasible at this scale.
    AllocInfeasible,
    /// Allocation succeeded but the re-routed traffic did not fit into the
    /// surviving idle time at this scale.
    PackFailed,
    /// A critical message is unroutable (dead endpoint or disconnected);
    /// the ladder aborted before any rung ran.
    CriticalUnroutable,
}

impl RepairStepOutcome {
    /// Stable lowercase label, used by the text rendering.
    pub fn label(self) -> &'static str {
        match self {
            RepairStepOutcome::Succeeded => "succeeded",
            RepairStepOutcome::UtilizationExceeded => "utilization exceeded",
            RepairStepOutcome::AllocInfeasible => "allocation infeasible",
            RepairStepOutcome::PackFailed => "idle-time packing failed",
            RepairStepOutcome::CriticalUnroutable => "critical message unroutable",
        }
    }
}

/// One consumed step of the diagnosed repair ladder: which rung, at which
/// capacity scale, and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairStep {
    /// Degradation-ladder rung: 1 = full re-route, 2 = shed non-critical
    /// messages to best-effort; 0 for pre-ladder aborts.
    pub rung: usize,
    /// Capacity scale of the pinned re-allocation attempt; `None` for
    /// per-rung failures that precede the scale ladder.
    pub scale: Option<f64>,
    /// How the step ended.
    pub outcome: RepairStepOutcome,
    /// Human-readable detail (peak utilization, failing subset size, …).
    pub detail: String,
}

/// Everything [`repair_diagnosed`] learned about one repair attempt: the
/// degradation ladder's steps in walk order, ending with the verdict.
#[derive(Debug, Clone)]
pub struct RepairDiagnosis {
    /// Consumed ladder steps in order (empty for
    /// [`RepairVerdict::Unchanged`]).
    pub steps: Vec<RepairStep>,
    /// The final verdict, mirrored from the [`RepairOutcome`].
    pub verdict: RepairVerdict,
}

impl RepairDiagnosis {
    /// Renders the diagnosis as stable, human-readable text (appended to
    /// the CLI's `faults --repair` output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "repair ladder (verdict: {}):", self.verdict);
        if self.steps.is_empty() {
            let _ = writeln!(out, "  no rung ran (fault set touches no scheduled path)");
        }
        for s in &self.steps {
            let rung = match s.rung {
                1 => "rung 1 (full re-route)".to_string(),
                2 => "rung 2 (shed non-critical)".to_string(),
                r => format!("rung {r}"),
            };
            let scale = s
                .scale
                .map(|v| format!("scale {v:.3}"))
                .unwrap_or_else(|| "pre-ladder".to_string());
            let _ = writeln!(
                out,
                "  {rung}  {scale}  {}: {}",
                s.outcome.label(),
                s.detail
            );
        }
        out
    }
}

/// The result of [`repair`].
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// How the degradation ladder ended.
    pub verdict: RepairVerdict,
    /// The repaired schedule (`None` only for
    /// [`RepairVerdict::Infeasible`]). Check it with
    /// [`sr_core::verify_with_faults`].
    pub schedule: Option<Schedule>,
    /// The damage partition the repair started from.
    pub report: DamageReport,
    /// Messages re-routed onto surviving paths.
    pub rerouted: Vec<MessageId>,
    /// Messages demoted off the real-time schedule, with the best-effort
    /// grant found for each (`None` when the repaired schedule has no idle
    /// window wide enough this frame).
    pub demoted: Vec<(MessageId, Option<BestEffortGrant>)>,
    /// Messages dropped entirely: an endpoint failed, or no surviving route
    /// exists between their endpoints.
    pub dropped: Vec<MessageId>,
}

/// Incrementally repairs a compiled schedule after `faults`, touching only
/// affected messages.
///
/// The pipeline: damage analysis → partial `AssignPaths` over the masked
/// topology (unaffected paths frozen) → pinned message–interval
/// re-allocation (unaffected rows bit-identical, surviving capacity
/// reduced by their usage) → idle-time packing of the re-routed traffic
/// (retained slices never move) → Ω rebuild via [`Schedule::patched`].
/// When full repair fails, the degradation ladder demotes non-critical
/// messages to best-effort and retries with the critical subset only.
///
/// `topo` is the healthy topology the schedule was compiled for.
///
/// # Panics
///
/// Panics if [`RepairConfig::critical`] is set with the wrong length, or
/// if `schedule` does not belong to `tfg`.
pub fn repair(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    faults: &FaultSet,
    config: &RepairConfig,
) -> RepairOutcome {
    repair_with_recorder(schedule, topo, tfg, timing, faults, config, &NOOP)
}

/// [`repair`] with an [`sr_obs::Recorder`] observing the attempt: a
/// `repair` span annotated with the damage size, plus counters for the
/// partition (`repair.affected`, `repair.lost`, `repair.unreachable`), the
/// resolution (`repair.rerouted`, `repair.demoted`, `repair.dropped`), and
/// the outcome (`repair.outcome.*`).
pub fn repair_with_recorder(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    faults: &FaultSet,
    config: &RepairConfig,
    rec: &dyn Recorder,
) -> RepairOutcome {
    repair_inner(schedule, topo, tfg, timing, faults, config, rec, None)
}

/// [`repair_with_recorder`] plus a [`RepairDiagnosis`]: the same
/// degradation ladder, additionally recording every consumed step — which
/// rung ran, at which capacity scale each pinned re-allocation died
/// (utilization gate, infeasible allocation, or failed idle-time packing)
/// and which step finally succeeded. The outcome returned is **identical**
/// to [`repair`]'s for the same inputs; diagnosis only observes the walk.
pub fn repair_diagnosed(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    faults: &FaultSet,
    config: &RepairConfig,
    rec: &dyn Recorder,
) -> (RepairOutcome, RepairDiagnosis) {
    let mut diag = RepairDiagnosis {
        steps: Vec::new(),
        verdict: RepairVerdict::Unchanged,
    };
    let outcome = repair_inner(
        schedule,
        topo,
        tfg,
        timing,
        faults,
        config,
        rec,
        Some(&mut diag),
    );
    diag.verdict = outcome.verdict;
    rec.add("diag.repair_steps", diag.steps.len() as u64);
    (outcome, diag)
}

#[allow(clippy::too_many_arguments)]
fn repair_inner(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    faults: &FaultSet,
    config: &RepairConfig,
    rec: &dyn Recorder,
    mut diag: Option<&mut RepairDiagnosis>,
) -> RepairOutcome {
    assert_eq!(
        schedule.assignment().len(),
        tfg.num_messages(),
        "schedule does not belong to this TFG"
    );
    if let Some(critical) = &config.critical {
        assert_eq!(
            critical.len(),
            tfg.num_messages(),
            "criticality vector does not cover every message"
        );
    }
    let span = span_with(rec, "repair", || faults.to_string());
    let report = analyze_damage(schedule, faults);
    span.annotate("affected", report.affected.len() as f64);
    rec.add("repair.affected", report.affected.len() as u64);
    rec.add("repair.lost", report.lost.len() as u64);

    if report.is_clean() {
        rec.add("repair.outcome.unchanged", 1);
        return RepairOutcome {
            verdict: RepairVerdict::Unchanged,
            schedule: Some(schedule.clone()),
            report,
            rerouted: Vec::new(),
            demoted: Vec::new(),
            dropped: Vec::new(),
        };
    }

    let masked = MaskedTopology::new(topo, faults.clone());
    let is_critical = |m: MessageId| config.critical.as_ref().is_none_or(|v| v[m.index()]);

    // Messages that cannot be carried at all: endpoints dead, or endpoints
    // disconnected by the mask.
    let unreachable: Vec<MessageId> = report
        .affected
        .iter()
        .copied()
        .filter(|&m| {
            let p = schedule.assignment().path(m);
            !masked.connects(p.source(), p.destination())
        })
        .collect();
    rec.add("repair.unreachable", unreachable.len() as u64);
    let dropped: Vec<MessageId> = {
        let mut v = report.lost.clone();
        v.extend(unreachable.iter().copied());
        v.sort_unstable();
        v
    };
    if dropped.iter().any(|&m| is_critical(m)) {
        rec.add("repair.outcome.infeasible", 1);
        rec.add("repair.dropped", dropped.len() as u64);
        if let Some(d) = diag.as_deref_mut() {
            let victims = dropped.iter().filter(|&&m| is_critical(m)).count();
            d.steps.push(RepairStep {
                rung: 0,
                scale: None,
                outcome: RepairStepOutcome::CriticalUnroutable,
                detail: format!("{victims} critical message(s) lost or unreachable"),
            });
        }
        return RepairOutcome {
            verdict: RepairVerdict::Infeasible,
            schedule: None,
            report,
            rerouted: Vec::new(),
            demoted: Vec::new(),
            dropped,
        };
    }

    let reroutable: Vec<MessageId> = report
        .affected
        .iter()
        .copied()
        .filter(|m| !unreachable.contains(m))
        .collect();

    // Rung 1: re-route every reachable affected message.
    let excluded: BTreeSet<MessageId> = dropped.iter().copied().collect();
    if let Some(repaired) = try_repair(
        schedule,
        &masked,
        &excluded,
        &reroutable,
        config,
        rec,
        1,
        diag.as_deref_mut(),
    ) {
        let verdict = if dropped.is_empty() {
            RepairVerdict::Repaired
        } else {
            RepairVerdict::Degraded
        };
        rec.add(
            match verdict {
                RepairVerdict::Repaired => "repair.outcome.repaired",
                _ => "repair.outcome.degraded",
            },
            1,
        );
        rec.add("repair.rerouted", reroutable.len() as u64);
        rec.add("repair.dropped", dropped.len() as u64);
        return RepairOutcome {
            verdict,
            schedule: Some(repaired),
            report,
            rerouted: reroutable,
            demoted: Vec::new(),
            dropped,
        };
    }

    // Rung 2: shed non-critical affected messages to best-effort and
    // repair the critical rest.
    let (critical_reroute, demotable): (Vec<MessageId>, Vec<MessageId>) =
        reroutable.iter().copied().partition(|&m| is_critical(m));
    if !demotable.is_empty() {
        let mut excluded2 = excluded.clone();
        excluded2.extend(demotable.iter().copied());
        if let Some(repaired) = try_repair(
            schedule,
            &masked,
            &excluded2,
            &critical_reroute,
            config,
            rec,
            2,
            diag,
        ) {
            let demoted: Vec<(MessageId, Option<BestEffortGrant>)> = demotable
                .iter()
                .map(|&m| {
                    let p = schedule.assignment().path(m);
                    let grant = admit_best_effort(
                        &repaired,
                        &masked,
                        timing,
                        p.source(),
                        p.destination(),
                        tfg.message(m).bytes(),
                        config.best_effort_path_cap,
                    );
                    (m, grant)
                })
                .collect();
            rec.add("repair.outcome.degraded", 1);
            rec.add("repair.rerouted", critical_reroute.len() as u64);
            rec.add("repair.demoted", demoted.len() as u64);
            rec.add("repair.dropped", dropped.len() as u64);
            return RepairOutcome {
                verdict: RepairVerdict::Degraded,
                schedule: Some(repaired),
                report,
                rerouted: critical_reroute,
                demoted,
                dropped,
            };
        }
    }

    rec.add("repair.outcome.infeasible", 1);
    RepairOutcome {
        verdict: RepairVerdict::Infeasible,
        schedule: None,
        report,
        rerouted: Vec::new(),
        demoted: Vec::new(),
        dropped,
    }
}

/// One rung of the ladder: re-route `reroute` over the mask with everything
/// else frozen (and `excluded` reset to trivial paths), re-allocate their
/// rows against the pinned capacity, and pack them into the surviving idle
/// time. `None` when no feedback scale yields a packable allocation.
#[allow(clippy::too_many_arguments)]
fn try_repair(
    schedule: &Schedule,
    masked: &MaskedTopology<'_>,
    excluded: &BTreeSet<MessageId>,
    reroute: &[MessageId],
    config: &RepairConfig,
    rec: &dyn Recorder,
    rung: usize,
    mut diag: Option<&mut RepairDiagnosis>,
) -> Option<Schedule> {
    let mut base = schedule.assignment().clone();
    for &m in excluded {
        let at = base.path(m).source();
        base.set_path(m, Path::trivial(at), masked);
    }

    let outcome = assign_paths_partial(
        masked,
        schedule.bounds(),
        schedule.intervals(),
        schedule.activity(),
        &base,
        reroute,
        &config.assign_paths,
    );
    rec.add("repair.assign_paths.restarts", outcome.restarts as u64);
    let peak = outcome.utilization.effective_peak();
    if peak > 1.0 + EPS {
        rec.add("repair.utilization_exceeded", 1);
        if let Some(d) = diag.as_deref_mut() {
            d.steps.push(RepairStep {
                rung,
                scale: None,
                outcome: RepairStepOutcome::UtilizationExceeded,
                detail: format!("peak utilization {peak:.3} over the masked topology"),
            });
        }
        return None;
    }

    // The shared ladder ([`sr_core::reallocate_pinned`]) warm-starts each
    // rung from the previous rung's optimal bases. The first rung's cache
    // is empty, keeping it bit-identical to a cold solve — which is what
    // the pinning contract tests observe. Repair has no external traffic,
    // so the busy ledger is empty and the behaviour matches the historical
    // repair-only code exactly.
    let mut cache = AllocBasisCache::new();
    let mut flow_ws = FlowWorkspace::new();
    let mut attempts = Vec::new();
    let repacked = reallocate_pinned(
        schedule,
        &outcome.assignment,
        reroute,
        excluded,
        &BTreeMap::new(),
        &config.feedback_scales,
        config.alloc_engine,
        &mut cache,
        &mut flow_ws,
        "repair",
        rec,
        &mut attempts,
    );
    if let Some(d) = diag {
        for a in &attempts {
            let (outcome, detail) = match &a.outcome {
                ReallocAttemptOutcome::Succeeded => (
                    RepairStepOutcome::Succeeded,
                    format!("{} message(s) re-routed", reroute.len()),
                ),
                ReallocAttemptOutcome::AllocInfeasible(e) => {
                    (RepairStepOutcome::AllocInfeasible, e.to_string())
                }
                ReallocAttemptOutcome::PackFailed => (
                    RepairStepOutcome::PackFailed,
                    "re-routed traffic does not fit the surviving idle time".to_string(),
                ),
            };
            d.steps.push(RepairStep {
                rung,
                scale: Some(a.scale),
                outcome,
                detail,
            });
        }
    }
    repacked.map(|r| {
        schedule.patched(
            outcome.assignment.clone(),
            r.allocation,
            r.interval_schedules,
            masked,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_core::{compile, verify_with_faults, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> (GeneralizedHypercube, TaskFlowGraph, Timing, Schedule) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            75.0,
            &CompileConfig::default(),
        )
        .expect("diamond compiles");
        (topo, tfg, timing, sched)
    }

    #[test]
    fn no_faults_is_unchanged() {
        let (topo, tfg, timing, sched) = compiled();
        let out = repair(
            &sched,
            &topo,
            &tfg,
            &timing,
            &FaultSet::new(),
            &RepairConfig::default(),
        );
        assert_eq!(out.verdict, RepairVerdict::Unchanged);
        let repaired = out.schedule.unwrap();
        assert_eq!(repaired.segments(), sched.segments());
    }

    #[test]
    fn single_dead_link_repairs_and_pins_the_rest() {
        let (topo, tfg, timing, sched) = compiled();
        let victim = sched.segments()[0].message;
        let dead = sched.assignment().links(victim)[0];
        let faults = FaultSet::new().fail_link(dead);

        let rec = sr_obs::MetricsRecorder::new();
        let out = repair_with_recorder(
            &sched,
            &topo,
            &tfg,
            &timing,
            &faults,
            &RepairConfig::default(),
            &rec,
        );
        assert_eq!(
            out.verdict,
            RepairVerdict::Repaired,
            "report: {:?}",
            out.report
        );
        let repaired = out.schedule.expect("repaired schedule");
        verify_with_faults(&repaired, &topo, &tfg, &faults).expect("verifier-clean repair");

        // Pinning rule: unaffected messages keep allocation rows and
        // segments bit-identical.
        for &m in &out.report.unaffected {
            assert_eq!(
                repaired.allocation().row(m),
                sched.allocation().row(m),
                "allocation moved for unaffected {m}"
            );
            assert_eq!(repaired.assignment().path(m), sched.assignment().path(m));
            let before: Vec<_> = sched.segments().iter().filter(|s| s.message == m).collect();
            let after: Vec<_> = repaired
                .segments()
                .iter()
                .filter(|s| s.message == m)
                .collect();
            assert_eq!(before, after, "segments moved for unaffected {m}");
        }
        // Affected messages avoid the dead link.
        for &m in &out.rerouted {
            assert!(!repaired.assignment().links(m).contains(&dead));
        }
        assert_eq!(rec.counters()["repair.outcome.repaired"], 1);
        assert!(rec.counters()["repair.affected"] >= 1);
    }

    #[test]
    fn diagnosed_repair_records_ladder_and_matches_plain_repair() {
        let (topo, tfg, timing, sched) = compiled();
        let victim = sched.segments()[0].message;
        let dead = sched.assignment().links(victim)[0];
        let faults = FaultSet::new().fail_link(dead);
        let config = RepairConfig::default();

        let (out, diag) = repair_diagnosed(&sched, &topo, &tfg, &timing, &faults, &config, &NOOP);
        let plain = repair(&sched, &topo, &tfg, &timing, &faults, &config);
        // Diagnosis only observes the ladder.
        assert_eq!(out.verdict, plain.verdict);
        assert_eq!(out.rerouted, plain.rerouted);
        assert_eq!(diag.verdict, out.verdict);
        // The successful rung is the last recorded step.
        let last = diag.steps.last().expect("at least one step");
        assert_eq!(last.outcome, RepairStepOutcome::Succeeded);
        assert_eq!(last.rung, 1);
        assert_eq!(last.scale, Some(config.feedback_scales[0]));
        let text = diag.render_text();
        assert!(text.contains("repair ladder (verdict: repaired)"));
        assert!(text.contains("rung 1 (full re-route)"));
    }

    #[test]
    fn diagnosed_repair_names_the_unroutable_critical_message() {
        let (topo, tfg, timing, sched) = compiled();
        let victim = sched.segments()[0].message;
        let src = sched.assignment().path(victim).source();
        let faults = FaultSet::new().fail_node(src);
        let (out, diag) = repair_diagnosed(
            &sched,
            &topo,
            &tfg,
            &timing,
            &faults,
            &RepairConfig::default(),
            &NOOP,
        );
        assert_eq!(out.verdict, RepairVerdict::Infeasible);
        assert_eq!(diag.steps.len(), 1);
        assert_eq!(diag.steps[0].outcome, RepairStepOutcome::CriticalUnroutable);
        assert!(diag.render_text().contains("critical message unroutable"));
    }

    #[test]
    fn dead_endpoint_is_infeasible_when_critical() {
        let (topo, tfg, timing, sched) = compiled();
        let victim = sched.segments()[0].message;
        let src = sched.assignment().path(victim).source();
        let faults = FaultSet::new().fail_node(src);
        let out = repair(
            &sched,
            &topo,
            &tfg,
            &timing,
            &faults,
            &RepairConfig::default(),
        );
        assert_eq!(out.verdict, RepairVerdict::Infeasible);
        assert!(out.schedule.is_none());
        assert!(out.dropped.contains(&victim));
    }

    #[test]
    fn dead_endpoint_degrades_when_not_critical() {
        let (topo, tfg, timing, sched) = compiled();
        let victim = sched.segments()[0].message;
        let src = sched.assignment().path(victim).source();
        let faults = FaultSet::new().fail_node(src);
        // Nothing is critical: dropping the dead-endpoint messages is fine.
        let config = RepairConfig {
            critical: Some(vec![false; tfg.num_messages()]),
            ..RepairConfig::default()
        };
        let out = repair(&sched, &topo, &tfg, &timing, &faults, &config);
        assert_eq!(out.verdict, RepairVerdict::Degraded);
        let repaired = out.schedule.expect("degraded schedule");
        verify_with_faults(&repaired, &topo, &tfg, &faults).expect("clean degraded schedule");
        // Dropped messages carry no network traffic in the repaired schedule.
        for &m in &out.dropped {
            assert!(repaired.assignment().links(m).is_empty());
            assert!(repaired.segments().iter().all(|s| s.message != m));
        }
    }
}
