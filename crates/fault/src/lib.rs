//! **Fault injection and incremental schedule repair** for scheduled
//! routing.
//!
//! A compiled communication schedule `Ω` is contention-free only while the
//! switching schedules match the physical network: one dead link silently
//! breaks the clear-path guarantee of every message routed across it. This
//! crate adds the runtime-robustness layer on top of `sr-core`:
//!
//! * **Fault model** — a [`FaultSet`] names failed links and nodes; a
//!   [`MaskedTopology`] (both re-exported from `sr-topology`) presents the
//!   surviving network in the *original* dense id space, so schedule
//!   artifacts stay indexable.
//! * **Damage analysis** — [`sr_core::analyze_damage`] partitions the
//!   schedule's messages into unaffected / affected / lost.
//! * **Incremental repair** — [`repair`] re-routes only the affected
//!   messages over the masked topology ([`sr_core::assign_paths_partial`]),
//!   re-derives only their allocation rows with every unaffected row pinned
//!   bit-identically ([`sr_core::allocate_intervals_pinned`]), and packs
//!   the re-routed traffic into the links' remaining idle time without
//!   moving a single retained slice. The result passes
//!   [`sr_core::verify_with_faults`].
//! * **Degradation ladder** — full repair first; if that fails, non-critical
//!   messages ([`RepairConfig::critical`]) are demoted to best-effort
//!   grants ([`sr_core::admit_best_effort`]) and the critical rest is
//!   repaired; if even that fails the outcome is
//!   [`RepairVerdict::Infeasible`].
//! * **Fault sweeps** — [`sweep_link_failures`] measures repair feasibility
//!   across random fault draws of growing size (the CLI's `faults --sweep`).
//!
//! Compile with [`sr_core::CompileConfig::spare_capacity`] `ε > 0` to hold
//! back link headroom at first compile and make repairs more likely to
//! succeed.
//!
//! # Examples
//!
//! ```
//! use sr_fault::{repair, FaultSet, RepairConfig, RepairVerdict};
//! use sr_core::{compile, verify_with_faults, CompileConfig};
//! use sr_tfg::{generators, Timing};
//! use sr_topology::GeneralizedHypercube;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = GeneralizedHypercube::binary(3)?;
//! let tfg = generators::diamond(3, 500, 1280);
//! let timing = Timing::new(64.0, 10.0);
//! let alloc = sr_mapping::greedy(&tfg, &topo);
//! let sched = compile(&topo, &tfg, &alloc, &timing, 75.0, &CompileConfig::default())?;
//!
//! // A link under some scheduled path dies.
//! let dead = sched.assignment().links(sched.segments()[0].message)[0];
//! let faults = FaultSet::new().fail_link(dead);
//!
//! let outcome = repair(&sched, &topo, &tfg, &timing, &faults, &RepairConfig::default());
//! if let Some(repaired) = &outcome.schedule {
//!     verify_with_faults(repaired, &topo, &tfg, &faults)?;
//!     assert!(matches!(
//!         outcome.verdict,
//!         RepairVerdict::Repaired | RepairVerdict::Degraded
//!     ));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod repair;
mod sweep;

pub use repair::{
    repair, repair_diagnosed, repair_with_recorder, RepairConfig, RepairDiagnosis, RepairOutcome,
    RepairStep, RepairStepOutcome, RepairVerdict,
};
pub use sweep::{sweep_link_failures, SweepConfig, SweepPoint};

pub use sr_topology::{FaultSet, MaskedTopology};
