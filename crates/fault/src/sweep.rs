use sr_core::Schedule;
use sr_tfg::{TaskFlowGraph, Timing};
use sr_topology::{FaultSet, Topology};

use crate::{repair, RepairConfig, RepairVerdict};

/// Parameters of a [`sweep_link_failures`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Largest number of simultaneously failed links tried (the sweep runs
    /// `k = 1..=k_max`).
    pub k_max: usize,
    /// Random fault draws per `k`.
    pub trials: usize,
    /// Base seed for the deterministic fault draws.
    pub seed: u64,
    /// Repair configuration applied to every draw.
    pub repair: RepairConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            k_max: 3,
            trials: 8,
            seed: 0xfa17,
            repair: RepairConfig::default(),
        }
    }
}

/// One row of a fault sweep: repair outcomes over `trials` random draws of
/// `k` failed links.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of links failed per draw.
    pub k: usize,
    /// Draws evaluated.
    pub trials: usize,
    /// Draws that touched no scheduled path.
    pub unchanged: usize,
    /// Draws fully repaired (every affected message re-routed).
    pub repaired: usize,
    /// Draws repaired with demotions or drops.
    pub degraded: usize,
    /// Draws with no feasible repair.
    pub infeasible: usize,
    /// Mean messages re-routed over the draws that produced a schedule.
    pub mean_rerouted: f64,
}

impl SweepPoint {
    /// Fraction of draws that ended with a valid schedule (unchanged,
    /// repaired, or degraded).
    pub fn feasible_fraction(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        (self.trials - self.infeasible) as f64 / self.trials as f64
    }
}

/// Sweeps repair feasibility against the number of failed links: for each
/// `k = 1..=k_max`, draws [`SweepConfig::trials`] deterministic random
/// [`FaultSet`]s of `k` links (seeded per `(k, trial)`) and runs [`repair`]
/// on each, tallying the verdicts.
///
/// Draws are *not* filtered for connectivity — a draw that disconnects a
/// critical message's endpoints simply counts as infeasible, which is the
/// honest operational statistic.
pub fn sweep_link_failures(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    config: &SweepConfig,
) -> Vec<SweepPoint> {
    (1..=config.k_max)
        .map(|k| {
            let mut point = SweepPoint {
                k,
                trials: config.trials,
                unchanged: 0,
                repaired: 0,
                degraded: 0,
                infeasible: 0,
                mean_rerouted: 0.0,
            };
            let mut rerouted_sum = 0usize;
            let mut with_schedule = 0usize;
            for trial in 0..config.trials {
                let seed = config
                    .seed
                    .wrapping_add((k as u64) << 32)
                    .wrapping_add(trial as u64);
                let faults = FaultSet::random_links(topo, k, seed);
                let out = repair(schedule, topo, tfg, timing, &faults, &config.repair);
                match out.verdict {
                    RepairVerdict::Unchanged => point.unchanged += 1,
                    RepairVerdict::Repaired => point.repaired += 1,
                    RepairVerdict::Degraded => point.degraded += 1,
                    RepairVerdict::Infeasible => point.infeasible += 1,
                }
                if out.schedule.is_some() {
                    rerouted_sum += out.rerouted.len();
                    with_schedule += 1;
                }
            }
            if with_schedule > 0 {
                point.mean_rerouted = rerouted_sum as f64 / with_schedule as f64;
            }
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_core::{compile, CompileConfig};
    use sr_tfg::generators;
    use sr_topology::GeneralizedHypercube;

    #[test]
    fn sweep_tallies_every_trial() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            75.0,
            &CompileConfig::default(),
        )
        .unwrap();
        let cfg = SweepConfig {
            k_max: 2,
            trials: 4,
            ..SweepConfig::default()
        };
        let points = sweep_link_failures(&sched, &topo, &tfg, &timing, &cfg);
        assert_eq!(points.len(), 2);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.k, i + 1);
            assert_eq!(
                p.unchanged + p.repaired + p.degraded + p.infeasible,
                p.trials
            );
            assert!(p.feasible_fraction() >= 0.0 && p.feasible_fraction() <= 1.0);
        }
        // Deterministic: same config, same tallies.
        let again = sweep_link_failures(&sched, &topo, &tfg, &timing, &cfg);
        assert_eq!(points, again);
    }
}
