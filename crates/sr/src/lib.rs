//! **pipesched** — scheduled routing for task-level pipelining on
//! distributed-memory multiprocessors.
//!
//! An open-source reproduction of Shukla & Agrawal, *"Scheduling Pipelined
//! Communication in Distributed Memory Multiprocessors for Real-time
//! Applications"* (ISCA 1991). This umbrella crate re-exports the whole
//! stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`topology`] | `sr-topology` | generalized hypercubes, tori, shortest-path enumeration, dimension-order routing |
//! | [`tfg`] | `sr-tfg` | task-flow graphs, the DVB benchmark, message time bounds |
//! | [`lp`] | `sr-lp` | two-phase simplex LP solver |
//! | [`mapping`] | `sr-mapping` | task-to-node allocation strategies |
//! | [`wormhole`] | `sr-wormhole` | discrete-event wormhole-routing simulator (the baseline that exhibits output inconsistency) |
//! | [`sync`] | `sr-sync` | CP clock-drift models, sync-protocol simulation, guard-time sizing |
//! | [`core`] | `sr-core` | the scheduled-routing compiler and verifier |
//! | [`fault`] | `sr-fault` | fault injection, damage analysis, incremental schedule repair, fault sweeps |
//! | [`serve`] | `sr-serve` | resident scheduler daemon: multi-tenant online admission over a framed JSON protocol |
//! | [`obs`] | `sr-obs` | spans, counters, metrics tables, Chrome-trace export for the compile pipeline |
//!
//! # The 30-second tour
//!
//! ```
//! use sr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's workhorse configuration: DVB on a binary 6-cube.
//! let cube = GeneralizedHypercube::binary(6)?;
//! let tfg = dvb_uniform(6);
//! let alloc = sr::mapping::greedy(&tfg, &cube);
//! let timing = Timing::calibrated_dvb(128.0);
//!
//! // Wormhole routing: simulate and inspect the output-interval spread.
//! let wr = WormholeSim::new(&cube, &tfg, &alloc, &timing)?;
//! let result = wr.run(75.0, &SimConfig::default())?;
//! println!("WR intervals: {:?}", result.interval_stats());
//!
//! // Scheduled routing: compile a contention-free schedule for the same
//! // period and verify it.
//! let sched = compile(&cube, &tfg, &alloc, &timing, 75.0, &CompileConfig::default())?;
//! verify(&sched, &cube, &tfg)?;
//! assert!(sched.peak_utilization() <= 1.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sr_core as core;
pub use sr_fault as fault;
pub use sr_lp as lp;
pub use sr_mapping as mapping;
pub use sr_obs as obs;
pub use sr_serve as serve;
pub use sr_sync as sync;
pub use sr_tfg as tfg;
pub use sr_topology as topology;
pub use sr_wormhole as wormhole;

/// The most common imports, for `use sr::prelude::*`.
pub mod prelude {
    pub use sr_core::{
        analyze_damage, compile, compile_diagnosed, compile_with_recorder, replay_events, verify,
        verify_with_faults, AllocEngine, CompileConfig, CompileError, DamageReport, Diagnosis,
        Schedule,
    };
    pub use sr_fault::{
        repair, repair_diagnosed, sweep_link_failures, FaultSet, MaskedTopology, RepairConfig,
        RepairDiagnosis, RepairOutcome, RepairVerdict, SweepConfig,
    };
    pub use sr_mapping::Allocation;
    pub use sr_obs::{
        analyze_oi, parse_journal, read_journal, CounterSnapshot, EventSink, JournalData,
        JournalWriter, MetricsRecorder, OiReport, Recorder, RingEventSink, SimEvent, SimEventKind,
        NO_ID,
    };
    pub use sr_tfg::{
        assign_time_bounds, dvb, dvb_tiled, dvb_uniform, TaskFlowGraph, TfgBuilder, Timing,
        WindowPolicy,
    };
    pub use sr_topology::{GeneralizedHypercube, LinkId, NodeId, Path, Topology, Torus};
    pub use sr_wormhole::{SimConfig, SimResult, Stats, WormholeSim};
}
