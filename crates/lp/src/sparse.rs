//! Sparse revised simplex with an eta-file basis factorization.
//!
//! The allocation and interval-scheduling LPs are structurally sparse: each
//! variable appears in one equality row plus a handful of capacity rows, so
//! a dense tableau pays `O(m·width)` per pivot for arithmetic that touches a
//! few dozen nonzeros. This engine stores the constraint matrix
//! column-compressed and keeps the basis as a product-form factorization —
//! a sequence of *eta* vectors `E_1 … E_K` with `B⁻¹ = E_K⁻¹ ⋯ E_1⁻¹` —
//! refreshed by refactorization when the file grows past
//! `max(16, m/4)` update etas. Pivot *rules* deliberately mirror the dense
//! engine (Dantzig pricing with ascending-index tie-break, Bland fallback
//! after the same stall limit, ratio-test ties to the smallest basic index,
//! identical `PIVOT_EPS`/`FEAS_EPS`), so on non-degenerate instances both
//! engines walk the same vertex sequence and agree to rounding error.
//!
//! Pricing recomputes `y = Bᵀ⁻¹ c_B` fresh every iteration (a sparse BTRAN
//! over the eta file), so there is no incremental-cache drift and apparent
//! optimality needs no confirmation pass.
//!
//! Warm starts ([`crate::Problem::solve_warm`]) factor a caller-supplied
//! basis and skip phase 1 entirely when `B⁻¹b ≥ 0`; any structurally valid
//! basis yields a *correct* start (optimality is re-proven by pricing), so a
//! stale basis degrades to a cold solve, never a wrong answer.

use crate::problem::{Constraint, LpError, Relation};
use crate::simplex::SolveStats;

/// Pivot tolerance, identical to the dense engine.
const PIVOT_EPS: f64 = 1e-9;
/// Feasibility tolerance, identical to the dense engine.
const FEAS_EPS: f64 = 1e-7;

/// Consecutive degenerate pivots tolerated under Dantzig pricing before
/// falling back to Bland's rule (same policy as the dense engine).
fn stall_limit(m: usize) -> usize {
    2 * m + 16
}

/// Column-compressed matrix: the standard-form constraint matrix
/// `[structural | slack | artificial]`, `m` rows.
struct Csc {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csc {
    #[inline]
    fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.vals[s..e])
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Scatters column `j` into the dense vector `v` (assumed zeroed).
    fn scatter(&self, j: usize, v: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &a) in rows.iter().zip(vals) {
            v[r] = a;
        }
    }

    /// Sparse dot `v · a_j`.
    fn dot_col(&self, j: usize, v: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &a)| v[r] * a).sum()
    }
}

/// One elementary transformation of the product-form inverse: identity with
/// column `p` replaced by `w` (`pivot = w_p`, `idx/vals` the other nonzeros).
struct Eta {
    p: usize,
    pivot: f64,
    idx: Vec<usize>,
    vals: Vec<f64>,
}

/// FTRAN: applies `E_K⁻¹ ⋯ E_1⁻¹` to `v` in place (solves `Bv' = v`).
fn ftran(etas: &[Eta], v: &mut [f64]) {
    for e in etas {
        let vp = v[e.p];
        if vp != 0.0 {
            let t = vp / e.pivot;
            v[e.p] = t;
            for (&i, &w) in e.idx.iter().zip(&e.vals) {
                v[i] -= w * t;
            }
        }
    }
}

/// BTRAN: applies the transposed inverse in reverse order (solves
/// `Bᵀv' = v`).
fn btran(etas: &[Eta], v: &mut [f64]) {
    for e in etas.iter().rev() {
        let mut t = v[e.p];
        for (&i, &w) in e.idx.iter().zip(&e.vals) {
            t -= w * v[i];
        }
        v[e.p] = t / e.pivot;
    }
}

/// The problem in standard form, mirroring the dense engine's construction:
/// rows normalized to `rhs ≥ 0` (flipping relations), slack/surplus columns
/// after the structural ones, artificials last.
struct StandardForm {
    art_start: usize,
    total: usize,
    mat: Csc,
    rhs: Vec<f64>,
    /// Initial basic column per row: slack for `≤`, artificial otherwise —
    /// all unit columns, so the initial basis is the identity (empty eta
    /// file) and `x_B = b ≥ 0`.
    init_basis: Vec<usize>,
}

fn build_standard_form(n: usize, constraints: &[Constraint]) -> StandardForm {
    let m = constraints.len();
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in constraints {
        let flip = c.rhs < 0.0;
        let relation = match (c.relation, flip) {
            (Relation::Le, true) | (Relation::Ge, false) => Relation::Ge,
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Eq, _) => Relation::Eq,
        };
        match relation {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }
    let art_start = n + n_slack;
    let total = art_start + n_art;

    // Assemble CSC by counting-sort over columns; triplets are generated
    // row-major with ascending columns inside each row, so rows land in
    // ascending order within every column.
    let mut counts = vec![0usize; total];
    for (r, c) in constraints.iter().enumerate() {
        let _ = r;
        for &(j, _) in &c.coeffs {
            counts[j] += 1;
        }
    }
    // One slack/surplus or artificial singleton per row as computed above.
    // Column ids are assigned in row order, matching the dense layout.
    let mut slack_of = vec![usize::MAX; m];
    let mut art_of = vec![usize::MAX; m];
    {
        let mut slack_idx = n;
        let mut art_idx = art_start;
        for (r, c) in constraints.iter().enumerate() {
            let flip = c.rhs < 0.0;
            let relation = match (c.relation, flip) {
                (Relation::Le, true) | (Relation::Ge, false) => Relation::Ge,
                (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
                (Relation::Eq, _) => Relation::Eq,
            };
            match relation {
                Relation::Le => {
                    slack_of[r] = slack_idx;
                    counts[slack_idx] += 1;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    slack_of[r] = slack_idx;
                    counts[slack_idx] += 1;
                    slack_idx += 1;
                    art_of[r] = art_idx;
                    counts[art_idx] += 1;
                    art_idx += 1;
                }
                Relation::Eq => {
                    art_of[r] = art_idx;
                    counts[art_idx] += 1;
                    art_idx += 1;
                }
            }
        }
    }
    let mut col_ptr = vec![0usize; total + 1];
    for j in 0..total {
        col_ptr[j + 1] = col_ptr[j] + counts[j];
    }
    let nnz = col_ptr[total];
    let mut row_idx = vec![0usize; nnz];
    let mut vals = vec![0.0f64; nnz];
    let mut cursor = col_ptr.clone();
    let mut rhs = vec![0.0f64; m];
    let mut init_basis = vec![0usize; m];
    for (r, c) in constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        rhs[r] = sign * c.rhs;
        let relation = match (c.relation, flip) {
            (Relation::Le, true) | (Relation::Ge, false) => Relation::Ge,
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Eq, _) => Relation::Eq,
        };
        for &(j, a) in &c.coeffs {
            let k = cursor[j];
            row_idx[k] = r;
            vals[k] = sign * a;
            cursor[j] += 1;
        }
        match relation {
            Relation::Le => {
                let j = slack_of[r];
                let k = cursor[j];
                row_idx[k] = r;
                vals[k] = 1.0;
                cursor[j] += 1;
                init_basis[r] = j;
            }
            Relation::Ge => {
                let j = slack_of[r];
                let k = cursor[j];
                row_idx[k] = r;
                vals[k] = -1.0;
                cursor[j] += 1;
                let ja = art_of[r];
                let ka = cursor[ja];
                row_idx[ka] = r;
                vals[ka] = 1.0;
                cursor[ja] += 1;
                init_basis[r] = ja;
            }
            Relation::Eq => {
                let ja = art_of[r];
                let ka = cursor[ja];
                row_idx[ka] = r;
                vals[ka] = 1.0;
                cursor[ja] += 1;
                init_basis[r] = ja;
            }
        }
    }

    StandardForm {
        art_start,
        total,
        mat: Csc {
            m,
            col_ptr,
            row_idx,
            vals,
        },
        rhs,
        init_basis,
    }
}

/// Factors the basis given by `cols` (one column per row, any order) into a
/// fresh eta file, returning the file and the pivot-row → column map.
///
/// Columns are processed sparsest-first (ties by column index) so the unit
/// slack/artificial columns peel off with single-entry etas and fill
/// concentrates in the small non-trivial core; the pivot row is the largest
/// remaining `|w|` (partial pivoting), ties to the lowest row.
fn factor(
    sf: &StandardForm,
    cols: &[usize],
    stats: &mut SolveStats,
) -> Result<(Vec<Eta>, Vec<usize>), ()> {
    let m = sf.mat.m;
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&k| (sf.mat.col_nnz(cols[k]), cols[k]));
    let mut etas: Vec<Eta> = Vec::with_capacity(m);
    let mut row_basis = vec![usize::MAX; m];
    let mut taken = vec![false; m];
    let mut w = vec![0.0f64; m];
    for &k in &order {
        let j = cols[k];
        w.iter_mut().for_each(|x| *x = 0.0);
        sf.mat.scatter(j, &mut w);
        ftran(&etas, &mut w);
        let mut p = usize::MAX;
        let mut best = PIVOT_EPS;
        for (i, &wi) in w.iter().enumerate() {
            if !taken[i] && wi.abs() > best {
                best = wi.abs();
                p = i;
            }
        }
        if p == usize::MAX {
            return Err(());
        }
        taken[p] = true;
        row_basis[p] = j;
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i != p && wi != 0.0 {
                idx.push(i);
                vals.push(wi);
            }
        }
        stats.eta_vectors += 1;
        stats.eta_nonzeros += (idx.len() + 1) as u64;
        etas.push(Eta {
            p,
            pivot: w[p],
            idx,
            vals,
        });
    }
    stats.factorizations += 1;
    Ok((etas, row_basis))
}

/// Mutable solver state threaded through the phases.
struct State {
    etas: Vec<Eta>,
    /// Basic column per pivot row.
    row_basis: Vec<usize>,
    /// Current basic values, row-indexed (`x_B = B⁻¹ b`).
    xb: Vec<f64>,
    /// Update etas appended since the last (re)factorization.
    updates: usize,
}

impl State {
    /// Appends the update eta for a pivot at `row` with FTRANed column `w`,
    /// and updates `x_B` by the same transformation.
    fn pivot(&mut self, row: usize, col: usize, w: &[f64], stats: &mut SolveStats) {
        let t = self.xb[row] / w[row];
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i != row && wi != 0.0 {
                self.xb[i] -= wi * t;
                idx.push(i);
                vals.push(wi);
            }
        }
        self.xb[row] = t;
        stats.eta_vectors += 1;
        stats.eta_nonzeros += (idx.len() + 1) as u64;
        self.etas.push(Eta {
            p: row,
            pivot: w[row],
            idx,
            vals,
        });
        self.row_basis[row] = col;
        self.updates += 1;
        stats.pivots += 1;
    }

    /// Refactors from scratch when the eta file has grown past the limit;
    /// on a (numerically) singular refactorization the old file is kept —
    /// it is still a correct representation, just longer.
    fn maybe_refactor(&mut self, sf: &StandardForm, stats: &mut SolveStats) {
        let m = sf.mat.m;
        if self.updates < (m / 4).max(16) {
            return;
        }
        if let Ok((etas, row_basis)) = factor(sf, &self.row_basis, stats) {
            let mut xb = sf.rhs.clone();
            ftran(&etas, &mut xb);
            self.etas = etas;
            self.row_basis = row_basis;
            self.xb = xb;
            stats.refactorizations += 1;
        }
        self.updates = 0;
    }
}

/// Runs one simplex phase minimizing `costs` (length `total`), entering only
/// columns `< allowed`. Returns the objective at optimality.
fn run_phase(
    sf: &StandardForm,
    st: &mut State,
    costs: &[f64],
    allowed: usize,
    iter_limit: usize,
    stats: &mut SolveStats,
) -> Result<f64, LpError> {
    let m = sf.mat.m;
    let mut y = vec![0.0f64; m];
    let mut w = vec![0.0f64; m];
    let mut degenerate_run = 0usize;
    let mut bland = false;

    for _ in 0..iter_limit {
        // --- Pricing: y = Bᵀ⁻¹ c_B, then d_j = y·a_j − c_j -------------
        for (r, v) in y.iter_mut().enumerate() {
            *v = costs[st.row_basis[r]];
        }
        btran(&st.etas, &mut y);
        stats.price_recomputes += 1;
        let entering = if bland {
            (0..allowed).find(|&j| sf.mat.dot_col(j, &y) - costs[j] > FEAS_EPS)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for (j, &cj) in costs.iter().enumerate().take(allowed) {
                let d = sf.mat.dot_col(j, &y) - cj;
                if d > FEAS_EPS && best.is_none_or(|(_, bv)| d > bv) {
                    best = Some((j, d));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(col) = entering else {
            // Pricing is exact every iteration, so apparent optimality is
            // real optimality — no confirmation pass needed.
            let obj = (0..m).map(|r| costs[st.row_basis[r]] * st.xb[r]).sum();
            return Ok(obj);
        };

        // --- FTRAN the entering column and run the ratio test ----------
        w.iter_mut().for_each(|x| *x = 0.0);
        sf.mat.scatter(col, &mut w);
        ftran(&st.etas, &mut w);
        let mut leaving: Option<(usize, f64)> = None;
        for (r, &a) in w.iter().enumerate() {
            if a > PIVOT_EPS {
                let ratio = st.xb[r] / a;
                match leaving {
                    None => leaving = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - PIVOT_EPS
                            || ((ratio - lratio).abs() <= PIVOT_EPS
                                && st.row_basis[r] < st.row_basis[lr])
                        {
                            leaving = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, ratio)) = leaving else {
            return Err(LpError::Unbounded);
        };

        st.pivot(row, col, &w, stats);
        st.maybe_refactor(sf, stats);

        // --- Stall bookkeeping (same policy as the dense engine) -------
        if ratio <= PIVOT_EPS {
            degenerate_run += 1;
            stats.degenerate_pivots += 1;
            if !bland && degenerate_run >= stall_limit(m) {
                bland = true;
                stats.bland_switches += 1;
            }
        } else {
            degenerate_run = 0;
            bland = false;
        }
    }
    Err(LpError::IterationLimit)
}

/// Result of a sparse solve: variable values plus the optimal basis (one
/// column per row), `None` when an artificial remained basic (redundant
/// row) — such a basis is not reusable for warm starts.
pub(crate) struct SparseOutcome {
    pub(crate) values: Vec<f64>,
    pub(crate) basis: Option<Vec<usize>>,
}

/// Solves `minimize c·x  s.t.  constraints, x ≥ 0` with the revised engine,
/// optionally warm-starting from `warm` (basic column per row of a
/// structurally identical problem).
pub(crate) fn solve(
    costs: &[f64],
    constraints: &[Constraint],
    warm: Option<&[usize]>,
    stats: &mut SolveStats,
) -> Result<SparseOutcome, LpError> {
    let n = costs.len();
    let m = constraints.len();
    if m == 0 {
        if costs.iter().any(|&c| c < -PIVOT_EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(SparseOutcome {
            values: vec![0.0; n],
            basis: Some(Vec::new()),
        });
    }

    let sf = build_standard_form(n, constraints);
    let iter_limit = 20_000 + 100 * (m + sf.total);

    // --- Warm start: factor the supplied basis; if B⁻¹b ≥ 0 the old
    // vertex is primal feasible here and phase 1 is skipped entirely. Any
    // failure (shape, singular, infeasible) falls back to a cold start.
    let mut st: Option<State> = None;
    if let Some(cols) = warm {
        let mut ok = cols.len() == m && cols.iter().all(|&j| j < sf.art_start);
        if ok {
            let mut seen = vec![false; sf.art_start];
            for &j in cols {
                if seen[j] {
                    ok = false;
                    break;
                }
                seen[j] = true;
            }
        }
        if ok {
            if let Ok((etas, row_basis)) = factor(&sf, cols, stats) {
                let mut xb = sf.rhs.clone();
                ftran(&etas, &mut xb);
                if xb.iter().all(|&x| x >= -FEAS_EPS) {
                    stats.warm_hits += 1;
                    st = Some(State {
                        etas,
                        row_basis,
                        xb,
                        updates: 0,
                    });
                }
            }
        }
        if st.is_none() {
            stats.warm_misses += 1;
        }
    }

    let mut st = match st {
        Some(st) => st,
        None => {
            // Cold start from the identity basis (slack for ≤, artificial
            // otherwise); phase 1 drives the artificials out.
            let mut st = State {
                etas: Vec::new(),
                row_basis: sf.init_basis.clone(),
                xb: sf.rhs.clone(),
                updates: 0,
            };
            if sf.total > sf.art_start {
                let mut c1 = vec![0.0; sf.total];
                c1[sf.art_start..].fill(1.0);
                let obj = run_phase(&sf, &mut st, &c1, sf.total, iter_limit, stats)?;
                stats.phase1_pivots = stats.pivots;
                if obj > FEAS_EPS {
                    return Err(LpError::Infeasible);
                }
                pivot_out_artificials(&sf, &mut st, stats);
            }
            st
        }
    };

    // --- Phase 2 -----------------------------------------------------------
    let mut c2 = vec![0.0; sf.total];
    c2[..n].copy_from_slice(costs);
    run_phase(&sf, &mut st, &c2, sf.art_start, iter_limit, stats)?;

    let mut values = vec![0.0; n];
    for (r, &b) in st.row_basis.iter().enumerate() {
        if b < n {
            values[b] = st.xb[r].max(0.0);
        }
    }
    let basis = if st.row_basis.iter().all(|&b| b < sf.art_start) {
        Some(st.row_basis)
    } else {
        None
    };
    Ok(SparseOutcome { values, basis })
}

/// Outcome of [`solve_diagnosed`]: the terminal vertex plus the row duals
/// the pricing loop normally discards, in the caller's original row order
/// and sign convention.
pub(crate) enum DiagnosedSolve {
    /// Solved to optimality: variable values plus the dual value `y_r` of
    /// every constraint row (`y = Bᵀ⁻¹ c_B` at the optimal basis).
    Optimal {
        /// Structural variable values.
        values: Vec<f64>,
        /// Per-row duals.
        duals: Vec<f64>,
    },
    /// Phase 1 terminated with artificials at a positive level. The phase-1
    /// duals form a Farkas certificate of infeasibility: rows with nonzero
    /// weight are a mutually incompatible set (`Σ y_r · row_r` is a valid
    /// inequality no `x ≥ 0` can satisfy).
    Infeasible {
        /// Per-row certificate weights.
        certificate: Vec<f64>,
    },
}

/// Cold solve that also recovers the row duals at termination — one extra
/// BTRAN per phase over [`solve`]'s work. Used on diagnostic paths only;
/// warm starts are deliberately unsupported (diagnosis re-solves are rare
/// and must not depend on cached bases).
pub(crate) fn solve_diagnosed(
    costs: &[f64],
    constraints: &[Constraint],
    stats: &mut SolveStats,
) -> Result<DiagnosedSolve, LpError> {
    let n = costs.len();
    let m = constraints.len();
    if m == 0 {
        if costs.iter().any(|&c| c < -PIVOT_EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(DiagnosedSolve::Optimal {
            values: vec![0.0; n],
            duals: Vec::new(),
        });
    }

    let sf = build_standard_form(n, constraints);
    let iter_limit = 20_000 + 100 * (m + sf.total);
    let mut st = State {
        etas: Vec::new(),
        row_basis: sf.init_basis.clone(),
        xb: sf.rhs.clone(),
        updates: 0,
    };
    if sf.total > sf.art_start {
        let mut c1 = vec![0.0; sf.total];
        c1[sf.art_start..].fill(1.0);
        let obj = run_phase(&sf, &mut st, &c1, sf.total, iter_limit, stats)?;
        stats.phase1_pivots = stats.pivots;
        if obj > FEAS_EPS {
            return Ok(DiagnosedSolve::Infeasible {
                certificate: row_duals(&sf, &st, &c1, constraints),
            });
        }
        pivot_out_artificials(&sf, &mut st, stats);
    }

    let mut c2 = vec![0.0; sf.total];
    c2[..n].copy_from_slice(costs);
    run_phase(&sf, &mut st, &c2, sf.art_start, iter_limit, stats)?;

    let mut values = vec![0.0; n];
    for (r, &b) in st.row_basis.iter().enumerate() {
        if b < n {
            values[b] = st.xb[r].max(0.0);
        }
    }
    let duals = row_duals(&sf, &st, &c2, constraints);
    Ok(DiagnosedSolve::Optimal { values, duals })
}

/// Recovers the row duals `y = Bᵀ⁻¹ c_B` for the current basis and maps them
/// back to the caller's convention: [`build_standard_form`] negates rows
/// with `rhs < 0`, so those rows' duals are negated back here.
fn row_duals(sf: &StandardForm, st: &State, costs: &[f64], constraints: &[Constraint]) -> Vec<f64> {
    let m = sf.mat.m;
    let mut y = vec![0.0f64; m];
    for (r, v) in y.iter_mut().enumerate() {
        *v = costs[st.row_basis[r]];
    }
    btran(&st.etas, &mut y);
    for (r, c) in constraints.iter().enumerate() {
        if c.rhs < 0.0 {
            y[r] = -y[r];
        }
    }
    y
}

/// Pivots any artificial still basic after phase 1 out on the first
/// structural/slack column with a nonzero entry in its row (the row of
/// `B⁻¹A` is probed via `ρ = Bᵀ⁻¹ e_r`); an all-zero row is redundant and
/// the artificial stays basic at zero, exactly as in the dense engine.
fn pivot_out_artificials(sf: &StandardForm, st: &mut State, stats: &mut SolveStats) {
    let m = sf.mat.m;
    for r in 0..m {
        if st.row_basis[r] < sf.art_start {
            continue;
        }
        let mut rho = vec![0.0f64; m];
        rho[r] = 1.0;
        btran(&st.etas, &mut rho);
        if let Some(j) = (0..sf.art_start).find(|&j| sf.mat.dot_col(j, &rho).abs() > PIVOT_EPS) {
            let mut w = vec![0.0f64; m];
            sf.mat.scatter(j, &mut w);
            ftran(&st.etas, &mut w);
            st.pivot(r, j, &w, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }

    fn solve_cold(costs: &[f64], cons: &[Constraint]) -> Result<Vec<f64>, LpError> {
        super::solve(costs, cons, None, &mut SolveStats::default()).map(|o| o.values)
    }

    #[test]
    fn matches_dense_on_transportation() {
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0),
            c(vec![(2, 1.0), (3, 1.0)], Relation::Eq, 4.0),
            c(vec![(0, 1.0), (2, 1.0)], Relation::Eq, 5.0),
            c(vec![(1, 1.0), (3, 1.0)], Relation::Eq, 2.0),
        ];
        let costs = [1.0, 4.0, 2.0, 1.0];
        let v = solve_cold(&costs, &cons).unwrap();
        let obj: f64 = v.iter().zip(costs).map(|(x, c)| x * c).sum();
        assert!((obj - 9.0).abs() < 1e-6, "obj={obj} v={v:?}");
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let cons = vec![
            c(vec![(0, 1.0)], Relation::Ge, 5.0),
            c(vec![(0, 1.0)], Relation::Le, 3.0),
        ];
        assert_eq!(solve_cold(&[1.0], &cons).unwrap_err(), LpError::Infeasible);
        let cons = vec![c(vec![(0, 1.0)], Relation::Ge, 0.0)];
        assert_eq!(solve_cold(&[-1.0], &cons).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn beale_degenerate_terminates() {
        let cons = vec![
            c(
                vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                Relation::Le,
                0.0,
            ),
            c(
                vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                Relation::Le,
                0.0,
            ),
            c(vec![(2, 1.0)], Relation::Le, 1.0),
        ];
        let v = solve_cold(&[-0.75, 150.0, -0.02, 6.0], &cons).unwrap();
        let obj = -0.75 * v[0] + 150.0 * v[1] - 0.02 * v[2] + 6.0 * v[3];
        assert!((obj - (-0.05)).abs() < 1e-6, "obj={obj} v={v:?}");
    }

    #[test]
    fn warm_start_skips_phase_one() {
        // A feasibility system: solve cold, then re-solve with a tightened
        // rhs from the old basis — the warm solve must report a hit and
        // zero phase-1 pivots.
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 4.0),
            c(vec![(0, 1.0)], Relation::Le, 3.0),
        ];
        let mut s1 = SolveStats::default();
        let out = super::solve(&[0.0, 0.0], &cons, None, &mut s1).unwrap();
        let basis = out.basis.expect("artificial-free optimum");
        let cons2 = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 4.0),
            c(vec![(0, 1.0)], Relation::Le, 2.5),
        ];
        let mut s2 = SolveStats::default();
        let out2 = super::solve(&[0.0, 0.0], &cons2, Some(&basis), &mut s2).unwrap();
        // Whether the old vertex is still feasible depends on which basis
        // the cold solve ended on; either way the answer must be feasible
        // and the stats must classify the attempt.
        assert!(out2.values[0] <= 2.5 + 1e-9);
        assert!((out2.values[0] + out2.values[1] - 4.0).abs() < 1e-7);
        assert_eq!(s2.warm_hits + s2.warm_misses, 1, "{s2:?}");
        if s2.warm_hits == 1 {
            assert_eq!(s2.phase1_pivots, 0, "{s2:?}");
        }
    }

    #[test]
    fn warm_start_rejects_bad_shapes() {
        let cons = vec![c(vec![(0, 1.0)], Relation::Le, 3.0)];
        // Wrong length and out-of-range columns must fall back cleanly.
        for bad in [vec![], vec![9usize], vec![0, 1]] {
            let mut s = SolveStats::default();
            let out = super::solve(&[1.0], &cons, Some(&bad), &mut s).unwrap();
            assert!(out.values[0].abs() < 1e-9);
            assert_eq!(s.warm_misses, 1, "{s:?}");
        }
    }

    #[test]
    fn refactorization_triggers_on_long_runs() {
        // A covering LP big enough to exceed the update-eta limit.
        let n = 40;
        let costs: Vec<f64> = (0..n).map(|j| 1.0 + (j % 7) as f64).collect();
        let mut cons = Vec::new();
        for r in 0..n {
            let coeffs: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, 1.0 + ((r * 5 + j * 3) % 13) as f64 / 13.0))
                .collect();
            cons.push(c(coeffs, Relation::Ge, 3.0));
        }
        let mut stats = SolveStats::default();
        let out = super::solve(&costs, &cons, None, &mut stats).unwrap();
        assert!(stats.factorizations > 0, "{stats:?}");
        assert!(stats.eta_vectors > 0, "{stats:?}");
        assert!(out.values.iter().all(|&x| x >= 0.0));
    }
}
