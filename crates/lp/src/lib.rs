//! A dense two-phase primal simplex solver.
//!
//! Scheduled routing needs two optimization substrates (paper §5.2–5.3):
//! the **message–interval allocation** feasibility system (constraints
//! (3),(4)) and the **interval scheduling** problem (minimize the total
//! transmission time of *link-feasible sets*, after \[BDW86\]). Both are
//! linear programs over non-negative continuous variables — preemptive
//! scheduling makes the fractional relaxation exact — so this crate provides
//! a small, dependency-free LP solver:
//!
//! * variables are non-negative reals with linear costs;
//! * constraints are `≤`, `≥`, or `=` with arbitrary coefficients;
//! * the objective is minimized (maximize by negating costs);
//! * phase 1 drives artificial variables to zero (detecting infeasibility),
//!   phase 2 optimizes the true objective;
//! * Bland's rule guarantees termination (no cycling).
//!
//! # Examples
//!
//! ```
//! use sr_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), sr_lp::LpError> {
//! // minimize x + 2y  s.t.  x + y >= 4,  y <= 3
//! let mut p = Problem::minimize();
//! let x = p.add_var(1.0);
//! let y = p.add_var(2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0)?;
//! p.add_constraint(&[(y, 1.0)], Relation::Le, 3.0)?;
//! let sol = p.solve()?;
//! assert!((sol.objective() - 4.0).abs() < 1e-9); // x = 4, y = 0
//! assert!((sol.value(x) - 4.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basis;
mod problem;
mod simplex;
mod sparse;

pub use basis::Basis;
pub use problem::{
    DiagnosedOutcome, LpDiagnostics, LpEngine, LpError, Problem, Relation, Solution, VarId,
};
pub use simplex::SolveStats;
