use std::error::Error;
use std::fmt;

use crate::basis::Basis;
use crate::simplex;
use crate::simplex::SolveStats;
use crate::sparse;

/// Which simplex engine [`Problem::solve`] runs.
///
/// Both engines implement the same two-phase primal simplex with identical
/// pivot rules and tolerances, so they agree on feasibility verdicts and
/// optimal objectives (to rounding error). The sparse engine is the default
/// — the scheduling LPs have a handful of nonzeros per column, so the
/// revised method with an eta-file basis does a small fraction of the dense
/// tableau's arithmetic — while the dense engine is retained as the
/// differential oracle for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LpEngine {
    /// Dense row-major tableau (PR 1 kernel). Exact full-tableau pivots.
    Dense,
    /// Sparse revised simplex with product-form basis factorization and
    /// warm-start support.
    #[default]
    Sparse,
}

/// Index of a decision variable in a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Constructs a variable id from its dense index.
    ///
    /// Ids are assigned densely from zero in [`Problem::add_var`] order, so
    /// callers that track insertion order can reconstruct ids. Out-of-range
    /// ids are rejected when used in [`Problem::add_constraint`].
    pub fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub(crate) coeffs: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// Errors from building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// No assignment of the variables satisfies every constraint.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// A coefficient, cost, or right-hand side was not finite.
    NonFiniteInput {
        /// What the offending number was supplied as.
        what: &'static str,
    },
    /// A constraint referenced a variable id that does not exist.
    UnknownVariable {
        /// The out-of-range variable.
        var: VarId,
        /// Number of variables actually present.
        num_vars: usize,
    },
    /// The pivot count exceeded the safety limit (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::NonFiniteInput { what } => write!(f, "{what} must be finite"),
            LpError::UnknownVariable { var, num_vars } => {
                write!(
                    f,
                    "constraint references {var} but only {num_vars} variables exist"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for LpError {}

/// A linear program: minimize `c·x` subject to linear constraints, `x ≥ 0`.
///
/// Build with [`Problem::minimize`] (or [`Problem::maximize`]), add variables
/// and constraints, then call [`Problem::solve`]. See the crate docs for a
/// complete example.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    costs: Vec<f64>,
    constraints: Vec<Constraint>,
    maximize: bool,
}

impl Problem {
    /// A minimization problem.
    pub fn minimize() -> Self {
        Problem::default()
    }

    /// A maximization problem (costs are negated internally).
    pub fn maximize() -> Self {
        Problem {
            maximize: true,
            ..Problem::default()
        }
    }

    /// Adds a non-negative variable with objective coefficient `cost` and
    /// returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is not finite.
    pub fn add_var(&mut self, cost: f64) -> VarId {
        assert!(cost.is_finite(), "variable cost must be finite");
        let id = VarId(self.costs.len());
        self.costs.push(cost);
        id
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `Σ coeffs ⟨relation⟩ rhs`.
    ///
    /// Repeated variables in `coeffs` are summed. A constraint with no
    /// coefficients is accepted (it is trivially checked against `rhs`).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for out-of-range ids and
    /// [`LpError::NonFiniteInput`] for non-finite numbers.
    pub fn add_constraint(
        &mut self,
        coeffs: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteInput {
                what: "right-hand side",
            });
        }
        let mut dense: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(var, a) in coeffs {
            if var.0 >= self.costs.len() {
                return Err(LpError::UnknownVariable {
                    var,
                    num_vars: self.costs.len(),
                });
            }
            if !a.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: "coefficient",
                });
            }
            *dense.entry(var.0).or_insert(0.0) += a;
        }
        self.constraints.push(Constraint {
            coeffs: dense.into_iter().collect(),
            relation,
            rhs,
        });
        Ok(())
    }

    /// Solves the program with the default engine ([`LpEngine::Sparse`]).
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`] (pathological numerics).
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with_stats().map(|(s, _)| s)
    }

    /// Solves the program and reports solver work counters alongside the
    /// solution — same algorithm and result as [`Problem::solve`], plus a
    /// [`SolveStats`] of pivot/pricing activity for observability.
    ///
    /// # Errors
    ///
    /// As [`Problem::solve`]. Counters reflect the work done up to the
    /// failure, but are only returned on success.
    pub fn solve_with_stats(&self) -> Result<(Solution, SolveStats), LpError> {
        self.solve_with_engine(LpEngine::default())
    }

    /// Solves the program with an explicit engine choice.
    ///
    /// # Errors
    ///
    /// As [`Problem::solve`].
    pub fn solve_with_engine(&self, engine: LpEngine) -> Result<(Solution, SolveStats), LpError> {
        let costs = self.min_costs();
        let mut stats = SolveStats::default();
        let values = match engine {
            LpEngine::Dense => simplex::solve(&costs, &self.constraints, &mut stats)?,
            LpEngine::Sparse => sparse::solve(&costs, &self.constraints, None, &mut stats)?.values,
        };
        Ok((self.finish(values), stats))
    }

    /// Solves with the sparse engine, optionally warm-starting from the
    /// optimal basis of a previous solve, and returns the new optimal basis
    /// for the next one.
    ///
    /// The warm basis must come from a *structurally identical* problem —
    /// same variables, same constraint rows in the same order with the same
    /// relations; only right-hand sides and coefficients may differ. When
    /// the old vertex is still primal feasible, phase 1 is skipped outright
    /// (a `warm_hits` count in the stats); otherwise the solve falls back
    /// to a cold start (`warm_misses`) — a stale or mismatched basis can
    /// cost time but never correctness, because optimality is re-proven by
    /// pricing either way. The returned basis is `None` when a redundant
    /// row left an artificial variable basic.
    ///
    /// # Errors
    ///
    /// As [`Problem::solve`].
    pub fn solve_warm(
        &self,
        warm: Option<&Basis>,
    ) -> Result<(Solution, Option<Basis>, SolveStats), LpError> {
        let costs = self.min_costs();
        let mut stats = SolveStats::default();
        let warm_cols = warm
            .filter(|b| b.matches_shape(self.costs.len(), self.constraints.len()))
            .map(|b| b.cols.as_slice());
        if warm.is_some() && warm_cols.is_none() {
            stats.warm_misses += 1;
        }
        let out = sparse::solve(&costs, &self.constraints, warm_cols, &mut stats)?;
        let basis = out.basis.map(|cols| Basis {
            cols,
            num_vars: self.costs.len(),
        });
        Ok((self.finish(out.values), basis, stats))
    }

    /// Solves the program and recovers row-level diagnostics — the dual
    /// value and binding flag of every constraint — instead of discarding
    /// them with the tableau.
    ///
    /// On a feasible program the diagnostics carry the duals `y = Bᵀ⁻¹ c_B`
    /// at the optimal basis (in the *minimization* sense — negate for
    /// maximization problems) and mark the rows that are tight at the
    /// optimum within `tol`. On an infeasible program no [`LpError`] is
    /// returned; instead [`DiagnosedOutcome::Infeasible`] carries the
    /// phase-1 duals, a **Farkas certificate** whose nonzero-weight rows
    /// form a mutually incompatible set — exactly the rows an explainer
    /// should name.
    ///
    /// Always runs the sparse engine, cold (no warm-start dependence), so
    /// diagnostic re-solves are deterministic for a given problem.
    ///
    /// # Errors
    ///
    /// [`LpError::Unbounded`] or [`LpError::IterationLimit`];
    /// infeasibility is a diagnosed outcome, not an error.
    pub fn solve_diagnosed(&self, tol: f64) -> Result<DiagnosedOutcome, LpError> {
        let costs = self.min_costs();
        let mut stats = SolveStats::default();
        match sparse::solve_diagnosed(&costs, &self.constraints, &mut stats)? {
            sparse::DiagnosedSolve::Optimal { values, duals } => {
                let binding = self
                    .constraints
                    .iter()
                    .map(|c| {
                        let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * values[i]).sum();
                        (lhs - c.rhs).abs() <= tol
                    })
                    .collect();
                Ok(DiagnosedOutcome::Optimal {
                    solution: self.finish(values),
                    diagnostics: LpDiagnostics {
                        duals,
                        binding,
                        infeasible: false,
                    },
                })
            }
            sparse::DiagnosedSolve::Infeasible { certificate } => {
                let binding = certificate.iter().map(|&y| y.abs() > tol).collect();
                Ok(DiagnosedOutcome::Infeasible(LpDiagnostics {
                    duals: certificate,
                    binding,
                    infeasible: true,
                }))
            }
        }
    }

    /// Costs in minimization sense (negated for maximization problems).
    fn min_costs(&self) -> Vec<f64> {
        if self.maximize {
            self.costs.iter().map(|c| -c).collect()
        } else {
            self.costs.clone()
        }
    }

    /// Wraps raw variable values into a [`Solution`] with the objective in
    /// the problem's original sense.
    fn finish(&self, values: Vec<f64>) -> Solution {
        let mut objective: f64 = values.iter().zip(&self.costs).map(|(x, c)| x * c).sum();
        // Normalize -0.0.
        if objective == 0.0 {
            objective = 0.0;
        }
        Solution { values, objective }
    }

    /// Checks whether `values` satisfies every constraint within `tol`.
    ///
    /// Useful for validating solutions produced elsewhere (or by
    /// [`Problem::solve`] itself, in tests).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.costs.len() {
            return false;
        }
        if values.iter().any(|&v| v < -tol || !v.is_finite()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * values[i]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Row-level diagnostics from [`Problem::solve_diagnosed`].
///
/// Both vectors are indexed by constraint row, in [`Problem::add_constraint`]
/// order — callers that track their row layout can map entries straight back
/// to whatever the rows model.
#[derive(Debug, Clone, PartialEq)]
pub struct LpDiagnostics {
    /// Per-row dual value: the optimal duals on a feasible program, the
    /// phase-1 Farkas certificate weights on an infeasible one.
    pub duals: Vec<f64>,
    /// Per-row activity flag: tight at the optimum (feasible), or carrying
    /// nonzero certificate weight (infeasible).
    pub binding: Vec<bool>,
    /// Whether `duals` is a Farkas certificate rather than optimal duals.
    pub infeasible: bool,
}

/// Outcome of [`Problem::solve_diagnosed`].
#[derive(Debug, Clone, PartialEq)]
pub enum DiagnosedOutcome {
    /// Solved to optimality.
    Optimal {
        /// The optimal solution, as [`Problem::solve`] would return it.
        solution: Solution,
        /// Duals and binding rows at the optimum.
        diagnostics: LpDiagnostics,
    },
    /// No feasible point exists; the diagnostics carry the certificate.
    Infeasible(LpDiagnostics),
}

/// An optimal solution to a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
}

impl Solution {
    /// The optimal objective value (in the problem's original sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// All variable values, indexable by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_minimize() {
        let mut p = Problem::minimize();
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 6.0).unwrap();
        let s = p.solve().unwrap();
        // x = 6, y = 4 -> 18 + 20 = 38.
        assert!((s.objective() - 38.0).abs() < 1e-8, "got {}", s.objective());
        assert!(p.is_feasible(s.values(), 1e-8));
    }

    #[test]
    fn simple_maximize() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
        let mut p = Problem::maximize();
        let x = p.add_var(3.0);
        let y = p.add_var(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let s = p.solve().unwrap();
        assert!((s.objective() - 12.0).abs() < 1e-8);
        assert!((s.value(x) - 4.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + 2y = 4, x - y = 1 -> x=2, y=1, obj=3.
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0)
            .unwrap();
        let s = p.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-8);
        assert!((s.value(y) - 1.0).abs() < 1e-8);
        assert!((s.objective() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize();
        let x = p.add_var(-1.0); // minimize -x with x unbounded above
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // x >= -3 is vacuous for x >= 0; minimize x -> 0.
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -3.0).unwrap();
        let s = p.solve().unwrap();
        assert!(s.objective().abs() < 1e-9);

        // -x >= 2 i.e. x <= -2: infeasible for x >= 0.
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn repeated_vars_are_summed() {
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0), (x, 1.0)], Relation::Ge, 4.0)
            .unwrap();
        let s = p.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut p = Problem::minimize();
        let _ = p.add_var(1.0);
        let err = p
            .add_constraint(&[(VarId(9), 1.0)], Relation::Le, 1.0)
            .unwrap_err();
        assert!(matches!(err, LpError::UnknownVariable { .. }));
    }

    #[test]
    fn non_finite_rejected() {
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        assert!(p
            .add_constraint(&[(x, f64::NAN)], Relation::Le, 1.0)
            .is_err());
        assert!(p
            .add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = Problem::minimize();
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classic degenerate example (Beale-like); Bland's rule must
        // terminate.
        let mut p = Problem::minimize();
        let x1 = p.add_var(-0.75);
        let x2 = p.add_var(150.0);
        let x3 = p.add_var(-0.02);
        let x4 = p.add_var(6.0);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0).unwrap();
        let s = p.solve().unwrap();
        assert!(
            (s.objective() - (-0.05)).abs() < 1e-6,
            "got {}",
            s.objective()
        );
    }

    #[test]
    fn solve_with_stats_matches_solve() {
        let mut p = Problem::minimize();
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 6.0).unwrap();
        let plain = p.solve().unwrap();
        let (s, stats) = p.solve_with_stats().unwrap();
        assert_eq!(s, plain);
        assert!(stats.pivots > 0, "{stats:?}");
        assert!(stats.price_recomputes > 0, "{stats:?}");
    }

    #[test]
    fn diagnosed_optimal_reports_duals_and_binding_rows() {
        // minimize 3x + 5y  s.t.  x + y >= 10,  x <= 6  ->  x=6, y=4.
        let mut p = Problem::minimize();
        let x = p.add_var(3.0);
        let y = p.add_var(5.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 6.0).unwrap();
        let out = p.solve_diagnosed(1e-7).unwrap();
        let DiagnosedOutcome::Optimal {
            solution,
            diagnostics,
        } = out
        else {
            panic!("feasible program diagnosed infeasible");
        };
        assert!((solution.objective() - 38.0).abs() < 1e-8);
        assert!(!diagnostics.infeasible);
        // Both constraints are tight at the optimum; strong duality:
        // y·b = objective (both rows in >=-canonical sense here).
        assert_eq!(diagnostics.binding, vec![true, true]);
        let dual_obj = diagnostics.duals[0] * 10.0 + diagnostics.duals[1] * 6.0;
        assert!(
            (dual_obj - 38.0).abs() < 1e-6,
            "duals {:?}",
            diagnostics.duals
        );
    }

    #[test]
    fn diagnosed_infeasible_yields_farkas_certificate() {
        // x >= 5 and x <= 3 cannot both hold; y <= 1 is innocent.
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        p.add_constraint(&[(y, 1.0)], Relation::Le, 1.0).unwrap();
        let out = p.solve_diagnosed(1e-7).unwrap();
        let DiagnosedOutcome::Infeasible(d) = out else {
            panic!("infeasible program diagnosed optimal");
        };
        assert!(d.infeasible);
        // The certificate names the incompatible pair and spares row 2.
        assert!(d.binding[0] && d.binding[1], "duals {:?}", d.duals);
        assert!(!d.binding[2], "duals {:?}", d.duals);
        // Certificate validity: yᵀA ≤ 0 on every variable while yᵀb > 0
        // (duals carry the sign convention: ≥ rows weight positively,
        // ≤ rows negatively), so Σ y_r·row_r is unsatisfiable for x ≥ 0.
        let combined_coeff = d.duals[0] + d.duals[1];
        let combined_rhs = d.duals[0] * 5.0 + d.duals[1] * 3.0;
        assert!(combined_coeff <= 1e-7, "duals {:?}", d.duals);
        assert!(combined_rhs > 1e-7, "duals {:?}", d.duals);
    }

    #[test]
    fn feasibility_checker_rejects_bad_points() {
        let mut p = Problem::minimize();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(!p.is_feasible(&[4.0], 1e-9));
        assert!(!p.is_feasible(&[-1.0], 1e-9));
        assert!(!p.is_feasible(&[2.0, 2.0], 1e-9)); // wrong arity
    }
}
