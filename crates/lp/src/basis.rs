//! Simplex bases as reusable warm-start handles.
//!
//! The sparse revised engine ([`crate::sparse`]) identifies a vertex by the
//! set of basic columns in the standard-form column space
//! `[structural | slack | artificial]`. A [`Basis`] captures that set at
//! optimality so a *structurally identical* problem — same variables, same
//! constraint rows in the same order with the same relations, only different
//! right-hand sides or capacities — can resume from the old vertex instead
//! of re-running phase 1 from scratch.
//!
//! Reuse is validated defensively (`m`/`n` signature, index range,
//! distinctness, no artificials) but the *semantic* part of the contract —
//! that column `j` means the same thing in both problems — is the caller's:
//! the scheduled-routing compiler only reuses bases across the capacity-scale
//! ladder of one candidate, where the constraint matrix is bit-identical and
//! only the right-hand side moves.

/// An optimal simplex basis, returned by [`crate::Problem::solve_warm`] and
/// accepted back as its warm-start seed.
///
/// Opaque outside the crate: the contained column indices only make sense
/// for problems with the exact constraint structure this basis came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per constraint row (row-indexed), in the standard-form
    /// column space `[structural | slack | artificial]`.
    pub(crate) cols: Vec<usize>,
    /// Structural variable count of the originating problem.
    pub(crate) num_vars: usize,
}

impl Basis {
    /// Number of constraint rows the basis covers.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// `true` when the basis shape matches a problem with `num_vars`
    /// variables and `num_rows` constraints.
    ///
    /// This is the cheap structural gate; [`crate::Problem::solve_warm`]
    /// additionally range-checks every column, rejects duplicates and
    /// artificial columns, and falls back to a cold start when the basis is
    /// singular or infeasible for the new right-hand side — so handing a
    /// stale basis to a compatible-shaped problem degrades to a cold solve,
    /// never to a wrong answer.
    pub fn matches_shape(&self, num_vars: usize, num_rows: usize) -> bool {
        self.num_vars == num_vars && self.cols.len() == num_rows
    }
}
