//! The dense two-phase simplex engine behind [`Problem::solve`].
//!
//! The tableau is a single contiguous row-major buffer ([`Tableau`]) so the
//! pivot inner loops stream linearly through memory, and each phase keeps a
//! cached reduced-cost row updated incrementally per pivot (Gauss–Jordan on
//! the objective row). Pricing is Dantzig's rule — most positive reduced
//! cost — which converges in far fewer pivots than Bland's on dense
//! instances; a run of degenerate pivots switches to Bland's rule (with
//! freshly recomputed reduced costs) until progress resumes, restoring the
//! anti-cycling guarantee. Apparent optimality is always confirmed against
//! exactly recomputed reduced costs, so cache drift cannot terminate a
//! phase early.
//!
//! [`Problem::solve`]: crate::Problem::solve

use crate::problem::{Constraint, LpError, Relation};

/// Work counters from one simplex solve, exposed via
/// [`crate::Problem::solve_with_stats`].
///
/// All fields are exact operation counts, so for a fixed problem they are
/// deterministic — the scheduled-routing compiler sums them across its
/// candidate walk and reports them as thread-count-independent metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total Gauss–Jordan pivots (both phases, plus driving leftover
    /// artificials out of the basis).
    pub pivots: u64,
    /// Pivots spent in phase 1 (artificial elimination).
    pub phase1_pivots: u64,
    /// Pivots whose ratio test was (near-)zero — degenerate steps.
    pub degenerate_pivots: u64,
    /// Times Dantzig pricing stalled and the phase fell back to Bland's
    /// rule.
    pub bland_switches: u64,
    /// Exact reduced-cost recomputations. For the dense engine these are
    /// Dantzig cache rebuilds (phase entry, optimality confirmation, Bland
    /// restarts); the sparse engine prices exactly every iteration, so
    /// there it counts BTRAN pricing passes.
    pub price_recomputes: u64,
    /// Sparse engine: fresh basis factorizations (cold/warm starts plus
    /// refactorizations). Always 0 for the dense engine.
    pub factorizations: u64,
    /// Sparse engine: mid-solve refactorizations triggered by eta-file
    /// growth.
    pub refactorizations: u64,
    /// Sparse engine: eta vectors created (factorization + pivot updates).
    pub eta_vectors: u64,
    /// Sparse engine: total nonzeros stored across all eta vectors — the
    /// fill-in the factorization paid for.
    pub eta_nonzeros: u64,
    /// Sparse engine: warm starts whose supplied basis was factorable and
    /// primal feasible for the new right-hand side (phase 1 skipped).
    pub warm_hits: u64,
    /// Sparse engine: warm starts that fell back to a cold start.
    pub warm_misses: u64,
}

impl SolveStats {
    /// Accumulates another solve's counters into this one.
    pub fn merge(&mut self, other: &SolveStats) {
        self.pivots += other.pivots;
        self.phase1_pivots += other.phase1_pivots;
        self.degenerate_pivots += other.degenerate_pivots;
        self.bland_switches += other.bland_switches;
        self.price_recomputes += other.price_recomputes;
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
        self.eta_vectors += other.eta_vectors;
        self.eta_nonzeros += other.eta_nonzeros;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
    }
}

/// Pivot tolerance: entries smaller than this are treated as zero.
const PIVOT_EPS: f64 = 1e-9;
/// Phase-1 objective values below this count as feasible.
const FEAS_EPS: f64 = 1e-7;

/// Dense row-major tableau: `m` rows of `width` columns in one allocation.
struct Tableau {
    width: usize,
    a: Vec<f64>,
}

impl Tableau {
    fn zeroed(m: usize, width: usize) -> Self {
        Tableau {
            width,
            a: vec![0.0; m * width],
        }
    }

    fn rows(&self) -> usize {
        self.a.len() / self.width
    }

    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        &self.a[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.a[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    fn get(&self, r: usize, j: usize) -> f64 {
        self.a[r * self.width + j]
    }

    /// Gauss–Jordan pivot at `(row, col)`, fused: the pivot row is copied
    /// once into `scratch` and every elimination streams `row -= factor ·
    /// scratch/p` in a single pass, with the pivot row itself normalized
    /// from the same scratch copy (one read of the cold row instead of
    /// two).
    fn pivot(&mut self, row: usize, col: usize, scratch: &mut Vec<f64>) {
        let p = self.get(row, col);
        debug_assert!(p.abs() > PIVOT_EPS, "pivot on (near-)zero element");
        let inv_p = 1.0 / p;
        scratch.clear();
        scratch.extend_from_slice(self.row(row));
        for r in 0..self.rows() {
            if r == row {
                continue;
            }
            let factor = self.get(r, col) * inv_p;
            if factor != 0.0 {
                let dst = self.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(scratch.iter()) {
                    *d -= factor * s;
                }
                dst[col] = 0.0;
            }
        }
        let dst = self.row_mut(row);
        for (d, &s) in dst.iter_mut().zip(scratch.iter()) {
            *d = s * inv_p;
        }
        dst[col] = 1.0; // kill rounding residue
    }
}

/// Solves `minimize c·x  s.t.  constraints, x ≥ 0`; returns variable values
/// and accumulates work counters into `stats`.
pub(crate) fn solve(
    costs: &[f64],
    constraints: &[Constraint],
    stats: &mut SolveStats,
) -> Result<Vec<f64>, LpError> {
    let n = costs.len();
    let m = constraints.len();
    if m == 0 {
        // With x ≥ 0 and minimization, any negative cost is unbounded;
        // otherwise the optimum is the origin.
        if costs.iter().any(|&c| c < -PIVOT_EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(vec![0.0; n]);
    }

    // --- Build the tableau -------------------------------------------------
    // Normalize every row to rhs >= 0, then append slack/surplus and
    // artificial columns. Column layout: [structural | slack | artificial].
    let mut n_slack = 0;
    let mut n_art = 0;
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for c in constraints {
        let mut dense = vec![0.0; n];
        for &(i, a) in &c.coeffs {
            dense[i] += a;
        }
        let (dense, relation, rhs) = if c.rhs < 0.0 {
            let flipped = match c.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (dense.iter().map(|a| -a).collect(), flipped, -c.rhs)
        } else {
            (dense, c.relation, c.rhs)
        };
        match relation {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
        rows.push((dense, relation, rhs));
    }

    let total = n + n_slack + n_art;
    let width = total + 1; // + rhs column
    let mut tab = Tableau::zeroed(m, width);
    let mut basis = vec![0usize; m];
    let art_start = n + n_slack;
    let mut slack_idx = n;
    let mut art_idx = art_start;

    for (r, (dense, relation, rhs)) in rows.into_iter().enumerate() {
        let row = tab.row_mut(r);
        row[..n].copy_from_slice(&dense);
        row[total] = rhs;
        match relation {
            Relation::Le => {
                row[slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                row[slack_idx] = -1.0;
                slack_idx += 1;
                row[art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                row[art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    let iter_limit = 20_000 + 100 * (m + total);
    let mut scratch = Vec::with_capacity(width);

    // --- Phase 1: minimize the sum of artificials ---------------------------
    if n_art > 0 {
        let mut c1 = vec![0.0; total];
        c1[art_start..total].fill(1.0);
        let obj = run_phase(
            &mut tab,
            &mut basis,
            &c1,
            total,
            total,
            iter_limit,
            &mut scratch,
            stats,
        )?;
        stats.phase1_pivots = stats.pivots;
        if obj > FEAS_EPS {
            return Err(LpError::Infeasible);
        }
        // Pivot any artificial still in the basis out on a structural/slack
        // column; an all-zero row is redundant and can stay (its rhs is 0).
        for (r, b) in basis.iter_mut().enumerate() {
            if *b < art_start {
                continue;
            }
            if let Some(j) = (0..art_start).find(|&j| tab.get(r, j).abs() > PIVOT_EPS) {
                tab.pivot(r, j, &mut scratch);
                stats.pivots += 1;
                *b = j;
            }
        }
    }

    // --- Phase 2: minimize the true objective ------------------------------
    // Artificial columns are frozen by restricting the entering-candidate
    // range to the first `art_start` columns.
    let mut c2 = vec![0.0; total];
    c2[..n].copy_from_slice(costs);
    run_phase(
        &mut tab,
        &mut basis,
        &c2,
        art_start,
        total,
        iter_limit,
        &mut scratch,
        stats,
    )?;

    let mut values = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            values[basis[r]] = tab.get(r, total).max(0.0);
        }
    }
    Ok(values)
}

/// Consecutive degenerate pivots tolerated under Dantzig pricing before
/// falling back to Bland's rule.
fn stall_limit(m: usize) -> usize {
    2 * m + 16
}

/// Exact reduced costs `z_j − c_j` for columns `0..allowed`.
fn reduced_costs(tab: &Tableau, basis: &[usize], costs: &[f64], allowed: usize, red: &mut [f64]) {
    red[..allowed].copy_from_slice(&costs[..allowed]);
    for v in red[..allowed].iter_mut() {
        *v = -*v;
    }
    for (r, &b) in basis.iter().enumerate() {
        let cb = costs[b];
        if cb != 0.0 {
            let row = tab.row(r);
            for (v, &a) in red[..allowed].iter_mut().zip(row[..allowed].iter()) {
                *v += cb * a;
            }
        }
    }
}

/// Runs one simplex phase minimizing `costs` over the current tableau.
///
/// Pricing is Dantzig's rule over a reduced-cost row that is updated
/// incrementally with each pivot; a degenerate stall switches to Bland's
/// rule on exact reduced costs until an improving pivot lands. Only columns
/// `< allowed` may enter the basis. Returns the objective value at
/// optimality (recomputed exactly, not from the incremental cache).
#[allow(clippy::too_many_arguments)]
fn run_phase(
    tab: &mut Tableau,
    basis: &mut [usize],
    costs: &[f64],
    allowed: usize,
    total: usize,
    iter_limit: usize,
    scratch: &mut Vec<f64>,
    stats: &mut SolveStats,
) -> Result<f64, LpError> {
    let m = basis.len();
    let mut red = vec![0.0; allowed];
    reduced_costs(tab, basis, costs, allowed, &mut red);
    stats.price_recomputes += 1;
    let mut degenerate_run = 0usize;
    let mut bland = false;

    for _ in 0..iter_limit {
        // --- Pricing ---------------------------------------------------
        let entering = if bland {
            // Bland: smallest index with positive reduced cost.
            red[..allowed].iter().position(|&v| v > FEAS_EPS)
        } else {
            // Dantzig: most positive reduced cost.
            let mut best: Option<(usize, f64)> = None;
            for (j, &v) in red[..allowed].iter().enumerate() {
                if v > FEAS_EPS && best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((j, v));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(col) = entering else {
            // Apparent optimality: confirm against exact reduced costs so
            // incremental-cache drift can never end the phase early.
            reduced_costs(tab, basis, costs, allowed, &mut red);
            stats.price_recomputes += 1;
            if red[..allowed].iter().any(|&v| v > FEAS_EPS) {
                continue;
            }
            let obj = (0..m).map(|r| costs[basis[r]] * tab.get(r, total)).sum();
            return Ok(obj);
        };

        // --- Ratio test; ties broken by smallest basic index (Bland) ---
        let mut leaving: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = tab.get(r, col);
            if a > PIVOT_EPS {
                let ratio = tab.get(r, total) / a;
                match leaving {
                    None => leaving = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - PIVOT_EPS
                            || ((ratio - lratio).abs() <= PIVOT_EPS && basis[r] < basis[lr])
                        {
                            leaving = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, ratio)) = leaving else {
            return Err(LpError::Unbounded);
        };

        tab.pivot(row, col, scratch);
        stats.pivots += 1;
        basis[row] = col;

        // Incremental objective-row update: eliminating `col` from the
        // reduced-cost row is the same Gauss–Jordan step the tableau rows
        // received (the pivot row is normalized now).
        let rc = red[col];
        if rc != 0.0 {
            let prow = tab.row(row);
            for (v, &a) in red[..allowed].iter_mut().zip(prow[..allowed].iter()) {
                *v -= rc * a;
            }
        }
        red[col] = 0.0;

        // --- Stall bookkeeping -----------------------------------------
        if ratio <= PIVOT_EPS {
            degenerate_run += 1;
            stats.degenerate_pivots += 1;
            if !bland && degenerate_run >= stall_limit(m) {
                // Cycling risk: restart pricing on exact reduced costs
                // under Bland's rule, which terminates by construction.
                bland = true;
                stats.bland_switches += 1;
                reduced_costs(tab, basis, costs, allowed, &mut red);
                stats.price_recomputes += 1;
            }
        } else {
            degenerate_run = 0;
            bland = false;
        }
    }
    Err(LpError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shadows the crate-level `solve` for tests that don't care about
    /// stats (explicit items take precedence over the glob import).
    fn solve(costs: &[f64], constraints: &[Constraint]) -> Result<Vec<f64>, LpError> {
        super::solve(costs, constraints, &mut SolveStats::default())
    }

    fn c(coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }

    #[test]
    fn no_constraints_origin_optimal() {
        let v = solve(&[1.0, 2.0], &[]).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn no_constraints_negative_cost_unbounded() {
        assert_eq!(solve(&[-1.0], &[]).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn klee_minty_small_terminates() {
        // 3-dimensional Klee–Minty cube: worst case for Dantzig pivot
        // counts, but still terminating (and tiny here).
        // maximize 4x1 + 2x2 + x3 == minimize negative.
        let cons = vec![
            c(vec![(0, 1.0)], Relation::Le, 5.0),
            c(vec![(0, 4.0), (1, 1.0)], Relation::Le, 25.0),
            c(vec![(0, 8.0), (1, 4.0), (2, 1.0)], Relation::Le, 125.0),
        ];
        let v = solve(&[-4.0, -2.0, -1.0], &cons).unwrap();
        let obj = -4.0 * v[0] - 2.0 * v[1] - v[2];
        assert!((obj - (-125.0)).abs() < 1e-6, "obj={obj}, v={v:?}");
    }

    #[test]
    fn transportation_like_equalities() {
        // Two supplies (3, 4), two demands (5, 2); minimize cost with
        // x[i][j] flattened as vars 0..4, costs [1, 4, 2, 1].
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0),
            c(vec![(2, 1.0), (3, 1.0)], Relation::Eq, 4.0),
            c(vec![(0, 1.0), (2, 1.0)], Relation::Eq, 5.0),
            c(vec![(1, 1.0), (3, 1.0)], Relation::Eq, 2.0),
        ];
        let v = solve(&[1.0, 4.0, 2.0, 1.0], &cons).unwrap();
        let obj: f64 = v.iter().zip([1.0, 4.0, 2.0, 1.0]).map(|(x, c)| x * c).sum();
        // Optimal: x00=3, x10=2, x11=2 -> 3 + 4 + 2 = 9.
        assert!((obj - 9.0).abs() < 1e-6, "obj={obj} v={v:?}");
    }

    #[test]
    fn redundant_rows_tolerated() {
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0),
            c(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 4.0), // same plane
        ];
        let v = solve(&[1.0, 1.0], &cons).unwrap();
        assert!((v[0] + v[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn beale_cycling_instance_terminates() {
        // Beale's classic degenerate LP — cycles forever under naive
        // Dantzig pricing with a fixed tie-break; the Bland fallback must
        // terminate it at the optimum (objective −1/20).
        // minimize −3/4·x1 + 150·x2 − 1/50·x3 + 6·x4
        let cons = vec![
            c(
                vec![(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
                Relation::Le,
                0.0,
            ),
            c(
                vec![(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
                Relation::Le,
                0.0,
            ),
            c(vec![(2, 1.0)], Relation::Le, 1.0),
        ];
        let mut stats = SolveStats::default();
        let v = super::solve(&[-0.75, 150.0, -0.02, 6.0], &cons, &mut stats).unwrap();
        let obj = -0.75 * v[0] + 150.0 * v[1] - 0.02 * v[2] + 6.0 * v[3];
        assert!((obj - (-0.05)).abs() < 1e-6, "obj={obj}, v={v:?}");
        // The instance is degenerate by construction; the counters must
        // have seen the pivots and at least one Bland fallback.
        assert!(stats.pivots > 0);
        assert!(stats.degenerate_pivots > 0, "{stats:?}");
        assert!(stats.bland_switches >= 1, "{stats:?}");
        assert!(stats.price_recomputes >= 2, "{stats:?}");
    }

    #[test]
    fn stats_count_phase1_and_merge() {
        // An equality system forces artificials, so phase 1 must pivot.
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0),
            c(vec![(0, 1.0), (1, -1.0)], Relation::Eq, 1.0),
        ];
        let mut stats = SolveStats::default();
        super::solve(&[1.0, 1.0], &cons, &mut stats).unwrap();
        assert!(stats.phase1_pivots > 0, "{stats:?}");
        assert!(stats.pivots >= stats.phase1_pivots);

        let mut total = SolveStats::default();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.pivots, 2 * stats.pivots);
        assert_eq!(total.price_recomputes, 2 * stats.price_recomputes);
    }

    #[test]
    fn dense_instance_matches_upper_bound_structure() {
        // A moderately sized dense covering LP whose optimum is easy to
        // sanity-check: all constraints can be met at x_j = 1, so the
        // optimum is ≤ Σc, and feasibility forces a positive objective.
        let n = 24;
        let costs: Vec<f64> = (0..n).map(|j| 1.0 + (j % 5) as f64).collect();
        let mut cons = Vec::new();
        for r in 0..n / 2 {
            let coeffs: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, 1.0 + ((r * 7 + j * 3) % 11) as f64 / 11.0))
                .collect();
            cons.push(c(coeffs, Relation::Ge, 4.0));
        }
        for j in 0..n {
            cons.push(c(vec![(j, 1.0)], Relation::Le, 1.0));
        }
        let v = solve(&costs, &cons).unwrap();
        let obj: f64 = v.iter().zip(&costs).map(|(x, c)| x * c).sum();
        assert!(obj > 0.0 && obj <= costs.iter().sum::<f64>() + 1e-9);
        // All upper bounds respected.
        assert!(v.iter().all(|&x| x <= 1.0 + 1e-7));
    }
}
