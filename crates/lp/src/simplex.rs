//! The dense two-phase simplex engine behind [`Problem::solve`].
//!
//! [`Problem::solve`]: crate::Problem::solve

use crate::problem::{Constraint, LpError, Relation};

/// Pivot tolerance: entries smaller than this are treated as zero.
const PIVOT_EPS: f64 = 1e-9;
/// Phase-1 objective values below this count as feasible.
const FEAS_EPS: f64 = 1e-7;

/// Solves `minimize c·x  s.t.  constraints, x ≥ 0`; returns variable values.
pub(crate) fn solve(costs: &[f64], constraints: &[Constraint]) -> Result<Vec<f64>, LpError> {
    let n = costs.len();
    let m = constraints.len();
    if m == 0 {
        // With x ≥ 0 and minimization, any negative cost is unbounded;
        // otherwise the optimum is the origin.
        if costs.iter().any(|&c| c < -PIVOT_EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(vec![0.0; n]);
    }

    // --- Build the tableau -------------------------------------------------
    // Normalize every row to rhs >= 0, then append slack/surplus and
    // artificial columns. Column layout: [structural | slack | artificial].
    let mut n_slack = 0;
    let mut n_art = 0;
    let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for c in constraints {
        let mut dense = vec![0.0; n];
        for &(i, a) in &c.coeffs {
            dense[i] += a;
        }
        let (dense, relation, rhs) = if c.rhs < 0.0 {
            let flipped = match c.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (dense.iter().map(|a| -a).collect(), flipped, -c.rhs)
        } else {
            (dense, c.relation, c.rhs)
        };
        match relation {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
        rows.push((dense, relation, rhs));
    }

    let total = n + n_slack + n_art;
    let width = total + 1; // + rhs column
    let mut tab = vec![vec![0.0f64; width]; m];
    let mut basis = vec![0usize; m];
    let art_start = n + n_slack;
    let mut slack_idx = n;
    let mut art_idx = art_start;

    for (r, (dense, relation, rhs)) in rows.into_iter().enumerate() {
        tab[r][..n].copy_from_slice(&dense);
        tab[r][total] = rhs;
        match relation {
            Relation::Le => {
                tab[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                tab[r][slack_idx] = -1.0;
                slack_idx += 1;
                tab[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                tab[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    let iter_limit = 20_000 + 100 * (m + total);

    // --- Phase 1: minimize the sum of artificials ---------------------------
    if n_art > 0 {
        let mut c1 = vec![0.0; total];
        for j in art_start..total {
            c1[j] = 1.0;
        }
        let obj = run_phase(&mut tab, &mut basis, &c1, total, total, iter_limit)?;
        if obj > FEAS_EPS {
            return Err(LpError::Infeasible);
        }
        // Pivot any artificial still in the basis out on a structural/slack
        // column; an all-zero row is redundant and can stay (its rhs is 0).
        for r in 0..m {
            if basis[r] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| tab[r][j].abs() > PIVOT_EPS) {
                    pivot(&mut tab, &mut basis, r, j);
                }
            }
        }
    }

    // --- Phase 2: minimize the true objective ------------------------------
    // Artificial columns are frozen by restricting the entering-candidate
    // range to the first `art_start` columns.
    let mut c2 = vec![0.0; total];
    c2[..n].copy_from_slice(costs);
    run_phase(&mut tab, &mut basis, &c2, art_start, total, iter_limit)?;

    let mut values = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            values[basis[r]] = tab[r][total].max(0.0);
        }
    }
    Ok(values)
}

/// Runs Bland's-rule simplex minimizing `costs` over the current tableau.
///
/// Only columns `< allowed` may enter the basis. Returns the objective value
/// at optimality.
fn run_phase(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    allowed: usize,
    total: usize,
    iter_limit: usize,
) -> Result<f64, LpError> {
    let m = tab.len();
    for _ in 0..iter_limit {
        // Reduced costs: z_j - c_j = Σ_i c_B[i]·a[i][j] − c_j.
        // Bland's rule: the entering column is the *smallest index* with a
        // positive reduced cost (improving for minimization).
        let mut entering = None;
        for j in 0..allowed {
            let mut zj = 0.0;
            for r in 0..m {
                let cb = costs[basis[r]];
                if cb != 0.0 {
                    zj += cb * tab[r][j];
                }
            }
            if zj - costs[j] > FEAS_EPS {
                entering = Some(j);
                break;
            }
        }
        let Some(col) = entering else {
            let obj = (0..m).map(|r| costs[basis[r]] * tab[r][total]).sum();
            return Ok(obj);
        };
        // Ratio test; ties broken by smallest basic-variable index (Bland).
        let mut leaving: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = tab[r][col];
            if a > PIVOT_EPS {
                let ratio = tab[r][total] / a;
                match leaving {
                    None => leaving = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - PIVOT_EPS
                            || ((ratio - lratio).abs() <= PIVOT_EPS && basis[r] < basis[lr])
                        {
                            leaving = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, _)) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivot(tab, basis, row, col);
    }
    Err(LpError::IterationLimit)
}

/// Performs a Gauss–Jordan pivot at `(row, col)` and updates the basis.
fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let width = tab[row].len();
    let p = tab[row][col];
    debug_assert!(p.abs() > PIVOT_EPS, "pivot on (near-)zero element");
    for j in 0..width {
        tab[row][j] /= p;
    }
    tab[row][col] = 1.0; // kill rounding residue
    for r in 0..tab.len() {
        if r == row {
            continue;
        }
        let factor = tab[r][col];
        if factor.abs() > 0.0 {
            for j in 0..width {
                tab[r][j] -= factor * tab[row][j];
            }
            tab[r][col] = 0.0;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }

    #[test]
    fn no_constraints_origin_optimal() {
        let v = solve(&[1.0, 2.0], &[]).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn no_constraints_negative_cost_unbounded() {
        assert_eq!(solve(&[-1.0], &[]).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn klee_minty_small_terminates() {
        // 3-dimensional Klee–Minty cube: worst case for Dantzig, fine for
        // Bland (just slower). maximize 4x1 + 2x2 + x3 == minimize negative.
        let cons = vec![
            c(vec![(0, 1.0)], Relation::Le, 5.0),
            c(vec![(0, 4.0), (1, 1.0)], Relation::Le, 25.0),
            c(vec![(0, 8.0), (1, 4.0), (2, 1.0)], Relation::Le, 125.0),
        ];
        let v = solve(&[-4.0, -2.0, -1.0], &cons).unwrap();
        let obj = -4.0 * v[0] - 2.0 * v[1] - v[2];
        assert!((obj - (-125.0)).abs() < 1e-6, "obj={obj}, v={v:?}");
    }

    #[test]
    fn transportation_like_equalities() {
        // Two supplies (3, 4), two demands (5, 2); minimize cost with
        // x[i][j] flattened as vars 0..4, costs [1, 4, 2, 1].
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 3.0),
            c(vec![(2, 1.0), (3, 1.0)], Relation::Eq, 4.0),
            c(vec![(0, 1.0), (2, 1.0)], Relation::Eq, 5.0),
            c(vec![(1, 1.0), (3, 1.0)], Relation::Eq, 2.0),
        ];
        let v = solve(&[1.0, 4.0, 2.0, 1.0], &cons).unwrap();
        let obj: f64 = v.iter().zip([1.0, 4.0, 2.0, 1.0]).map(|(x, c)| x * c).sum();
        // Optimal: x00=3, x10=2, x11=2 -> 3 + 4 + 2 = 9.
        assert!((obj - 9.0).abs() < 1e-6, "obj={obj} v={v:?}");
    }

    #[test]
    fn redundant_rows_tolerated() {
        let cons = vec![
            c(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 2.0),
            c(vec![(0, 2.0), (1, 2.0)], Relation::Eq, 4.0), // same plane
        ];
        let v = solve(&[1.0, 1.0], &cons).unwrap();
        assert!((v[0] + v[1] - 2.0).abs() < 1e-7);
    }
}
