//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs with a *known feasible point* by construction, so
//! solver claims can be validated against ground truth:
//!
//! * if the solver returns a solution, it must satisfy every constraint;
//! * the solver must never report `Infeasible` for a program built around a
//!   known feasible point;
//! * adding a redundant constraint never changes feasibility;
//! * the reported objective must never exceed the known point's objective
//!   (minimization).

use proptest::prelude::*;
use sr_lp::{LpEngine, LpError, Problem, Relation, VarId};

#[derive(Debug, Clone)]
struct KnownFeasible {
    costs: Vec<f64>,
    point: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

fn known_feasible() -> impl Strategy<Value = KnownFeasible> {
    let dims = 1usize..5;
    dims.prop_flat_map(|n| {
        let costs = prop::collection::vec(-5.0f64..5.0, n);
        let point = prop::collection::vec(0.0f64..10.0, n);
        let rows = prop::collection::vec(
            (
                prop::collection::vec(-3.0f64..3.0, n),
                prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
                0.0f64..4.0, // slack margin
            ),
            1..6,
        );
        (costs, point, rows).prop_map(|(costs, point, rows)| {
            let rows = rows
                .into_iter()
                .map(|(coeffs, rel, margin)| {
                    let lhs: f64 = coeffs.iter().zip(&point).map(|(a, x)| a * x).sum();
                    let rhs = match rel {
                        Relation::Le => lhs + margin,
                        Relation::Ge => lhs - margin,
                        Relation::Eq => lhs,
                    };
                    (coeffs, rel, rhs)
                })
                .collect();
            KnownFeasible { costs, point, rows }
        })
    })
}

fn build(kf: &KnownFeasible, extra_bound: bool) -> Problem {
    let mut p = Problem::minimize();
    let vars: Vec<VarId> = kf.costs.iter().map(|&c| p.add_var(c)).collect();
    for (coeffs, rel, rhs) in &kf.rows {
        let terms: Vec<(VarId, f64)> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, *rel, *rhs)
            .expect("valid constraint");
    }
    if extra_bound {
        // Box the region so the program cannot be unbounded; the known point
        // (each coordinate < 10) stays feasible.
        for &v in &vars {
            p.add_constraint(&[(v, 1.0)], Relation::Le, 10.0)
                .expect("valid bound");
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solutions_are_feasible_and_no_worse_than_witness(kf in known_feasible()) {
        let p = build(&kf, true);
        match p.solve() {
            Ok(sol) => {
                prop_assert!(p.is_feasible(sol.values(), 1e-5),
                    "solver returned infeasible point {:?}", sol.values());
                let witness_obj: f64 =
                    kf.costs.iter().zip(&kf.point).map(|(c, x)| c * x).sum();
                prop_assert!(sol.objective() <= witness_obj + 1e-5,
                    "objective {} worse than witness {witness_obj}", sol.objective());
            }
            Err(LpError::Infeasible) => {
                prop_assert!(false, "reported infeasible despite witness {:?}", kf.point);
            }
            Err(LpError::Unbounded) => {
                prop_assert!(false, "boxed program reported unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn unboxed_never_reports_infeasible(kf in known_feasible()) {
        let p = build(&kf, false);
        match p.solve() {
            Ok(sol) => prop_assert!(p.is_feasible(sol.values(), 1e-5)),
            Err(LpError::Unbounded) => {} // legitimately unbounded without the box
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The dense tableau and the sparse revised engine share their pivot
    /// rules, so they must agree on feasibility status, produce feasible
    /// points, and reach objectives equal to within accumulated rounding
    /// (the 1e-9 differential-oracle contract).
    #[test]
    fn dense_and_sparse_engines_agree(kf in known_feasible()) {
        let p = build(&kf, true);
        match (p.solve_with_engine(LpEngine::Dense), p.solve_with_engine(LpEngine::Sparse)) {
            (Ok((d, _)), Ok((s, _))) => {
                prop_assert!(p.is_feasible(d.values(), 1e-5),
                    "dense point infeasible: {:?}", d.values());
                prop_assert!(p.is_feasible(s.values(), 1e-5),
                    "sparse point infeasible: {:?}", s.values());
                let tol = 1e-9 * (1.0 + d.objective().abs());
                prop_assert!((d.objective() - s.objective()).abs() <= tol,
                    "objectives diverged: dense {} vs sparse {}",
                    d.objective(), s.objective());
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            (a, b) => prop_assert!(false, "engine status diverged: {a:?} vs {b:?}"),
        }
    }

    /// A warm start from any structurally valid basis must degrade to a
    /// correct solve, never a wrong answer: same status as cold, feasible
    /// point, same objective to within rounding.
    #[test]
    fn warm_start_agrees_with_cold(kf in known_feasible()) {
        let p = build(&kf, true);
        let Ok((cold_sol, cold_basis, _)) = p.solve_warm(None) else { return Ok(()); };
        let Some(basis) = cold_basis else { return Ok(()); };
        let (warm_sol, _, warm_stats) = p.solve_warm(Some(&basis)).expect("cold-solvable");
        prop_assert!(p.is_feasible(warm_sol.values(), 1e-5));
        let tol = 1e-9 * (1.0 + cold_sol.objective().abs());
        prop_assert!((warm_sol.objective() - cold_sol.objective()).abs() <= tol,
            "warm objective {} vs cold {}", warm_sol.objective(), cold_sol.objective());
        prop_assert_eq!(warm_stats.warm_hits + warm_stats.warm_misses, 1);
    }

    #[test]
    fn duplicate_constraints_preserve_result(kf in known_feasible()) {
        let p1 = build(&kf, true);
        let mut p2 = build(&kf, true);
        // Re-add the first row verbatim: redundant, must not change status.
        let (coeffs, rel, rhs) = &kf.rows[0];
        let terms: Vec<(VarId, f64)> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &a)| (VarId::new(i), a))
            .collect();
        p2.add_constraint(&terms, *rel, *rhs).expect("valid");
        match (p1.solve(), p2.solve()) {
            (Ok(a), Ok(b)) => prop_assert!((a.objective() - b.objective()).abs() < 1e-5),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            (a, b) => prop_assert!(false, "status diverged: {a:?} vs {b:?}"),
        }
    }
}
