//! Microbenchmark of the min-cost-flow allocation kernels.
//!
//! The instance is the real allocation stage of the tiled-DVB scaling
//! workload: dimension-order paths on the N×N torus, LongestTask windows
//! at load 0.5, and the compile pipeline's own related-subset
//! decomposition. Two kernels solve the identical subset networks:
//!
//! * `alloc_flow/dijkstra/N` — the production kernel: binary-heap
//!   Dijkstra over reduced costs with node potentials, potentials
//!   updated (not recomputed) after each augmentation.
//! * `alloc_flow/bellman_ford/N` — the differential oracle kept behind
//!   `FlowKernel::BellmanFordOracle`: the pre-rewrite O(V·E)
//!   per-augmentation kernel.
//!
//! Both produce bit-identical allocations (asserted here, not just in
//! the proptest), so the ratio is pure kernel speed. A third group pins
//! the workspace-reuse effect the compile search and serve admission
//! ladders rely on: `workspace_cold` constructs a fresh
//! [`FlowWorkspace`] per solve, `workspace_warm` reuses one across
//! solves, the `AllocBasisCache` pattern.
//!
//! Run with `CRITERION_JSON=BENCH_alloc_flow.json cargo bench --bench
//! alloc_flow` to capture machine-readable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::core::{
    allocate_intervals_flow_with_kernel, related_subsets, ActivityMatrix, AllocationStats,
    FlowAllocStats, FlowKernel, FlowWorkspace, Intervals, PathAssignment,
};
use sr::tfg::{assign_time_bounds, MessageId, TimeBounds, WindowPolicy};
use sr_bench::{scale_workload, ALLOC_SEED};
use std::hint::black_box;

/// Torus extents swept by the benchmark (1024, 4096, 16384 nodes).
const EXTENTS: &[usize] = &[32, 64, 128];

struct Instance {
    pa: PathAssignment,
    bounds: TimeBounds,
    intervals: Intervals,
    activity: ActivityMatrix,
    subsets: Vec<Vec<MessageId>>,
}

fn instance(n: usize) -> Instance {
    let (platform, tfg, alloc, timing) = scale_workload(n, 256.0, ALLOC_SEED);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / 0.5;
    let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask)
        .expect("scale windows fit");
    let intervals = Intervals::from_bounds(&bounds);
    let activity = ActivityMatrix::new(&bounds, &intervals);
    let pa = PathAssignment::lsd_to_msd(&tfg, topo, &alloc);
    let subsets = related_subsets(&pa, &activity);
    Instance {
        pa,
        bounds,
        intervals,
        activity,
        subsets,
    }
}

fn solve(inst: &Instance, kernel: FlowKernel, ws: &mut FlowWorkspace) -> Vec<u64> {
    let mut stats = FlowAllocStats::default();
    let mut lp = AllocationStats::default();
    let alloc = allocate_intervals_flow_with_kernel(
        &inst.pa,
        &inst.bounds,
        &inst.activity,
        &inst.intervals,
        &inst.subsets,
        1.0,
        kernel,
        ws,
        &mut stats,
        &mut lp,
    )
    .expect("scale allocation is feasible");
    assert_eq!(stats.fallbacks, 0, "kernel bench must not hit the LP");
    // Cheap digest for the cross-kernel identity assertion.
    let mut bits = Vec::with_capacity(inst.pa.len() * inst.intervals.len());
    for m in 0..inst.pa.len() {
        for k in 0..inst.intervals.len() {
            bits.push(alloc.allocated(MessageId(m), k).to_bits());
        }
    }
    bits
}

fn bench_alloc_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_flow");
    g.sample_size(10);
    for &n in EXTENTS {
        let inst = instance(n);
        let mut ws = FlowWorkspace::new();
        // The two kernels must agree bit for bit on what they are timed on.
        assert_eq!(
            solve(&inst, FlowKernel::SspDijkstra, &mut ws),
            solve(&inst, FlowKernel::BellmanFordOracle, &mut ws),
            "kernels diverged at {n}x{n}"
        );
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| black_box(solve(&inst, FlowKernel::SspDijkstra, &mut ws)))
        });
        g.bench_with_input(BenchmarkId::new("bellman_ford", n), &n, |b, _| {
            b.iter(|| black_box(solve(&inst, FlowKernel::BellmanFordOracle, &mut ws)))
        });
    }
    g.finish();

    // Workspace reuse at the 4096-node point: cold constructs per solve
    // (what a naive caller would do), warm reuses one workspace across
    // solves (what the compile ladder, repair, and serve admission do).
    let mut g = c.benchmark_group("alloc_flow_workspace");
    g.sample_size(10);
    let inst = instance(64);
    g.bench_function("cold_64", |b| {
        b.iter(|| {
            let mut ws = FlowWorkspace::new();
            black_box(solve(&inst, FlowKernel::SspDijkstra, &mut ws))
        })
    });
    let mut ws = FlowWorkspace::new();
    g.bench_function("warm_64", |b| {
        b.iter(|| black_box(solve(&inst, FlowKernel::SspDijkstra, &mut ws)))
    });
    g.finish();
}

criterion_group!(benches, bench_alloc_flow);
criterion_main!(benches);
