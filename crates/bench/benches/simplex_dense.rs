//! Microbenchmarks of the simplex kernels.
//!
//! Two instance families, both generated deterministically (splitmix64) so
//! before/after numbers compare the same pivots:
//!
//! * `simplex_dense/covering`: synthetic covering LPs whose tableaus are
//!   fully dense — the shape that stresses the dense engine's pivot inner
//!   loop (every row touched, every column updated).
//! * `simplex_alloc/{dense,sparse_cold,sparse_warm}`: allocation-shaped
//!   feasibility LPs mirroring the compile pipeline's message–interval
//!   allocation subsets — one equality row per message plus sparse
//!   capacity rows — solved by the dense engine, the sparse revised engine
//!   cold, and the sparse engine warm-started from the optimal basis of
//!   the neighboring capacity rung (the compile walk's reuse pattern).
//!
//! Run with `CRITERION_JSON=BENCH_simplex.json cargo bench --bench
//! simplex_dense` to capture machine-readable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::lp::{LpEngine, Problem, Relation};
use std::hint::black_box;

/// Deterministic coefficient stream.
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds an `n`-variable dense covering LP with `n/2` `≥` rows and `n`
/// upper-bound rows.
fn dense_instance(n: usize) -> Problem {
    let mut rng = SplitMix(0xC0FF_EE00 ^ n as u64);
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..n).map(|_| p.add_var(0.5 + rng.next_f64())).collect();
    for _ in 0..n / 2 {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 0.1 + rng.next_f64())).collect();
        p.add_constraint(&terms, Relation::Ge, 1.0 + 3.0 * rng.next_f64())
            .unwrap();
    }
    for &v in &vars {
        p.add_constraint(&[(v, 1.0)], Relation::Le, 2.0 + rng.next_f64())
            .unwrap();
    }
    p
}

/// Builds an allocation-shaped feasibility LP over `msgs` messages: one
/// variable per (message, active interval), one equality row per message
/// spreading its demand over its active run, and one `≤` capacity row per
/// (link, interval) coupling the messages routed through that link —
/// every variable appears in one equality and a handful of capacity rows,
/// exactly the sparsity pattern of the compile pipeline's subset LPs.
/// `capacity_scale` shrinks the capacity rows the way the compile walk's
/// ladder does; capacities are sized so `0.9` is still feasible.
fn allocation_instance(msgs: usize, capacity_scale: f64) -> Problem {
    const K: usize = 8; // intervals
    const L: usize = 16; // links
    let mut rng = SplitMix(0xA110_C8ED ^ msgs as u64);
    let mut p = Problem::minimize();

    // Per-message shape: an active run of 2–4 intervals, 2–3 links, a
    // demand in [0.5, 1.5). Feasibility LP, so costs are zero.
    let mut vars = Vec::with_capacity(msgs);
    let mut demand = Vec::with_capacity(msgs);
    let mut actives = Vec::with_capacity(msgs);
    let mut links = Vec::with_capacity(msgs);
    for _ in 0..msgs {
        let len = 2 + (rng.next_f64() * 3.0) as usize;
        let start = (rng.next_f64() * (K - len) as f64) as usize;
        let ks: Vec<usize> = (start..start + len).collect();
        let nl = 2 + (rng.next_f64() * 2.0) as usize;
        let ls: Vec<usize> = (0..nl)
            .map(|_| (rng.next_f64() * L as f64) as usize)
            .collect();
        vars.push(ks.iter().map(|_| p.add_var(0.0)).collect::<Vec<_>>());
        demand.push(0.5 + rng.next_f64());
        actives.push(ks);
        links.push(ls);
    }
    for m in 0..msgs {
        let terms: Vec<_> = vars[m].iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Eq, demand[m]).unwrap();
    }
    // Capacity rows: messages sharing a (link, interval) cell compete for
    // it; the even spread (demand/|run| per interval) is feasible at 1.2×
    // headroom, so both the 1.0 and 0.9 rungs admit a solution.
    for l in 0..L {
        for k in 0..K {
            let mut terms = Vec::new();
            let mut even = 0.0;
            for m in 0..msgs {
                if !links[m].contains(&l) {
                    continue;
                }
                if let Some(pos) = actives[m].iter().position(|&a| a == k) {
                    terms.push((vars[m][pos], 1.0));
                    even += demand[m] / actives[m].len() as f64;
                }
            }
            if terms.len() > 1 {
                p.add_constraint(&terms, Relation::Le, capacity_scale * 1.2 * even)
                    .unwrap();
            }
        }
    }
    p
}

fn bench_simplex_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_dense");
    g.sample_size(10);
    for n in [16usize, 48, 96, 160] {
        g.bench_with_input(BenchmarkId::new("covering", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    dense_instance(n)
                        .solve_with_engine(LpEngine::Dense)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_simplex_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_alloc");
    g.sample_size(10);
    for msgs in [24usize, 48, 96] {
        let rung = allocation_instance(msgs, 0.9);
        g.bench_with_input(BenchmarkId::new("dense", msgs), &msgs, |b, _| {
            b.iter(|| black_box(rung.solve_with_engine(LpEngine::Dense).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("sparse_cold", msgs), &msgs, |b, _| {
            b.iter(|| black_box(rung.solve_with_engine(LpEngine::Sparse).unwrap()))
        });
        // Warm *hit* path: re-solve from the rung's own optimal basis —
        // one factorization plus one optimality-proving pricing pass, no
        // phase 1. This is what the compile walk pays when a cached basis
        // is still primal feasible; a miss degrades to `sparse_cold` plus
        // the probe factorization.
        let (_, basis, _) = rung.solve_warm(None).unwrap();
        let basis = basis.expect("allocation instances end artificial-free");
        g.bench_with_input(BenchmarkId::new("sparse_warm", msgs), &msgs, |b, _| {
            b.iter(|| black_box(rung.solve_warm(Some(&basis)).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simplex_dense, bench_simplex_alloc);
criterion_main!(benches);
