//! Microbenchmark of the dense simplex kernel on synthetic covering LPs
//! whose tableaus are fully dense — the shape that stresses the pivot
//! inner loop (every row touched, every column updated).
//!
//! Instances are generated deterministically (splitmix64) so before/after
//! numbers compare the same pivots. Each instance minimizes a positive
//! cost over `m` dense `≥` covering rows plus per-variable upper bounds,
//! which is feasible and bounded by construction.
//!
//! Run with `cargo bench --bench simplex_dense`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::lp::{Problem, Relation};
use std::hint::black_box;

/// Deterministic coefficient stream.
struct SplitMix(u64);

impl SplitMix {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds an `n`-variable dense covering LP with `n/2` `≥` rows and `n`
/// upper-bound rows.
fn dense_instance(n: usize) -> Problem {
    let mut rng = SplitMix(0xC0FF_EE00 ^ n as u64);
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..n).map(|_| p.add_var(0.5 + rng.next_f64())).collect();
    for _ in 0..n / 2 {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 0.1 + rng.next_f64())).collect();
        p.add_constraint(&terms, Relation::Ge, 1.0 + 3.0 * rng.next_f64())
            .unwrap();
    }
    for &v in &vars {
        p.add_constraint(&[(v, 1.0)], Relation::Le, 2.0 + rng.next_f64())
            .unwrap();
    }
    p
}

fn bench_simplex_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_dense");
    g.sample_size(10);
    for n in [16usize, 48, 96, 160] {
        g.bench_with_input(BenchmarkId::new("covering", n), &n, |b, &n| {
            b.iter(|| black_box(dense_instance(n).solve().unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simplex_dense);
criterion_main!(benches);
