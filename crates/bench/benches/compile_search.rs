//! End-to-end benchmark of the scheduled-routing compiler's feedback
//! search: the retry loop over `(path seed, capacity scale)` candidates
//! that [`sr::compile`] walks until a schedulable configuration is found.
//!
//! The workload is the standard DVB task set on a 16-node 4×4 torus. Loads
//! are chosen so the sweep covers both the easy regime (first candidate
//! succeeds; measures fixed pipeline cost) and the contended regime near
//! the feasibility boundary (several candidates are evaluated; this is
//! where the parallel search pays off).
//!
//! Run with `CRITERION_JSON=BENCH_compile.json cargo bench --bench
//! compile_search` to capture machine-readable numbers. Set
//! `SR_METRICS_JSON=<path>` to additionally write the compile pipeline's
//! observability counters (LP pivots, candidates walked, …) per load point
//! — the companion artifact to the timing numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::obs::MetricsRecorder;
use sr::prelude::*;
use sr_bench::{standard_workload, Platform};
use std::hint::black_box;

/// Loads (τ_c/τ_in) swept by the benchmark. 0.5 compiles on the first
/// candidate; the higher points force the feedback loops to iterate (the
/// capacity scale drops to 0.8 before an interval schedule exists).
const LOADS: &[f64] = &[0.5, 0.85, 0.95];

fn bench_compile_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_search");
    g.sample_size(10);
    let platform = Platform::torus4x4(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let tau_c = timing.longest_task(&tfg);
    let topo = platform.topo.as_ref();

    for &load in LOADS {
        let period = tau_c / load;
        for (label, parallelism) in [("serial", 1usize), ("parallel", 0usize)] {
            let config = CompileConfig {
                parallelism,
                ..CompileConfig::default()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("torus4x4_dvb_{label}"), load),
                &period,
                |b, &period| {
                    b.iter(|| {
                        black_box(compile(topo, &tfg, &alloc, &timing, period, &config).unwrap())
                    })
                },
            );
        }
        // Serial again, but with a live MetricsRecorder: the difference to
        // `serial` is the recording overhead (`serial` itself goes through
        // the no-op recorder, so `serial` vs older baselines bounds the
        // no-op overhead).
        let config = CompileConfig {
            parallelism: 1,
            ..CompileConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::new("torus4x4_dvb_recorded", load),
            &period,
            |b, &period| {
                b.iter(|| {
                    let rec = MetricsRecorder::new();
                    black_box(
                        compile_with_recorder(topo, &tfg, &alloc, &timing, period, &config, &rec)
                            .unwrap(),
                    );
                    black_box(rec)
                })
            },
        );
    }
    g.finish();

    // Companion metrics artifact: one instrumented serial compile per load,
    // written when SR_METRICS_JSON names a destination.
    if let Ok(path) = std::env::var("SR_METRICS_JSON") {
        let config = CompileConfig {
            parallelism: 1,
            ..CompileConfig::default()
        };
        let mut entries = Vec::new();
        for &load in LOADS {
            let rec = MetricsRecorder::new();
            compile_with_recorder(topo, &tfg, &alloc, &timing, tau_c / load, &config, &rec)
                .expect("benchmark loads compile");
            entries.push(format!("\"{load}\":{}", rec.metrics_json()));
        }
        let json = format!(
            "{{\"bench\":\"compile_search\",\"workload\":\"torus4x4_dvb\",\"loads\":{{{}}}}}",
            entries.join(",")
        );
        std::fs::write(&path, json).expect("SR_METRICS_JSON path is writable");
        eprintln!("wrote compile metrics to {path}");
    }
}

criterion_group!(benches, bench_compile_search);
criterion_main!(benches);
