//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! allocation strategy, window policy, guard time, virtual channels, and
//! the alternative-path cap of `AssignPaths`.
//!
//! Each benchmark measures the end-to-end cost of the configuration; the
//! *qualitative* effect of each knob is asserted by the test suite and
//! printed by `figures ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::core::AssignPathsConfig;
use sr::prelude::*;
use sr_bench::{standard_workload, Platform};
use std::hint::black_box;

fn bench_allocation_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_allocation");
    g.sample_size(10);
    let platform = Platform::cube6(128.0);
    let (tfg, _, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / 0.8;
    let strategies: Vec<(&str, Allocation)> = vec![
        ("greedy", sr::mapping::greedy(&tfg, topo)),
        (
            "scatter",
            sr::mapping::random_distinct(&tfg, topo, 7).expect("fits"),
        ),
        ("roundrobin", sr::mapping::round_robin(&tfg, topo)),
    ];
    for (name, alloc) in strategies {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(compile(
                    topo,
                    &tfg,
                    &alloc,
                    &timing,
                    period,
                    &CompileConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_window_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_window_policy");
    g.sample_size(10);
    let platform = Platform::cube6(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) * 2.0;
    for (name, policy) in [
        ("longest_task", WindowPolicy::LongestTask),
        ("full_period", WindowPolicy::FullPeriod),
        ("tight", WindowPolicy::Tight),
    ] {
        let config = CompileConfig {
            window_policy: policy,
            ..CompileConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(compile(topo, &tfg, &alloc, &timing, period, &config)))
        });
    }
    g.finish();
}

fn bench_guard_times(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_guard_time");
    g.sample_size(10);
    let platform = Platform::cube6(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) * 2.0;
    for guard in [0.0f64, 1.0, 4.0] {
        let config = CompileConfig {
            guard_time: guard,
            ..CompileConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(guard), &guard, |b, _| {
            b.iter(|| black_box(compile(topo, &tfg, &alloc, &timing, period, &config)))
        });
    }
    g.finish();
}

fn bench_virtual_channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_virtual_channels");
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let cfg = SimConfig {
        invocations: 40,
        warmup: 8,
    };
    for vc in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(vc), &vc, |b, &vc| {
            let sim = WormholeSim::new(topo, &tfg, &alloc, &timing)
                .unwrap()
                .with_virtual_channels(vc)
                .unwrap();
            b.iter(|| black_box(sim.run(62.5, &cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_path_caps(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_path_cap");
    g.sample_size(10);
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / 0.6;
    for cap in [1usize, 8, 64] {
        let config = CompileConfig {
            assign_paths: AssignPathsConfig {
                path_cap: cap,
                ..AssignPathsConfig::default()
            },
            ..CompileConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| black_box(compile(topo, &tfg, &alloc, &timing, period, &config)))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_allocation_strategies,
    bench_window_policies,
    bench_guard_times,
    bench_virtual_channels,
    bench_path_caps
);
criterion_main!(ablations);
