//! Benchmark of incremental schedule repair vs recompiling from scratch.
//!
//! The workload is the standard DVB task set on a 16-node 4×4 torus at load
//! 0.5 (the easy compile regime, so the recompile column measures the fixed
//! pipeline cost rather than feedback-search luck). For `k = 1..3` failed
//! links the bench times [`sr::fault::repair`] — re-route affected messages
//! only, with every unaffected allocation row pinned — against a full
//! [`sr::core::compile`] on the masked topology. Repair should win by an
//! order of magnitude: it skips time-bound assignment, interval
//! construction, and the whole feedback search, and its LP only carries the
//! affected rows.
//!
//! Run with `CRITERION_JSON=BENCH_fault.json cargo bench --bench
//! fault_repair` to capture machine-readable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::prelude::*;
use sr::tfg::MessageId;
use sr_bench::{standard_workload, Platform};
use std::collections::BTreeSet;
use std::hint::black_box;

/// Failed-link counts swept by the benchmark.
const KS: &[usize] = &[1, 2, 3];

fn bench_fault_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_repair");
    g.sample_size(10);
    let platform = Platform::torus4x4(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / 0.5;
    let config = CompileConfig {
        parallelism: 1,
        ..CompileConfig::default()
    };
    let sched = compile(topo, &tfg, &alloc, &timing, period, &config).unwrap();

    // Fail links that actually carry scheduled traffic (spread across the
    // used-link list), so every point measures a real repair rather than
    // the unchanged fast path.
    let used: Vec<LinkId> = (0..tfg.num_messages())
        .map(MessageId)
        .flat_map(|m| sched.assignment().links(m).iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    for &k in KS {
        let mut faults = FaultSet::new();
        for i in 0..k {
            faults = faults.fail_link(used[i * used.len() / k]);
        }
        g.bench_with_input(
            BenchmarkId::new("torus4x4_dvb_repair", k),
            &faults,
            |b, faults| {
                b.iter(|| {
                    black_box(repair(
                        &sched,
                        topo,
                        &tfg,
                        &timing,
                        faults,
                        &RepairConfig::default(),
                    ))
                })
            },
        );
        let masked = MaskedTopology::new(topo, faults.clone());
        g.bench_with_input(
            BenchmarkId::new("torus4x4_dvb_recompile", k),
            &period,
            |b, &period| {
                b.iter(|| black_box(compile(&masked, &tfg, &alloc, &timing, period, &config).ok()))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fault_repair);
criterion_main!(benches);
