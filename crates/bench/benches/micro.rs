//! Microbenchmarks of the individual algorithms behind the figures:
//! path enumeration, the simplex solver, `AssignPaths`, the wormhole engine,
//! and the end-to-end scheduled-routing compiler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr::core::{assign_paths, ActivityMatrix, AssignPathsConfig, Intervals};
use sr::lp::{Problem, Relation};
use sr::prelude::*;
use sr_bench::{standard_workload, Platform};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    let cube = GeneralizedHypercube::binary(6).unwrap();
    let torus = Torus::new(&[8, 8]).unwrap();
    g.bench_function("cube6_shortest_paths_antipodal_cap64", |b| {
        b.iter(|| black_box(cube.shortest_paths(NodeId(0), NodeId(63), 64)))
    });
    g.bench_function("torus8x8_shortest_paths_diag_cap64", |b| {
        b.iter(|| black_box(torus.shortest_paths(NodeId(0), NodeId(27), 64)))
    });
    g.bench_function("cube6_dimension_order_all_pairs", |b| {
        b.iter(|| {
            for s in 0..64 {
                for d in 0..64 {
                    black_box(cube.dimension_order_path(NodeId(s), NodeId(d)));
                }
            }
        })
    });
    g.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex");
    for n in [10usize, 40, 120] {
        g.bench_with_input(BenchmarkId::new("assignment_lp", n), &n, |b, &n| {
            b.iter(|| {
                // A transportation-style LP with n variables.
                let mut p = Problem::minimize();
                let vars: Vec<_> = (0..n).map(|i| p.add_var((i % 7) as f64 + 1.0)).collect();
                for chunk in vars.chunks(4) {
                    let terms: Vec<_> = chunk.iter().map(|&v| (v, 1.0)).collect();
                    p.add_constraint(&terms, Relation::Ge, 2.0).unwrap();
                }
                for &v in &vars {
                    p.add_constraint(&[(v, 1.0)], Relation::Le, 3.0).unwrap();
                }
                black_box(p.solve().unwrap())
            })
        });
    }
    g.finish();
}

fn bench_assign_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("assign_paths");
    g.sample_size(10);
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let bounds = assign_time_bounds(&tfg, &timing, 100.0, WindowPolicy::LongestTask).unwrap();
    let intervals = Intervals::from_bounds(&bounds);
    let activity = ActivityMatrix::new(&bounds, &intervals);
    g.bench_function("dvb8_cube6", |b| {
        b.iter(|| {
            black_box(assign_paths(
                &tfg,
                topo,
                &alloc,
                &bounds,
                &intervals,
                &activity,
                &AssignPathsConfig::default(),
            ))
        })
    });
    g.finish();
}

fn bench_wormhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("wormhole_engine");
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let sim = WormholeSim::new(topo, &tfg, &alloc, &timing).unwrap();
    for invocations in [30usize, 120] {
        g.bench_with_input(
            BenchmarkId::new("dvb8_cube6", invocations),
            &invocations,
            |b, &n| {
                let cfg = SimConfig {
                    invocations: n,
                    warmup: 5,
                };
                b.iter(|| black_box(sim.run(60.0, &cfg).unwrap()))
            },
        );
    }
    g.finish();
}

/// Event-sink overhead on the wormhole engine, same methodology as the
/// recorder gate: the `dvb8_cube6` rows above run through `run()` (the
/// `NO_EVENTS` sink — a single cached-bool branch per emission site); these
/// rows run the identical simulation with a live `RingEventSink` so
/// EXPERIMENTS.md can gate the disabled-path delta at ≤ 2%.
fn bench_event_sink(c: &mut Criterion) {
    let mut g = c.benchmark_group("wormhole_events");
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let sim = WormholeSim::new(topo, &tfg, &alloc, &timing).unwrap();
    let cap: usize = sim.routes().iter().map(|r| 2 + 3 * r.len()).sum::<usize>() + 1;
    for invocations in [30usize, 120] {
        let cfg = SimConfig {
            invocations,
            warmup: 5,
        };
        g.bench_with_input(
            BenchmarkId::new("dvb8_cube6_ring", invocations),
            &invocations,
            |b, &n| {
                b.iter(|| {
                    let sink = RingEventSink::with_capacity(cap * n + 1024);
                    black_box(sim.run_with_events(60.0, &cfg, &sink).unwrap());
                    black_box(sink)
                })
            },
        );
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("sr_compile");
    g.sample_size(10);
    for (label, platform) in [
        ("cube6_b128", Platform::cube6(128.0)),
        ("torus444_b128", Platform::torus444(128.0)),
    ] {
        let (tfg, alloc, timing) = standard_workload(&platform);
        let period = timing.longest_task(&tfg) / 0.8;
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    compile(
                        platform.topo.as_ref(),
                        &tfg,
                        &alloc,
                        &timing,
                        period,
                        &CompileConfig::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("sr_verify");
    let platform = Platform::cube6(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let sched = compile(topo, &tfg, &alloc, &timing, 62.5, &CompileConfig::default()).unwrap();
    g.bench_function("dvb8_cube6_b128", |b| {
        b.iter(|| {
            verify(&sched, topo, &tfg).unwrap();
            black_box(())
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_topology,
    bench_simplex,
    bench_assign_paths,
    bench_wormhole,
    bench_event_sink,
    bench_compile,
    bench_verify
);
criterion_main!(micro);
