//! Benchmark of online admission latency against a loaded resident
//! fabric: a 25th tenant arriving at an 8×8 torus already carrying 24.
//!
//! Four regimes:
//!
//! * **warm** — the tenant was admitted before (evict-then-readmit): the
//!   per-tenant memo replays the stored result after one ledger
//!   comparison. This is the path the acceptance criterion bounds at
//!   <1 ms.
//! * **memoized** — the standalone compile is cached but the admission
//!   itself runs (fit-check against the 24-tenant ledger).
//! * **observed** — the warm loop with a live [`MetricsRecorder`]:
//!   timestamps, ladder laps, and per-rung histogram inserts all active.
//!   `observed / warm` is the instrumentation overhead ratio (budget:
//!   ≤2%, see EXPERIMENTS.md).
//! * **cold** — a never-seen spec: full standalone compile plus the
//!   admission ladder.
//!
//! Run with `CRITERION_JSON=BENCH_serve.json cargo bench --bench
//! admission_latency` to capture machine-readable numbers (the CI
//! artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use sr::obs::{MetricsRecorder, NOOP};
use sr::serve::{Engine, Placement, ServeConfig, TenantSpec};
use sr::topology::Torus;
use std::hint::black_box;

/// Tenant `i`: a two-task chain on its own node pair (see
/// `tests/serve_admission.rs` for the same scenario in test form).
fn spec(i: usize) -> TenantSpec {
    let base = (i * 2) % 62;
    TenantSpec {
        name: format!("app{i:02}"),
        tfg_text: format!(
            "task src{i} 200\ntask dst{i} 240\nmsg m{i} src{i} -> dst{i} {}",
            256 + 32 * (i % 8)
        ),
        placement: Placement::Nodes(vec![base, base + 1]),
        best_effort: false,
    }
}

/// A resident engine carrying tenants `0..24`.
fn loaded_engine() -> Engine {
    let topo = Torus::new(&[8, 8]).expect("torus");
    let mut eng = Engine::new(
        Box::new(topo),
        ServeConfig {
            period: 200.0,
            ..ServeConfig::default()
        },
    );
    for i in 0..24 {
        eng.admit(&spec(i), &NOOP).expect("resident tenant admits");
    }
    eng
}

fn bench_admission_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("admission_latency");
    g.sample_size(10);

    // Warm: evict-then-readmit of a tenant the engine has seen, against a
    // bit-identical ledger — the memoized-result replay path.
    let mut eng = loaded_engine();
    eng.admit(&spec(24), &NOOP).expect("prime the memo");
    eng.evict(&spec(24).name, &NOOP).expect("prime eviction");
    g.bench_function("torus8x8_24tenants_warm", |b| {
        b.iter(|| {
            black_box(eng.admit(&spec(24), &NOOP).expect("warm admit"));
            eng.evict(&spec(24).name, &NOOP).expect("warm evict");
        })
    });

    // Memoized: the standalone compile is cached but the result memo
    // never matches, so the fit-check admission runs every iteration. A
    // resident tenant is toggled between iterations, alternating the
    // ledger the 25th tenant sees — its memoized result is always against
    // the *other* ledger. (The toggle itself rides the cheap replay path,
    // so it adds one warm op of noise, not a compile.)
    let mut eng = loaded_engine();
    eng.admit(&spec(24), &NOOP).expect("prime the memo");
    eng.evict(&spec(24).name, &NOOP).expect("prime eviction");
    let mut present = true;
    g.bench_function("torus8x8_24tenants_memoized", |b| {
        b.iter(|| {
            if present {
                eng.evict(&spec(23).name, &NOOP).expect("toggle out");
            } else {
                eng.admit(&spec(23), &NOOP).expect("toggle in");
            }
            present = !present;
            black_box(eng.admit(&spec(24), &NOOP).expect("memoized admit"));
            eng.evict(&spec(24).name, &NOOP).expect("memoized evict");
        })
    });

    // Observed: the warm loop again, but through a live MetricsRecorder —
    // every iteration takes two timestamps, lap checkpoints, and a
    // histogram insert under the recorder mutex. Comparing this row to
    // `warm` bounds the instrumentation overhead (the ≤2% observability
    // budget in EXPERIMENTS.md).
    let mut eng = loaded_engine();
    let rec = MetricsRecorder::new();
    eng.admit(&spec(24), &rec).expect("prime the memo");
    eng.evict(&spec(24).name, &rec).expect("prime eviction");
    g.bench_function("torus8x8_24tenants_observed", |b| {
        b.iter(|| {
            black_box(eng.admit(&spec(24), &rec).expect("observed admit"));
            eng.evict(&spec(24).name, &rec).expect("observed evict");
        })
    });

    // Cold: a never-seen spec every iteration — full standalone compile
    // plus the admission ladder.
    let mut eng = loaded_engine();
    let mut k = 0usize;
    g.bench_function("torus8x8_24tenants_cold", |b| {
        b.iter(|| {
            k += 1;
            let fresh = TenantSpec {
                name: format!("cold{k}"),
                tfg_text: format!(
                    "task s{k} 200\ntask d{k} 240\nmsg m{k} s{k} -> d{k} {}",
                    256 + (k % 7) * 16
                ),
                placement: Placement::Nodes(vec![48, 49]),
                best_effort: false,
            };
            black_box(eng.admit(&fresh, &NOOP).expect("cold admit"));
            eng.evict(&fresh.name, &NOOP).expect("cold evict");
        })
    });

    g.finish();
}

criterion_group!(benches, bench_admission_latency);
criterion_main!(benches);
