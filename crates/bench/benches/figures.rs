//! One Criterion benchmark per evaluation figure: each measures the cost of
//! regenerating the corresponding data series (the workload generator,
//! parameter sweep, baseline, and both routing systems end to end).
//!
//! Absolute times are machine-dependent; the value of these benches is (a)
//! regression tracking for the compiler/simulator and (b) a one-command way
//! to re-run every experiment (`cargo bench -p sr-bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use sr::prelude::*;
use sr_bench::{figure_performance, figure_utilization, Platform};
use std::hint::black_box;

/// The one shortened simulation config every figure group measures with,
/// so a bench iteration stays sub-second and all sim-backed groups stay
/// comparable.
fn bench_sim() -> SimConfig {
    SimConfig {
        invocations: 30,
        warmup: 5,
    }
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_utilization_ghc");
    g.sample_size(10);
    g.bench_function("cube6_b64", |b| {
        b.iter(|| black_box(figure_utilization(&Platform::cube6(64.0), 1)))
    });
    g.bench_function("ghc444_b64", |b| {
        b.iter(|| black_box(figure_utilization(&Platform::ghc444(64.0), 1)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_utilization_tori");
    g.sample_size(10);
    g.bench_function("torus8x8_b64", |b| {
        b.iter(|| black_box(figure_utilization(&Platform::torus8x8(64.0), 1)))
    });
    g.bench_function("torus444_b64", |b| {
        b.iter(|| black_box(figure_utilization(&Platform::torus444(64.0), 1)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_cube6");
    g.sample_size(10);
    let sim = bench_sim();
    g.bench_function("b64", |b| {
        b.iter(|| black_box(figure_performance(&Platform::cube6(64.0), &sim)))
    });
    g.bench_function("b128", |b| {
        b.iter(|| black_box(figure_performance(&Platform::cube6(128.0), &sim)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_ghc444");
    g.sample_size(10);
    let sim = bench_sim();
    g.bench_function("b64", |b| {
        b.iter(|| black_box(figure_performance(&Platform::ghc444(64.0), &sim)))
    });
    g.bench_function("b128", |b| {
        b.iter(|| black_box(figure_performance(&Platform::ghc444(128.0), &sim)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_torus8x8");
    g.sample_size(10);
    let sim = bench_sim();
    g.bench_function("b128", |b| {
        b.iter(|| black_box(figure_performance(&Platform::torus8x8(128.0), &sim)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_torus444");
    g.sample_size(10);
    let sim = bench_sim();
    g.bench_function("b128", |b| {
        b.iter(|| black_box(figure_performance(&Platform::torus444(128.0), &sim)))
    });
    g.finish();
}

fn bench_claim(c: &mut Criterion) {
    let mut g = c.benchmark_group("claim_oi");
    let cube = GeneralizedHypercube::binary(3).unwrap();
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0);
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(1), NodeId(2)],
        &tfg,
        &cube,
    )
    .unwrap();
    g.bench_function("wormhole_sim", |b| {
        let sim = WormholeSim::new(&cube, &tfg, &alloc, &timing).unwrap();
        let cfg = bench_sim();
        b.iter(|| black_box(sim.run(110.0, &cfg).unwrap()))
    });
    g.bench_function("sr_compile", |b| {
        b.iter(|| {
            black_box(
                compile(
                    &cube,
                    &tfg,
                    &alloc,
                    &timing,
                    110.0,
                    &CompileConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_claim
);
criterion_main!(figures);
