//! Worker-count invariance at scale: the partitioned 32×32 compile with
//! the flow allocation engine is bit-identical at `--parallelism 4` and
//! `--parallelism 1`.
//!
//! The potential-reusing Dijkstra kernel breaks ties on node id and the
//! feedback search replays counters serially, so nothing about the output
//! may depend on worker scheduling. CI runs this on a 4-thread runner.

use sr::prelude::*;
use sr_bench::{scale_bands, scale_workload, ALLOC_SEED};

#[test]
fn partitioned_32x32_flow_is_parallelism_invariant() {
    let (platform, tfg, alloc, timing) = scale_workload(32, 256.0, ALLOC_SEED);
    let topo = platform.topo.as_ref();
    let base = CompileConfig {
        alloc_engine: AllocEngine::Flow,
        partition: scale_bands(32),
        parallelism: 1,
        ..CompileConfig::default()
    };
    let wide = CompileConfig {
        parallelism: 4,
        ..base.clone()
    };
    let period = timing.longest_task(&tfg) / 0.5;

    let a = compile(topo, &tfg, &alloc, &timing, period, &base).expect("serial compile");
    let b = compile(topo, &tfg, &alloc, &timing, period, &wide).expect("4-thread compile");

    assert_eq!(
        a.capacity_scale().to_bits(),
        b.capacity_scale().to_bits(),
        "capacity-ladder rung drifted with worker count"
    );
    assert_eq!(
        a.peak_utilization().to_bits(),
        b.peak_utilization().to_bits(),
        "peak utilization drifted with worker count"
    );
    for i in 0..tfg.num_messages() {
        let m = sr::tfg::MessageId(i);
        assert_eq!(
            a.assignment().path(m).nodes(),
            b.assignment().path(m).nodes(),
            "message {i} routed differently under 4 workers"
        );
    }
    assert_eq!(a.segments().len(), b.segments().len());
    for (sa, sb) in a.segments().iter().zip(b.segments()) {
        assert_eq!(sa.message, sb.message);
        assert_eq!(sa.start.to_bits(), sb.start.to_bits());
        assert_eq!(sa.end.to_bits(), sb.end.to_bits());
    }
    verify(&a, topo, &tfg).expect("schedule verifies");
}
