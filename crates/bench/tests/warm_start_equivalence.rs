//! Warm-started compiles must be *artifact-identical* to cold ones.
//!
//! The compile walk reuses optimal bases across each seed's capacity-scale
//! ladder ([`CompileConfig::warm_start`]). Warm starts change which vertex
//! an allocation LP lands on, so any warm-influenced winning rung is
//! re-derived cold inside the walk; the contract tested here is that the
//! *published* schedule — accepted candidate, paths, segments, utilization
//! — is bitwise the same with warm starts on and off, on the standard DVB
//! workload the figures use.

use sr::prelude::*;
use sr::tfg::MessageId;
use sr_bench::{standard_workload, Platform};

/// Loads covering both the easy regime (first candidate wins) and the
/// contended regime where the ladder actually descends (scale 0.8 at 0.85)
/// — the case where warm starts see non-trivial reuse.
const LOADS: &[f64] = &[0.5, 0.85, 0.95];

#[test]
fn warm_start_schedules_match_cold_on_torus4x4_dvb() {
    let platform = Platform::torus4x4(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let tau_c = timing.longest_task(&tfg);
    let topo = platform.topo.as_ref();

    for &load in LOADS {
        let period = tau_c / load;
        let warm = CompileConfig {
            warm_start: true,
            parallelism: 1,
            ..CompileConfig::default()
        };
        let cold = CompileConfig {
            warm_start: false,
            ..warm.clone()
        };
        let w = compile(topo, &tfg, &alloc, &timing, period, &warm)
            .unwrap_or_else(|e| panic!("warm compile failed at load {load}: {e}"));
        let c = compile(topo, &tfg, &alloc, &timing, period, &cold)
            .unwrap_or_else(|e| panic!("cold compile failed at load {load}: {e}"));

        assert_eq!(
            w.capacity_scale().to_bits(),
            c.capacity_scale().to_bits(),
            "accepted capacity scale diverged at load {load}"
        );
        assert_eq!(
            w.peak_utilization().to_bits(),
            c.peak_utilization().to_bits(),
            "peak utilization diverged at load {load}"
        );
        for i in 0..tfg.num_messages() {
            assert_eq!(
                w.assignment().path(MessageId(i)).nodes(),
                c.assignment().path(MessageId(i)).nodes(),
                "message {i} routed differently at load {load}"
            );
        }
        assert_eq!(w.segments().len(), c.segments().len());
        for (sw, sc) in w.segments().iter().zip(c.segments()) {
            assert_eq!(sw.message, sc.message);
            assert_eq!(sw.start.to_bits(), sc.start.to_bits());
            assert_eq!(sw.end.to_bits(), sc.end.to_bits());
        }
    }
}
