//! Regression tests for the *reproduction itself*: the qualitative shapes
//! EXPERIMENTS.md records must keep holding as the code evolves.
//!
//! These run the real figure harness on a reduced simulation window, so
//! they assert the robust shape properties, not exact spike values.

use sr::prelude::*;
use sr_bench::{figure_performance, figure_utilization, Platform};

fn quick_sim() -> SimConfig {
    SimConfig {
        invocations: 60,
        warmup: 10,
    }
}

/// Fig. 7 (B=128 half): scheduled routing compiles at every load with
/// constant throughput and flat latency, while wormhole routing shows
/// output inconsistency at the saturated end.
#[test]
fn fig7_b128_shape_holds() {
    let series = figure_performance(&Platform::cube6(128.0), &quick_sim());
    assert_eq!(series.len(), 12);
    let mut first_latency = None;
    for p in &series {
        let sr = p.sr.as_ref().unwrap_or_else(|e| {
            panic!(
                "SR must compile at every load at B=128; failed at {}: {e}",
                p.load
            )
        });
        assert_eq!(sr.throughput, 1.0);
        assert!(sr.utilization <= 1.0 + 1e-6);
        let l = *first_latency.get_or_insert(sr.latency);
        assert!(
            (sr.latency - l).abs() < 1e-6,
            "SR latency must be flat across loads"
        );
    }
    let high_load_oi = series.iter().filter(|p| p.load > 0.7 && p.wr_oi).count();
    assert!(
        high_load_oi >= 2,
        "wormhole routing should be inconsistent at saturated loads"
    );
    // Monotone degradation: WR mean latency at the top load exceeds the
    // bottom load's.
    let first = &series[0];
    let last = &series[11];
    assert!(last.wr_latency.mid > first.wr_latency.mid + 0.5);
}

/// Fig. 6 (8×8 torus half): `AssignPaths` never does worse than LSD-to-MSD,
/// and the 8×8 torus stays above link capacity at B=64 — the platform the
/// paper could not schedule at all at this bandwidth.
#[test]
fn fig6_torus8x8_b64_shape_holds() {
    let series = figure_utilization(&Platform::torus8x8(64.0), 1);
    assert_eq!(series.len(), 12);
    for p in &series {
        assert!(
            p.final_peak <= p.lsd_peak + 1e-9,
            "AssignPaths worse than baseline at load {}",
            p.load
        );
        assert!(
            p.final_peak >= 0.99,
            "torus B=64 should be at/above capacity"
        );
    }
    let above_capacity = series.iter().filter(|p| p.final_peak > 1.0 + 1e-6).count();
    assert!(
        above_capacity >= 10,
        "paper: the 8x8 torus at B=64 is unschedulable at (essentially) all loads"
    );
}

/// Fig. 5 (6-cube half): the heuristic reaches the structural floor
/// (U = 1.0, pinned by the no-slack longest message) at most loads, always
/// improving on the dimension-order baseline by >2×.
#[test]
fn fig5_cube6_b64_shape_holds() {
    let series = figure_utilization(&Platform::cube6(64.0), 1);
    for p in &series {
        assert!(
            p.lsd_peak / p.final_peak > 2.0,
            "improvement at load {}",
            p.load
        );
        assert!(p.final_peak >= 1.0 - 1e-9, "B=64 floor is exactly 1.0");
        assert!(p.final_peak <= 1.2, "heuristic should stay near the floor");
    }
}
