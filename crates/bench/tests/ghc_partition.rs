//! The topology-generic partitioner beyond torus rows: a 4096-node
//! GHC(16,16,16) compiles through the banded path and verifies.
//!
//! Each DVB pipeline is pinned into one most-significant-digit slab (a
//! GHC(16,16) sub-cube of 256 nodes). Shortest paths in a generalized
//! hypercube correct one digit per hop, so intra-slab traffic never
//! leaves its slab — exactly the "pipelines interior to one band"
//! structure the torus scale workload gets from whole-row bands.

use sr::core::band_partition_topo;
use sr::prelude::*;
use sr_bench::DVB_MODELS;

const SLABS: usize = 16;
const SLAB_NODES: usize = 256; // GHC(16,16) per most-significant digit

/// One seeded 4×4 spread inside the slab's low two digits, replicated per
/// slab (mirrors the replicated-pattern choice of `scale_workload`).
fn ghc_workload() -> (GeneralizedHypercube, TaskFlowGraph, Allocation, Timing) {
    let topo = GeneralizedHypercube::new(&[16, 16, 16]).unwrap();
    let tfg = dvb_tiled(SLABS, DVB_MODELS);
    let per_tile = tfg.num_tasks() / SLABS;
    assert!(per_tile <= 16, "pattern must fit the 4×4 cell grid");
    let mut placement = Vec::with_capacity(tfg.num_tasks());
    for slab in 0..SLABS {
        for j in 0..per_tile {
            // digit0 = j % 4, digit1 = j / 4: distinct cells, ≤ 2 hops apart.
            placement.push(NodeId(slab * SLAB_NODES + (j / 4) * 16 + (j % 4)));
        }
    }
    let alloc = Allocation::new(placement, &tfg, &topo).unwrap();
    (topo, tfg, alloc, Timing::calibrated_dvb(256.0))
}

/// The coordinate-hint cut at 16 parts is the most significant digit, so
/// every pipeline is interior to one band.
#[test]
fn ghc_bands_are_msd_slabs() {
    let topo = GeneralizedHypercube::new(&[16, 16, 16]).unwrap();
    let bands = band_partition_topo(&topo, SLABS);
    for (node, &band) in bands.iter().enumerate() {
        assert_eq!(band, node / SLAB_NODES, "node {node}");
    }
}

/// GHC(16,16,16) compiles end to end through the partitioned pipeline with
/// the flow allocation engine, and the schedule verifies.
#[test]
fn ghc_16x16x16_partitioned_compile_verifies() {
    let (topo, tfg, alloc, timing) = ghc_workload();
    let config = CompileConfig {
        alloc_engine: AllocEngine::Flow,
        partition: SLABS,
        ..CompileConfig::default()
    };
    let period = timing.longest_task(&tfg) / 0.5;
    let sched = compile(&topo, &tfg, &alloc, &timing, period, &config)
        .expect("GHC(16,16,16) partitioned compile succeeds");
    verify(&sched, &topo, &tfg).expect("GHC schedule verifies");
    assert!(sched.peak_utilization() <= 1.0 + 1e-6);
}
