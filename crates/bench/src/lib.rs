//! Experiment harness regenerating every evaluation figure of the paper
//! (Figs. 5–10) plus the §3 Claim demonstration.
//!
//! The paper's axes are all normalized, which is what makes reproduction
//! meaningful on a simulator:
//!
//! * **normalized load** = `τ_c / τ_in` (1.0 = inputs arrive as fast as the
//!   longest task can drain them);
//! * **normalized throughput** = `τ_in / τ_out` (1.0 = one output per input;
//!   wormhole-routing runs are drawn as min/mid/max *spikes* across
//!   invocations — a spread is output inconsistency);
//! * **normalized latency** = `λ / Λ` (invocation latency over critical-path
//!   length).
//!
//! [`figure_utilization`] regenerates Figs. 5–6 (peak utilization, LSD-to-MSD
//! vs `AssignPaths`); [`figure_performance`] regenerates Figs. 7–10
//! (throughput/latency, wormhole vs scheduled). The `figures` binary prints
//! the series as Markdown/CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sr::core::{assign_paths, ActivityMatrix, AssignPathsConfig, Intervals};
use sr::prelude::*;

pub mod gate;

/// The standard sweep: 12 input periods from `τ_c` to `5·τ_c`, as in the
/// paper ("twelve different values of the input period are selected between
/// its minimum value of τ_c and 5·τ_c").
pub const LOAD_POINTS: usize = 12;

/// Workload scale: number of DVB object models. Chosen so the TFG populates
/// a 64-node machine the way the paper's full benchmark does (n + 4 tasks,
/// 2n + 4 messages).
pub const DVB_MODELS: usize = 10;

/// Returns the swept input periods (µs), longest first (lowest load first).
pub fn sweep_periods(tau_c: f64) -> Vec<f64> {
    // Evenly spaced in load = τ_c/τ_in over [0.2, 1.0], like the paper's
    // x-axes.
    (0..LOAD_POINTS)
        .map(|i| {
            let load = 0.2 + 0.8 * (i as f64) / (LOAD_POINTS - 1) as f64;
            tau_c / load
        })
        .collect()
}

/// One point of a Fig. 5/6 utilization series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationPoint {
    /// Normalized load `τ_c / τ_in`.
    pub load: f64,
    /// Peak utilization of the LSD-to-MSD (dimension-order) assignment.
    pub lsd_peak: f64,
    /// Peak utilization after `AssignPaths`.
    pub final_peak: f64,
}

/// One min/mid/max spike, as the paper draws for wormhole routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Smallest observed value.
    pub min: f64,
    /// Average observed value.
    pub mid: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Spike {
    /// Whether the spike is visibly spread (output inconsistency).
    pub fn is_spread(&self, tol: f64) -> bool {
        self.max - self.min > tol
    }
}

/// One point of a Fig. 7–10 performance series.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformancePoint {
    /// Normalized load `τ_c / τ_in`.
    pub load: f64,
    /// Input period, µs.
    pub period: f64,
    /// Wormhole normalized throughput spike (`τ_in / τ_out`).
    pub wr_throughput: Spike,
    /// Wormhole normalized latency spike (`λ / Λ`).
    pub wr_latency: Spike,
    /// Whether the wormhole run shows output inconsistency.
    pub wr_oi: bool,
    /// Whether the wormhole run deadlocked.
    pub wr_deadlock: bool,
    /// Scheduled routing: normalized throughput (always exactly 1 when a
    /// schedule exists) and normalized latency, or the failure stage.
    pub sr: Result<SrPoint, String>,
}

/// The scheduled-routing result at one load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrPoint {
    /// Normalized throughput (1.0 by construction).
    pub throughput: f64,
    /// Normalized latency `λ / Λ`.
    pub latency: f64,
    /// Peak utilization of the compiled assignment.
    pub utilization: f64,
}

/// The experiment platform: a topology with its evaluation bandwidth.
pub struct Platform {
    /// Display name used in figure outputs.
    pub name: String,
    /// The interconnect.
    pub topo: Box<dyn Topology>,
    /// Link bandwidth, bytes/µs.
    pub bandwidth: f64,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Platform({}, B={})", self.name, self.bandwidth)
    }
}

impl Platform {
    /// The paper's binary 6-cube.
    pub fn cube6(bandwidth: f64) -> Self {
        Platform {
            name: format!("binary 6-cube, B={bandwidth}"),
            topo: Box::new(GeneralizedHypercube::binary(6).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 4×4×4 generalized hypercube.
    pub fn ghc444(bandwidth: f64) -> Self {
        Platform {
            name: format!("GHC(4,4,4), B={bandwidth}"),
            topo: Box::new(GeneralizedHypercube::new(&[4, 4, 4]).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 8×8 torus.
    pub fn torus8x8(bandwidth: f64) -> Self {
        Platform::torus_nxn(8, bandwidth)
    }

    /// A 16-node 4×4 torus — the smallest platform that fits the standard
    /// DVB workload; used by the `compile_search` bench where compile time
    /// is dominated by the feedback search rather than path enumeration.
    pub fn torus4x4(bandwidth: f64) -> Self {
        Platform::torus_nxn(4, bandwidth)
    }

    /// An N×N torus at any extent — the scaling-sweep fabric family
    /// (8→64 nodes, 16→256, 32→1024, 64→4096).
    ///
    /// The display name carries the node count (`8x8 torus 64n`) so figure
    /// CSV files for multi-digit extents sort and diff cleanly next to the
    /// paper's 64-node platforms.
    pub fn torus_nxn(n: usize, bandwidth: f64) -> Self {
        Platform {
            name: format!("{n}x{n} torus {}n, B={bandwidth}", n * n),
            topo: Box::new(Torus::new(&[n, n]).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 4×4×4 torus.
    pub fn torus444(bandwidth: f64) -> Self {
        Platform {
            name: format!("4x4x4 torus 64n, B={bandwidth}"),
            topo: Box::new(Torus::new(&[4, 4, 4]).expect("valid")),
            bandwidth,
        }
    }
}

/// Allocation seed for the standard workload (see [`standard_workload`]).
pub const ALLOC_SEED: u64 = 7;

/// The standard workload: uniform-task DVB, seeded one-task-per-node
/// scatter allocation, calibrated timing (`τ_c = 50 µs`; `τ_m/τ_c` = 1 at
/// B=64, 0.5 at B=128).
///
/// The paper does not specify its task allocation (it is an input produced
/// by a separate mapping step) but its evaluation implicitly assumes one
/// task per processor; we use a seeded random *distinct* placement as the
/// neutral choice. The allocation-strategy ablation bench shows how the
/// choice moves both wormhole inconsistency and scheduled-routing
/// feasibility.
pub fn standard_workload(platform: &Platform) -> (TaskFlowGraph, Allocation, Timing) {
    let tfg = dvb_uniform(DVB_MODELS);
    let alloc = sr::mapping::random_distinct(&tfg, platform.topo.as_ref(), ALLOC_SEED)
        .expect("64 nodes fit the DVB task count");
    let timing = Timing::calibrated_dvb(platform.bandwidth);
    (tfg, alloc, timing)
}

/// Regenerates one Fig. 5/6 series: peak utilization vs load, LSD-to-MSD vs
/// `AssignPaths`, on the given platform.
pub fn figure_utilization(platform: &Platform, seed: u64) -> Vec<UtilizationPoint> {
    let (tfg, alloc, timing) = standard_workload(platform);
    let tau_c = timing.longest_task(&tfg);
    let topo = platform.topo.as_ref();
    // Load points are independent; sweep them across all cores (order is
    // preserved, each point is deterministic, so the series is identical
    // to a serial sweep).
    sr_par::par_map(&sweep_periods(tau_c), 0, |&period| {
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask)
            .expect("period ≥ τ_c by construction");
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let outcome = assign_paths(
            &tfg,
            topo,
            &alloc,
            &bounds,
            &intervals,
            &activity,
            &AssignPathsConfig {
                seed,
                ..AssignPathsConfig::default()
            },
        );
        UtilizationPoint {
            load: tau_c / period,
            lsd_peak: outcome.baseline_peak,
            final_peak: outcome.utilization.effective_peak(),
        }
    })
}

/// Regenerates one Fig. 7–10 series: wormhole vs scheduled routing
/// throughput and latency across the load sweep.
pub fn figure_performance(platform: &Platform, sim: &SimConfig) -> Vec<PerformancePoint> {
    let (tfg, alloc, timing) = standard_workload(platform);
    let tau_c = timing.longest_task(&tfg);
    let critical_path = timing.critical_path(&tfg);
    let topo = platform.topo.as_ref();

    // Per-load points are independent: simulate and compile them across
    // all cores. The inner compile is pinned serial — the sweep already
    // saturates the machine, and nesting pools would oversubscribe it.
    sr_par::par_map(&sweep_periods(tau_c), 0, |&period| {
        let load = tau_c / period;

        // --- Wormhole routing (simulated) ---
        let wr = WormholeSim::new(topo, &tfg, &alloc, &timing).expect("workload matches platform");
        let res = wr.run(period, sim).expect("valid run parameters");
        let (wr_throughput, wr_latency, wr_oi, wr_deadlock) =
            if res.records().len() >= sim.warmup + 2 {
                let ints = res.interval_stats();
                let lats = res.latency_stats();
                (
                    Spike {
                        // τ_in/τ_out: the *max* throughput comes from the
                        // *min* interval.
                        min: period / ints.max,
                        mid: period / ints.mean,
                        max: period / ints.min.max(f64::MIN_POSITIVE),
                    },
                    Spike {
                        min: lats.min / critical_path,
                        mid: lats.mean / critical_path,
                        max: lats.max / critical_path,
                    },
                    res.has_output_inconsistency(1e-6),
                    res.deadlocked(),
                )
            } else {
                (
                    Spike {
                        min: 0.0,
                        mid: 0.0,
                        max: 0.0,
                    },
                    Spike {
                        min: 0.0,
                        mid: 0.0,
                        max: 0.0,
                    },
                    true,
                    res.deadlocked(),
                )
            };

        // --- Scheduled routing (compiled) ---
        let sr = compile(
            topo,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig {
                parallelism: 1,
                ..CompileConfig::default()
            },
        )
        .map(|sched| {
            verify(&sched, topo, &tfg).expect("compiled schedules verify");
            SrPoint {
                throughput: 1.0,
                latency: sched.latency() / critical_path,
                utilization: sched.peak_utilization(),
            }
        })
        .map_err(|e| failure_stage(&e));

        PerformancePoint {
            load,
            period,
            wr_throughput,
            wr_latency,
            wr_oi,
            wr_deadlock,
            sr,
        }
    })
}

fn failure_stage(e: &CompileError) -> String {
    match e {
        CompileError::UtilizationExceeded { utilization } => {
            format!("U={utilization:.2}>1")
        }
        CompileError::AllocationInfeasible { .. } => "alloc-infeasible".into(),
        CompileError::IntervalUnschedulable { .. } => "interval-unsched".into(),
        other => format!("{other}"),
    }
}

/// Renders a utilization series as a Markdown table (Figs. 5–6 rows).
pub fn utilization_markdown(name: &str, points: &[UtilizationPoint]) -> String {
    let mut s =
        format!("### {name}\n\n| load | U (LSD-to-MSD) | U (AssignPaths) |\n|---|---|---|\n");
    for p in points {
        s.push_str(&format!(
            "| {:.3} | {:.3} | {:.3} |\n",
            p.load, p.lsd_peak, p.final_peak
        ));
    }
    s
}

/// Renders a performance series as a Markdown table (Figs. 7–10 rows).
pub fn performance_markdown(name: &str, points: &[PerformancePoint]) -> String {
    let mut s = format!(
        "### {name}\n\n| load | WR thr (min/mid/max) | WR lat (min/mid/max) | WR OI | SR thr | SR lat | SR status |\n|---|---|---|---|---|---|---|\n"
    );
    for p in points {
        let (sr_thr, sr_lat, sr_status) = match &p.sr {
            Ok(sp) => (
                format!("{:.3}", sp.throughput),
                format!("{:.3}", sp.latency),
                format!("ok (U={:.2})", sp.utilization),
            ),
            Err(stage) => ("—".into(), "—".into(), stage.clone()),
        };
        s.push_str(&format!(
            "| {:.3} | {:.3}/{:.3}/{:.3} | {:.3}/{:.3}/{:.3} | {} | {} | {} | {} |\n",
            p.load,
            p.wr_throughput.min,
            p.wr_throughput.mid,
            p.wr_throughput.max,
            p.wr_latency.min,
            p.wr_latency.mid,
            p.wr_latency.max,
            if p.wr_deadlock {
                "deadlock"
            } else if p.wr_oi {
                "yes"
            } else {
                "no"
            },
            sr_thr,
            sr_lat,
            sr_status,
        ));
    }
    s
}

/// Renders a performance series as CSV.
pub fn performance_csv(points: &[PerformancePoint]) -> String {
    let mut s = String::from(
        "load,period_us,wr_thr_min,wr_thr_mid,wr_thr_max,wr_lat_min,wr_lat_mid,wr_lat_max,wr_oi,sr_ok,sr_latency,sr_status\n",
    );
    for p in points {
        let (ok, lat, status) = match &p.sr {
            Ok(sp) => (1, format!("{:.6}", sp.latency), "ok".to_string()),
            Err(stage) => (0, String::new(), stage.clone()),
        };
        s.push_str(&format!(
            "{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{}\n",
            p.load,
            p.period,
            p.wr_throughput.min,
            p.wr_throughput.mid,
            p.wr_throughput.max,
            p.wr_latency.min,
            p.wr_latency.mid,
            p.wr_latency.max,
            u8::from(p.wr_oi),
            ok,
            lat,
            status
        ));
    }
    s
}

/// Renders a utilization series as CSV.
pub fn utilization_csv(points: &[UtilizationPoint]) -> String {
    let mut s = String::from("load,u_lsd,u_assignpaths\n");
    for p in points {
        s.push_str(&format!(
            "{:.4},{:.4},{:.4}\n",
            p.load, p.lsd_peak, p.final_peak
        ));
    }
    s
}

/// One point of the compile-time scaling sweep (ROADMAP item 2: 64 → 1024
/// → 4096-node fabrics).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Platform display name.
    pub platform: String,
    /// Fabric size in nodes.
    pub nodes: usize,
    /// Tasks in the tiled workload.
    pub tasks: usize,
    /// Messages in the tiled workload.
    pub messages: usize,
    /// Allocation engine used (`simplex` or `flow`).
    pub engine: String,
    /// Partition count handed to the compiler (1 = flat).
    pub partition: usize,
    /// Wall-clock compile time, ms.
    pub compile_ms: f64,
    /// Wall-clock verify time, ms (0 when the compile failed).
    pub verify_ms: f64,
    /// Compile outcome: peak utilization, or the error string.
    pub outcome: Result<f64, String>,
}

/// Number of 4-row bands the N×N scaling fabric is partitioned into (the
/// `CompileConfig::partition` count). 1 when the extent is not a multiple
/// of 4 — then bands would not align with whole rows.
pub fn scale_bands(n: usize) -> usize {
    if n >= 8 && n.is_multiple_of(4) {
        n / 4
    } else {
        1
    }
}

/// The scaling workload on the N×N torus: a farm of uniform-ops DVB
/// pipelines ([`sr::tfg::dvb_tiled`]), one per 4-row × 8-column slot, every
/// slot using the *same* seeded placement pattern.
///
/// Geometry drives feasibility here. Message windows follow
/// `WindowPolicy::LongestTask`, so the effective peak utilization is
/// window-relative and does *not* fall as the input period grows — the
/// levers are path locality and link bandwidth. Three deliberate choices:
///
/// * **4×8 slots** keep every pipeline's routes short (the `select` fan-in
///   is the paper's hub node); slots have disjoint bounding boxes, so
///   shortest paths of different pipelines can never meet on a link.
/// * **One pattern, replicated.** Independently scattering each pipeline
///   makes the fabric-wide peak the *maximum over tiles* of a random
///   draw, so U grows with fabric size purely through sampling variance;
///   replicating a single 14-cell pattern makes the farm regular —
///   translation-invariant dimension-order baselines give every tile the
///   same U, and the trajectory measures compile time, not placement luck.
/// * **Whole-row bands** align with [`sr::core::band_partition`]
///   (`scale_bands` 4-row bands, row distance ≤ 3 never wraps), so the
///   partitioned compiler sees every pipeline as interior to one band.
///
/// A single hub-fanout DVB pipeline cannot be scaled instead: every extra
/// model funnels another message through the `select` hub's four links and
/// U grows without bound — scaling the fabric means scaling the *farm*.
///
/// # Panics
///
/// Panics unless `n` is a multiple of 8 (the slot grid must tile the torus).
pub fn scale_workload(
    n: usize,
    bandwidth: f64,
    seed: u64,
) -> (Platform, TaskFlowGraph, Allocation, Timing) {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    assert!(
        n >= 8 && n.is_multiple_of(8),
        "scaling fabric needs 8 | N, got {n}"
    );
    let platform = Platform::torus_nxn(n, bandwidth);
    let bands = scale_bands(n);
    let col_slots = n / 8;
    let tfg = dvb_tiled(bands * col_slots, DVB_MODELS);
    let per_tile = tfg.num_tasks() / (bands * col_slots);

    // One Fisher–Yates draw of `per_tile` distinct cells in the 4×8 slot.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells: Vec<(usize, usize)> = (0..4).flat_map(|r| (0..8).map(move |c| (r, c))).collect();
    for i in 0..per_tile {
        let j = rng.gen_range(i..cells.len());
        cells.swap(i, j);
    }

    let mut placement = Vec::with_capacity(tfg.num_tasks());
    for band in 0..bands {
        for slot in 0..col_slots {
            for &(dr, dc) in &cells[..per_tile] {
                placement.push(NodeId((band * 4 + dr) * n + slot * 8 + dc));
            }
        }
    }
    let alloc = Allocation::new(placement, &tfg, platform.topo.as_ref())
        .expect("placement is in range by construction");
    (platform, tfg, alloc, Timing::calibrated_dvb(bandwidth))
}

/// Compiles and verifies the scaling workload on the N×N torus, recording
/// wall-clock times. A schedule that compiles but fails [`verify`] panics —
/// the sweep is also a correctness oracle at sizes the unit tests never
/// reach.
pub fn scale_point(
    n: usize,
    bandwidth: f64,
    engine: AllocEngine,
    partitioned: bool,
    load: f64,
    seed: u64,
) -> ScalePoint {
    let (platform, tfg, alloc, timing) = scale_workload(n, bandwidth, seed);
    let config = CompileConfig {
        alloc_engine: engine,
        partition: if partitioned { scale_bands(n) } else { 0 },
        ..CompileConfig::default()
    };
    let config = &config;
    let period = timing.longest_task(&tfg) / load;
    let t0 = std::time::Instant::now();
    let compiled = compile(
        platform.topo.as_ref(),
        &tfg,
        &alloc,
        &timing,
        period,
        config,
    );
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (verify_ms, outcome) = match compiled {
        Ok(s) => {
            let t1 = std::time::Instant::now();
            verify(&s, platform.topo.as_ref(), &tfg).expect("scale schedule verifies");
            (t1.elapsed().as_secs_f64() * 1e3, Ok(s.peak_utilization()))
        }
        Err(e) => (0.0, Err(e.to_string())),
    };
    ScalePoint {
        platform: platform.name.clone(),
        nodes: platform.topo.num_nodes(),
        tasks: tfg.num_tasks(),
        messages: tfg.num_messages(),
        engine: match config.alloc_engine {
            AllocEngine::Simplex => "simplex".to_string(),
            AllocEngine::Flow => "flow".to_string(),
        },
        partition: config.partition.max(1),
        compile_ms,
        verify_ms,
        outcome,
    }
}

/// Renders the scale sweep as a Markdown table.
pub fn scale_markdown(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "| platform | nodes | messages | engine | parts | compile (ms) | verify (ms) | U |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for p in points {
        let u = match &p.outcome {
            Ok(u) => format!("{u:.3}"),
            Err(e) => e.clone(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {u} |\n",
            p.platform, p.nodes, p.messages, p.engine, p.partition, p.compile_ms, p.verify_ms
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the scale sweep as the `BENCH_scale.json` artifact (one document,
/// hand-rolled like the metrics baseline — no serde in the workspace).
pub fn scale_json(points: &[ScalePoint]) -> String {
    let mut out = String::from("{\n\"workload\": \"tiled_dvb\",\n\"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let tail = match &p.outcome {
            Ok(u) => format!("\"ok\": true, \"peak_utilization\": {u}"),
            Err(e) => format!("\"ok\": false, \"error\": \"{}\"", json_escape(e)),
        };
        out.push_str(&format!(
            "{}{{\"platform\": \"{}\", \"nodes\": {}, \"tasks\": {}, \"messages\": {}, \
             \"engine\": \"{}\", \"partition\": {}, \"compile_ms\": {}, \"verify_ms\": {}, {tail}}}",
            if i == 0 { "" } else { ",\n" },
            json_escape(&p.platform),
            p.nodes,
            p.tasks,
            p.messages,
            p.engine,
            p.partition,
            p.compile_ms,
            p.verify_ms,
        ));
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spans_the_load_axis() {
        let periods = sweep_periods(50.0);
        assert_eq!(periods.len(), LOAD_POINTS);
        assert!((periods[0] - 250.0).abs() < 1e-9); // load 0.2
        assert!((periods[LOAD_POINTS - 1] - 50.0).abs() < 1e-9); // load 1.0
        assert!(periods.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn platforms_have_64_nodes() {
        for p in [
            Platform::cube6(64.0),
            Platform::ghc444(64.0),
            Platform::torus8x8(64.0),
            Platform::torus444(64.0),
        ] {
            assert_eq!(p.topo.num_nodes(), 64, "{}", p.name);
        }
    }

    /// `verify()`-as-oracle on a 16×16 torus: `scale_point` panics if the
    /// compiled schedule fails verification, so reaching the assertions
    /// means the end-to-end schedule is conflict-free at 256 nodes — a size
    /// the paper-figure tests never touch. Both engines must also land on
    /// the same peak utilization for the same (flat) configuration.
    #[test]
    fn scale_point_16x16_verifies_under_both_engines() {
        let simplex = scale_point(16, 256.0, AllocEngine::Simplex, false, 0.5, 7);
        let flow = scale_point(16, 256.0, AllocEngine::Flow, false, 0.5, 7);
        assert_eq!(simplex.nodes, 256);
        assert_eq!(simplex.tasks, 8 * 14);
        let u_simplex = simplex.outcome.expect("simplex compiles the 16x16 farm");
        let u_flow = flow.outcome.expect("flow compiles the 16x16 farm");
        assert_eq!(
            u_simplex.to_bits(),
            u_flow.to_bits(),
            "{u_simplex} vs {u_flow}"
        );
        assert!(u_simplex <= 1.0, "workload must be feasible: U={u_simplex}");

        // The partitioned path trades assignment quality for locality; it
        // must still verify (the oracle), not match the flat U.
        let part = scale_point(16, 256.0, AllocEngine::Flow, true, 0.5, 7);
        assert_eq!(part.partition, scale_bands(16));
        let u_part = part
            .outcome
            .expect("partitioned flow compiles the 16x16 farm");
        assert!(
            u_part <= 1.0,
            "partitioned farm must stay feasible: U={u_part}"
        );
    }

    #[test]
    fn markdown_emitters_include_all_rows() {
        let pts = vec![UtilizationPoint {
            load: 0.5,
            lsd_peak: 1.2,
            final_peak: 0.9,
        }];
        let md = utilization_markdown("test", &pts);
        assert!(md.contains("0.500") && md.contains("1.200") && md.contains("0.900"));
        let csv = utilization_csv(&pts);
        assert_eq!(csv.lines().count(), 2);
    }
}
