//! Experiment harness regenerating every evaluation figure of the paper
//! (Figs. 5–10) plus the §3 Claim demonstration.
//!
//! The paper's axes are all normalized, which is what makes reproduction
//! meaningful on a simulator:
//!
//! * **normalized load** = `τ_c / τ_in` (1.0 = inputs arrive as fast as the
//!   longest task can drain them);
//! * **normalized throughput** = `τ_in / τ_out` (1.0 = one output per input;
//!   wormhole-routing runs are drawn as min/mid/max *spikes* across
//!   invocations — a spread is output inconsistency);
//! * **normalized latency** = `λ / Λ` (invocation latency over critical-path
//!   length).
//!
//! [`figure_utilization`] regenerates Figs. 5–6 (peak utilization, LSD-to-MSD
//! vs `AssignPaths`); [`figure_performance`] regenerates Figs. 7–10
//! (throughput/latency, wormhole vs scheduled). The `figures` binary prints
//! the series as Markdown/CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sr::core::{assign_paths, ActivityMatrix, AssignPathsConfig, Intervals};
use sr::prelude::*;

pub mod gate;

/// The standard sweep: 12 input periods from `τ_c` to `5·τ_c`, as in the
/// paper ("twelve different values of the input period are selected between
/// its minimum value of τ_c and 5·τ_c").
pub const LOAD_POINTS: usize = 12;

/// Workload scale: number of DVB object models. Chosen so the TFG populates
/// a 64-node machine the way the paper's full benchmark does (n + 4 tasks,
/// 2n + 4 messages).
pub const DVB_MODELS: usize = 10;

/// Returns the swept input periods (µs), longest first (lowest load first).
pub fn sweep_periods(tau_c: f64) -> Vec<f64> {
    // Evenly spaced in load = τ_c/τ_in over [0.2, 1.0], like the paper's
    // x-axes.
    (0..LOAD_POINTS)
        .map(|i| {
            let load = 0.2 + 0.8 * (i as f64) / (LOAD_POINTS - 1) as f64;
            tau_c / load
        })
        .collect()
}

/// One point of a Fig. 5/6 utilization series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationPoint {
    /// Normalized load `τ_c / τ_in`.
    pub load: f64,
    /// Peak utilization of the LSD-to-MSD (dimension-order) assignment.
    pub lsd_peak: f64,
    /// Peak utilization after `AssignPaths`.
    pub final_peak: f64,
}

/// One min/mid/max spike, as the paper draws for wormhole routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spike {
    /// Smallest observed value.
    pub min: f64,
    /// Average observed value.
    pub mid: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Spike {
    /// Whether the spike is visibly spread (output inconsistency).
    pub fn is_spread(&self, tol: f64) -> bool {
        self.max - self.min > tol
    }
}

/// One point of a Fig. 7–10 performance series.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformancePoint {
    /// Normalized load `τ_c / τ_in`.
    pub load: f64,
    /// Input period, µs.
    pub period: f64,
    /// Wormhole normalized throughput spike (`τ_in / τ_out`).
    pub wr_throughput: Spike,
    /// Wormhole normalized latency spike (`λ / Λ`).
    pub wr_latency: Spike,
    /// Whether the wormhole run shows output inconsistency.
    pub wr_oi: bool,
    /// Whether the wormhole run deadlocked.
    pub wr_deadlock: bool,
    /// Scheduled routing: normalized throughput (always exactly 1 when a
    /// schedule exists) and normalized latency, or the failure stage.
    pub sr: Result<SrPoint, String>,
}

/// The scheduled-routing result at one load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrPoint {
    /// Normalized throughput (1.0 by construction).
    pub throughput: f64,
    /// Normalized latency `λ / Λ`.
    pub latency: f64,
    /// Peak utilization of the compiled assignment.
    pub utilization: f64,
}

/// The experiment platform: a topology with its evaluation bandwidth.
pub struct Platform {
    /// Display name used in figure outputs.
    pub name: String,
    /// The interconnect.
    pub topo: Box<dyn Topology>,
    /// Link bandwidth, bytes/µs.
    pub bandwidth: f64,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Platform({}, B={})", self.name, self.bandwidth)
    }
}

impl Platform {
    /// The paper's binary 6-cube.
    pub fn cube6(bandwidth: f64) -> Self {
        Platform {
            name: format!("binary 6-cube, B={bandwidth}"),
            topo: Box::new(GeneralizedHypercube::binary(6).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 4×4×4 generalized hypercube.
    pub fn ghc444(bandwidth: f64) -> Self {
        Platform {
            name: format!("GHC(4,4,4), B={bandwidth}"),
            topo: Box::new(GeneralizedHypercube::new(&[4, 4, 4]).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 8×8 torus.
    pub fn torus8x8(bandwidth: f64) -> Self {
        Platform {
            name: format!("8x8 torus, B={bandwidth}"),
            topo: Box::new(Torus::new(&[8, 8]).expect("valid")),
            bandwidth,
        }
    }

    /// A 16-node 4×4 torus — the smallest platform that fits the standard
    /// DVB workload; used by the `compile_search` bench where compile time
    /// is dominated by the feedback search rather than path enumeration.
    pub fn torus4x4(bandwidth: f64) -> Self {
        Platform {
            name: format!("4x4 torus, B={bandwidth}"),
            topo: Box::new(Torus::new(&[4, 4]).expect("valid")),
            bandwidth,
        }
    }

    /// The paper's 4×4×4 torus.
    pub fn torus444(bandwidth: f64) -> Self {
        Platform {
            name: format!("4x4x4 torus, B={bandwidth}"),
            topo: Box::new(Torus::new(&[4, 4, 4]).expect("valid")),
            bandwidth,
        }
    }
}

/// Allocation seed for the standard workload (see [`standard_workload`]).
pub const ALLOC_SEED: u64 = 7;

/// The standard workload: uniform-task DVB, seeded one-task-per-node
/// scatter allocation, calibrated timing (`τ_c = 50 µs`; `τ_m/τ_c` = 1 at
/// B=64, 0.5 at B=128).
///
/// The paper does not specify its task allocation (it is an input produced
/// by a separate mapping step) but its evaluation implicitly assumes one
/// task per processor; we use a seeded random *distinct* placement as the
/// neutral choice. The allocation-strategy ablation bench shows how the
/// choice moves both wormhole inconsistency and scheduled-routing
/// feasibility.
pub fn standard_workload(platform: &Platform) -> (TaskFlowGraph, Allocation, Timing) {
    let tfg = dvb_uniform(DVB_MODELS);
    let alloc = sr::mapping::random_distinct(&tfg, platform.topo.as_ref(), ALLOC_SEED)
        .expect("64 nodes fit the DVB task count");
    let timing = Timing::calibrated_dvb(platform.bandwidth);
    (tfg, alloc, timing)
}

/// Regenerates one Fig. 5/6 series: peak utilization vs load, LSD-to-MSD vs
/// `AssignPaths`, on the given platform.
pub fn figure_utilization(platform: &Platform, seed: u64) -> Vec<UtilizationPoint> {
    let (tfg, alloc, timing) = standard_workload(platform);
    let tau_c = timing.longest_task(&tfg);
    let topo = platform.topo.as_ref();
    // Load points are independent; sweep them across all cores (order is
    // preserved, each point is deterministic, so the series is identical
    // to a serial sweep).
    sr_par::par_map(&sweep_periods(tau_c), 0, |&period| {
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask)
            .expect("period ≥ τ_c by construction");
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let outcome = assign_paths(
            &tfg,
            topo,
            &alloc,
            &bounds,
            &intervals,
            &activity,
            &AssignPathsConfig {
                seed,
                ..AssignPathsConfig::default()
            },
        );
        UtilizationPoint {
            load: tau_c / period,
            lsd_peak: outcome.baseline_peak,
            final_peak: outcome.utilization.effective_peak(),
        }
    })
}

/// Regenerates one Fig. 7–10 series: wormhole vs scheduled routing
/// throughput and latency across the load sweep.
pub fn figure_performance(platform: &Platform, sim: &SimConfig) -> Vec<PerformancePoint> {
    let (tfg, alloc, timing) = standard_workload(platform);
    let tau_c = timing.longest_task(&tfg);
    let critical_path = timing.critical_path(&tfg);
    let topo = platform.topo.as_ref();

    // Per-load points are independent: simulate and compile them across
    // all cores. The inner compile is pinned serial — the sweep already
    // saturates the machine, and nesting pools would oversubscribe it.
    sr_par::par_map(&sweep_periods(tau_c), 0, |&period| {
        let load = tau_c / period;

        // --- Wormhole routing (simulated) ---
        let wr = WormholeSim::new(topo, &tfg, &alloc, &timing).expect("workload matches platform");
        let res = wr.run(period, sim).expect("valid run parameters");
        let (wr_throughput, wr_latency, wr_oi, wr_deadlock) =
            if res.records().len() >= sim.warmup + 2 {
                let ints = res.interval_stats();
                let lats = res.latency_stats();
                (
                    Spike {
                        // τ_in/τ_out: the *max* throughput comes from the
                        // *min* interval.
                        min: period / ints.max,
                        mid: period / ints.mean,
                        max: period / ints.min.max(f64::MIN_POSITIVE),
                    },
                    Spike {
                        min: lats.min / critical_path,
                        mid: lats.mean / critical_path,
                        max: lats.max / critical_path,
                    },
                    res.has_output_inconsistency(1e-6),
                    res.deadlocked(),
                )
            } else {
                (
                    Spike {
                        min: 0.0,
                        mid: 0.0,
                        max: 0.0,
                    },
                    Spike {
                        min: 0.0,
                        mid: 0.0,
                        max: 0.0,
                    },
                    true,
                    res.deadlocked(),
                )
            };

        // --- Scheduled routing (compiled) ---
        let sr = compile(
            topo,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig {
                parallelism: 1,
                ..CompileConfig::default()
            },
        )
        .map(|sched| {
            verify(&sched, topo, &tfg).expect("compiled schedules verify");
            SrPoint {
                throughput: 1.0,
                latency: sched.latency() / critical_path,
                utilization: sched.peak_utilization(),
            }
        })
        .map_err(|e| failure_stage(&e));

        PerformancePoint {
            load,
            period,
            wr_throughput,
            wr_latency,
            wr_oi,
            wr_deadlock,
            sr,
        }
    })
}

fn failure_stage(e: &CompileError) -> String {
    match e {
        CompileError::UtilizationExceeded { utilization } => {
            format!("U={utilization:.2}>1")
        }
        CompileError::AllocationInfeasible { .. } => "alloc-infeasible".into(),
        CompileError::IntervalUnschedulable { .. } => "interval-unsched".into(),
        other => format!("{other}"),
    }
}

/// Renders a utilization series as a Markdown table (Figs. 5–6 rows).
pub fn utilization_markdown(name: &str, points: &[UtilizationPoint]) -> String {
    let mut s =
        format!("### {name}\n\n| load | U (LSD-to-MSD) | U (AssignPaths) |\n|---|---|---|\n");
    for p in points {
        s.push_str(&format!(
            "| {:.3} | {:.3} | {:.3} |\n",
            p.load, p.lsd_peak, p.final_peak
        ));
    }
    s
}

/// Renders a performance series as a Markdown table (Figs. 7–10 rows).
pub fn performance_markdown(name: &str, points: &[PerformancePoint]) -> String {
    let mut s = format!(
        "### {name}\n\n| load | WR thr (min/mid/max) | WR lat (min/mid/max) | WR OI | SR thr | SR lat | SR status |\n|---|---|---|---|---|---|---|\n"
    );
    for p in points {
        let (sr_thr, sr_lat, sr_status) = match &p.sr {
            Ok(sp) => (
                format!("{:.3}", sp.throughput),
                format!("{:.3}", sp.latency),
                format!("ok (U={:.2})", sp.utilization),
            ),
            Err(stage) => ("—".into(), "—".into(), stage.clone()),
        };
        s.push_str(&format!(
            "| {:.3} | {:.3}/{:.3}/{:.3} | {:.3}/{:.3}/{:.3} | {} | {} | {} | {} |\n",
            p.load,
            p.wr_throughput.min,
            p.wr_throughput.mid,
            p.wr_throughput.max,
            p.wr_latency.min,
            p.wr_latency.mid,
            p.wr_latency.max,
            if p.wr_deadlock {
                "deadlock"
            } else if p.wr_oi {
                "yes"
            } else {
                "no"
            },
            sr_thr,
            sr_lat,
            sr_status,
        ));
    }
    s
}

/// Renders a performance series as CSV.
pub fn performance_csv(points: &[PerformancePoint]) -> String {
    let mut s = String::from(
        "load,period_us,wr_thr_min,wr_thr_mid,wr_thr_max,wr_lat_min,wr_lat_mid,wr_lat_max,wr_oi,sr_ok,sr_latency,sr_status\n",
    );
    for p in points {
        let (ok, lat, status) = match &p.sr {
            Ok(sp) => (1, format!("{:.6}", sp.latency), "ok".to_string()),
            Err(stage) => (0, String::new(), stage.clone()),
        };
        s.push_str(&format!(
            "{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{}\n",
            p.load,
            p.period,
            p.wr_throughput.min,
            p.wr_throughput.mid,
            p.wr_throughput.max,
            p.wr_latency.min,
            p.wr_latency.mid,
            p.wr_latency.max,
            u8::from(p.wr_oi),
            ok,
            lat,
            status
        ));
    }
    s
}

/// Renders a utilization series as CSV.
pub fn utilization_csv(points: &[UtilizationPoint]) -> String {
    let mut s = String::from("load,u_lsd,u_assignpaths\n");
    for p in points {
        s.push_str(&format!(
            "{:.4},{:.4},{:.4}\n",
            p.load, p.lsd_peak, p.final_peak
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_spans_the_load_axis() {
        let periods = sweep_periods(50.0);
        assert_eq!(periods.len(), LOAD_POINTS);
        assert!((periods[0] - 250.0).abs() < 1e-9); // load 0.2
        assert!((periods[LOAD_POINTS - 1] - 50.0).abs() < 1e-9); // load 1.0
        assert!(periods.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn platforms_have_64_nodes() {
        for p in [
            Platform::cube6(64.0),
            Platform::ghc444(64.0),
            Platform::torus8x8(64.0),
            Platform::torus444(64.0),
        ] {
            assert_eq!(p.topo.num_nodes(), 64, "{}", p.name);
        }
    }

    #[test]
    fn markdown_emitters_include_all_rows() {
        let pts = vec![UtilizationPoint {
            load: 0.5,
            lsd_peak: 1.2,
            final_peak: 0.9,
        }];
        let md = utilization_markdown("test", &pts);
        assert!(md.contains("0.500") && md.contains("1.200") && md.contains("0.900"));
        let csv = utilization_csv(&pts);
        assert_eq!(csv.lines().count(), 2);
    }
}
