//! `promlint` — a hand-rolled validator for the Prometheus text
//! exposition format (version 0.0.4), used by CI to lint what the
//! daemon's `/metrics` endpoint actually serves.
//!
//! Reads the exposition from a file argument (or stdin when absent) and
//! checks, line by line:
//!
//! * `# TYPE` declarations name a valid metric and one of the five
//!   types (`counter`, `gauge`, `summary`, `histogram`, `untyped`),
//!   with no duplicate declarations;
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * label sets parse (`name="value"` with `\\`, `\"`, `\n` escapes,
//!   valid label names, balanced braces);
//! * sample values are f64, `+Inf`, `-Inf`, or `NaN`, with an optional
//!   integer timestamp;
//! * every sample's name resolves to a preceding `# TYPE` declaration,
//!   where `_sum`/`_count` resolve to a declared summary or histogram
//!   and `_bucket` to a declared histogram;
//! * the exposition carries at least one sample.
//!
//! Exit 0 on a clean exposition; exit 1 with one diagnostic per
//! offending line otherwise.

use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// Splits `name{labels} value [timestamp]` and validates the label
/// block; returns the bare metric name and the remainder after the
/// label block (value and optional timestamp), or a diagnostic.
fn split_sample(line: &str) -> Result<(&str, &str), String> {
    let Some(brace) = line.find('{') else {
        let mut parts = line.splitn(2, [' ', '\t']);
        let name = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        return Ok((name, rest));
    };
    let name = &line[..brace];
    let after = &line[brace + 1..];
    // Walk the label block respecting string escapes to find its end.
    let mut in_string = false;
    let mut escaped = false;
    let mut end = None;
    for (i, c) in after.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '}' if !in_string => {
                end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        return Err("unterminated label block".to_string());
    };
    let labels = &after[..end];
    let mut rest = labels;
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            return Err(format!("label pair missing '=' in {{{labels}}}"));
        };
        let lname = rest[..eq].trim();
        if !valid_label_name(lname) {
            return Err(format!("invalid label name {lname:?}"));
        }
        let val = rest[eq + 1..].trim_start();
        if !val.starts_with('"') {
            return Err(format!("label {lname:?} value is not quoted"));
        }
        // Find the closing quote, honoring escapes.
        let mut close = None;
        let mut escaped = false;
        for (i, c) in val[1..].char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    close = Some(i + 1);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return Err(format!("label {lname:?} value has no closing quote"));
        };
        let tail = val[close + 1..].trim_start();
        rest = match tail.strip_prefix(',') {
            Some(t) => t.trim_start(),
            None if tail.is_empty() => "",
            None => return Err(format!("junk after label {lname:?} value")),
        };
    }
    Ok((name, after[end + 1..].trim()))
}

/// The declared base name a sample name resolves to, given the TYPE
/// table: summaries own `_sum`/`_count`, histograms additionally own
/// `_bucket`.
fn resolve<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            match types.get(base).map(String::as_str) {
                Some("summary") if suffix != "_bucket" => return Some(base),
                Some("histogram") => return Some(base),
                _ => {}
            }
        }
    }
    None
}

fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let n = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_ascii_whitespace();
            let (name, ty) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if !valid_metric_name(name) {
                errors.push(format!("line {n}: invalid metric name {name:?} in TYPE"));
                continue;
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                errors.push(format!("line {n}: unknown metric type {ty:?}"));
                continue;
            }
            if parts.next().is_some() {
                errors.push(format!("line {n}: trailing junk after TYPE declaration"));
                continue;
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                errors.push(format!("line {n}: duplicate TYPE declaration for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP lines and free comments are unconstrained.
        }
        match split_sample(line) {
            Err(why) => errors.push(format!("line {n}: {why}")),
            Ok((name, rest)) => {
                if !valid_metric_name(name) {
                    errors.push(format!("line {n}: invalid metric name {name:?}"));
                    continue;
                }
                let mut fields = rest.split_ascii_whitespace();
                let value = fields.next().unwrap_or("");
                if !valid_value(value) {
                    errors.push(format!("line {n}: invalid sample value {value:?}"));
                    continue;
                }
                if let Some(ts) = fields.next() {
                    if ts.parse::<i64>().is_err() {
                        errors.push(format!("line {n}: invalid timestamp {ts:?}"));
                        continue;
                    }
                }
                if fields.next().is_some() {
                    errors.push(format!("line {n}: trailing junk after sample"));
                    continue;
                }
                if resolve(name, &types).is_none() {
                    errors.push(format!(
                        "line {n}: sample {name} has no preceding TYPE declaration"
                    ));
                    continue;
                }
                samples += 1;
            }
        }
    }
    if samples == 0 {
        errors.push("exposition carries no samples".to_string());
    }
    errors
}

fn main() -> ExitCode {
    let mut text = String::new();
    match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(t) => text = t,
            Err(e) => {
                eprintln!("promlint: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("promlint: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let errors = lint(&text);
    if errors.is_empty() {
        println!(
            "promlint: ok ({} lines, {} TYPE declarations)",
            text.lines().count(),
            text.lines().filter(|l| l.starts_with("# TYPE ")).count()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("promlint: {e}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_expositions_pass() {
        let text = "# TYPE sr_serve_admit_total counter\nsr_serve_admit_total 2\n\
                    # TYPE sr_lat summary\nsr_lat{quantile=\"0.5\"} 12.5\n\
                    sr_lat_sum 25\nsr_lat_count 2\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn violations_are_reported() {
        assert!(lint("").iter().any(|e| e.contains("no samples")));
        let dup = "# TYPE a counter\n# TYPE a counter\na 1\n";
        assert!(lint(dup).iter().any(|e| e.contains("duplicate")));
        let undeclared = "mystery_metric 1\n";
        assert!(lint(undeclared)
            .iter()
            .any(|e| e.contains("no preceding TYPE")));
        let badval = "# TYPE a counter\na pancake\n";
        assert!(lint(badval)
            .iter()
            .any(|e| e.contains("invalid sample value")));
        let torn = "# TYPE a counter\na{x=\"unterminated} 1\n";
        assert!(!lint(torn).is_empty());
        // _sum resolves only to summary/histogram declarations.
        let sum_on_counter = "# TYPE a counter\na_sum 1\n";
        assert!(lint(sum_on_counter)
            .iter()
            .any(|e| e.contains("no preceding TYPE")));
    }

    #[test]
    fn escapes_and_special_values_parse() {
        let text = "# TYPE a gauge\na{path=\"C:\\\\x\\\"y\\n\",z=\"}\"} +Inf\na NaN 1234\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }
}
