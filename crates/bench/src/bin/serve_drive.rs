//! `serve_drive` — a framed-protocol load driver for the resident
//! daemon, used by the CI smoke job to push a multi-tenant admit/evict
//! workload through a live `srsched serve --socket` instance while its
//! HTTP exposition and audit journal are attached.
//!
//! ```text
//! serve_drive --socket /tmp/sr-serve.sock --tenants 24 --evict 4 --stats
//! serve_drive --socket /tmp/sr-serve.sock --shutdown
//! ```
//!
//! Flags: `--socket PATH` (required), `--tenants N` admits, `--evict K`
//! evictions of the first K tenants, `--nodes M` fabric width for
//! placement wrap-around (default 64), `--stats` for one delta scrape,
//! `--shutdown` to stop the daemon. Every response must carry
//! `"ok":true`; anything else exits 1 with the offending response on
//! stderr.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix::run()
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("serve_drive: unix sockets are unavailable on this platform");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use sr::serve::{read_frame, write_frame, FrameRead};
    use std::os::unix::net::UnixStream;
    use std::process::ExitCode;

    struct Opts {
        socket: String,
        tenants: usize,
        evict: usize,
        nodes: usize,
        stats: bool,
        shutdown: bool,
    }

    fn parse_args() -> Result<Opts, String> {
        let mut opts = Opts {
            socket: String::new(),
            tenants: 0,
            evict: 0,
            nodes: 64,
            stats: false,
            shutdown: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--socket" => opts.socket = value("--socket")?,
                "--tenants" => {
                    opts.tenants = value("--tenants")?
                        .parse()
                        .map_err(|e| format!("--tenants: {e}"))?;
                }
                "--evict" => {
                    opts.evict = value("--evict")?
                        .parse()
                        .map_err(|e| format!("--evict: {e}"))?;
                }
                "--nodes" => {
                    opts.nodes = value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?;
                }
                "--stats" => opts.stats = true,
                "--shutdown" => opts.shutdown = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if opts.socket.is_empty() {
            return Err("--socket PATH is required".to_string());
        }
        if opts.nodes < 4 {
            return Err("--nodes must be at least 4".to_string());
        }
        Ok(opts)
    }

    /// Tenant `i`: a two-task chain on its own node pair, wrapping
    /// around the fabric — the same shape the admission benchmarks use.
    fn admit_request(i: usize, nodes: usize) -> String {
        let a = (i * 2) % (nodes - 2);
        let b = a + 1;
        format!(
            "{{\"op\":\"admit\",\"tenant\":{{\"name\":\"drv{i}\",\
             \"tfg\":\"task a{i} 100\\ntask b{i} 100\\nmsg m{i} a{i} -> b{i} 256\",\
             \"placement\":[{a},{b}]}}}}"
        )
    }

    /// One request/response round trip; errors on transport failure or a
    /// response that is not `"ok":true`.
    fn round_trip(stream: &mut UnixStream, request: &str) -> Result<String, String> {
        write_frame(stream, request).map_err(|e| format!("write: {e}"))?;
        match read_frame(stream).map_err(|e| format!("read: {e}"))? {
            FrameRead::Frame(bytes) => {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                if text.contains("\"ok\":true") {
                    Ok(text)
                } else {
                    Err(format!("daemon refused {request}: {text}"))
                }
            }
            FrameRead::Eof => Err(format!("daemon hung up on {request}")),
            FrameRead::Oversized(n) => Err(format!("oversized {n}-byte response")),
        }
    }

    pub fn run() -> ExitCode {
        let opts = match parse_args() {
            Ok(o) => o,
            Err(why) => {
                eprintln!("serve_drive: {why}");
                return ExitCode::FAILURE;
            }
        };
        let mut stream = match UnixStream::connect(&opts.socket) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve_drive: cannot connect to {}: {e}", opts.socket);
                return ExitCode::FAILURE;
            }
        };
        let mut ops = 0usize;
        let steps: Result<(), String> = (|| {
            for i in 0..opts.tenants {
                round_trip(&mut stream, &admit_request(i, opts.nodes))?;
                ops += 1;
            }
            for i in 0..opts.evict.min(opts.tenants) {
                round_trip(
                    &mut stream,
                    &format!("{{\"op\":\"evict\",\"tenant\":\"drv{i}\"}}"),
                )?;
                ops += 1;
            }
            if opts.stats {
                let response = round_trip(&mut stream, "{\"op\":\"stats\"}")?;
                println!("{response}");
                ops += 1;
            }
            if opts.shutdown {
                round_trip(&mut stream, "{\"op\":\"shutdown\"}")?;
                ops += 1;
            }
            Ok(())
        })();
        match steps {
            Ok(()) => {
                eprintln!("serve_drive: {ops} ops acknowledged");
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("serve_drive: {why}");
                ExitCode::FAILURE
            }
        }
    }
}
