//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|fig10|claim|ablation|all] [--csv DIR]
//! figures scale [--platform NxN]... [--engine simplex|flow] [--flat]
//!               [--load L] [--json PATH] [--budget-s S]
//! ```
//!
//! Each figure prints a Markdown table of the same series the paper plots;
//! with `--csv DIR`, raw CSV files are written alongside.
//!
//! `scale` runs the compile-time scaling sweep (ROADMAP item 2): a tiled
//! DVB workload on N×N tori (default 8x8 → 32x32 → 64x64, the 64 → 1024 →
//! 4096-node trajectory), written as `BENCH_scale.json` (`--json` to move
//! it). `--budget-s` makes the run fail if any compile exceeds the
//! wall-clock budget — the CI smoke gate.

use std::path::PathBuf;

use sr::prelude::*;
use sr::sync::{simulate_sync, ClockEnsemble, SyncConfig};
use sr_bench::{
    figure_performance, figure_utilization, performance_csv, performance_markdown, scale_json,
    scale_markdown, scale_point, standard_workload, utilization_csv, utilization_markdown,
    Platform,
};

struct Args {
    what: String,
    csv_dir: Option<PathBuf>,
    scale_extents: Vec<usize>,
    scale_engine: AllocEngine,
    scale_flat: bool,
    scale_load: f64,
    scale_bandwidth: f64,
    scale_json_path: PathBuf,
    scale_budget_s: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        what: "all".to_string(),
        csv_dir: None,
        scale_extents: Vec::new(),
        scale_engine: AllocEngine::Flow,
        scale_flat: false,
        scale_load: 0.5,
        scale_bandwidth: 256.0,
        scale_json_path: PathBuf::from("BENCH_scale.json"),
        scale_budget_s: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(
                    argv.next().expect("--csv requires a directory"),
                ))
            }
            "--platform" => {
                let p = argv.next().expect("--platform requires NxN");
                let n = p
                    .split_once('x')
                    .filter(|(a, b)| a == b)
                    .and_then(|(a, _)| a.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("bad --platform '{p}' (expected NxN, e.g. 16x16)"));
                args.scale_extents.push(n);
            }
            "--engine" => {
                args.scale_engine = match argv.next().expect("--engine requires a value").as_str() {
                    "simplex" => AllocEngine::Simplex,
                    "flow" => AllocEngine::Flow,
                    other => panic!("bad --engine '{other}' (expected simplex|flow)"),
                }
            }
            "--flat" => args.scale_flat = true,
            "--load" => {
                args.scale_load = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--load requires a number")
            }
            "--bandwidth" => {
                args.scale_bandwidth = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bandwidth requires a number")
            }
            "--json" => {
                args.scale_json_path = PathBuf::from(argv.next().expect("--json requires a path"))
            }
            "--budget-s" => {
                args.scale_budget_s = Some(
                    argv.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--budget-s requires a number"),
                )
            }
            other => args.what = other.to_string(),
        }
    }
    args
}

fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

fn utilization_figure(id: &str, title: &str, platforms: Vec<Platform>, csv: &Option<PathBuf>) {
    println!("## {id}: {title}\n");
    // Compute every platform's series concurrently, then print in the
    // original order so the report is byte-identical to a serial run.
    let series = sr_par::par_map(&platforms, 0, |p| figure_utilization(p, 1));
    for (p, series) in platforms.iter().zip(series) {
        println!("{}", utilization_markdown(&p.name, &series));
        write_csv(
            csv,
            &format!("{id}_{}.csv", p.name.replace([' ', ',', '='], "_")),
            &utilization_csv(&series),
        );
    }
}

fn performance_figure(id: &str, title: &str, platforms: Vec<Platform>, csv: &Option<PathBuf>) {
    let sim = SimConfig::default();
    println!("## {id}: {title}\n");
    let series = sr_par::par_map(&platforms, 0, |p| figure_performance(p, &sim));
    for (p, series) in platforms.iter().zip(series) {
        println!("{}", performance_markdown(&p.name, &series));
        write_csv(
            csv,
            &format!("{id}_{}.csv", p.name.replace([' ', ',', '='], "_")),
            &performance_csv(&series),
        );
    }
}

/// The §3 Claim demonstration: two messages of different invocations share a
/// link; FCFS produces alternating output intervals.
fn claim_demo() {
    println!("## Claim (§3): FCFS link sharing causes output inconsistency\n");
    let topo = GeneralizedHypercube::binary(3).expect("valid");
    let tfg = sr::tfg::generators::claim_chain(1000, 6400, 64);
    let timing = Timing::new(64.0, 100.0); // exec 10, big tx 100
                                           // M1 goes N0->N1 on directed channel 0->1; M2 goes N0->N3, whose
                                           // dimension-order route N0->N1->N3 *starts on the same channel* — the
                                           // Claim's premise. The equivalent route N0->N2->N3 exists, which only
                                           // scheduled routing exploits.
    let alloc = Allocation::new(
        vec![NodeId(0), NodeId(1), NodeId(0), NodeId(3)],
        &tfg,
        &topo,
    )
    .expect("valid placement");
    let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).expect("valid sim");
    let res = sim
        .run(
            120.0,
            &SimConfig {
                invocations: 24,
                warmup: 4,
            },
        )
        .expect("valid run");
    println!("| invocation | output interval δ_j (µs) |\n|---|---|");
    let records = res.records();
    for w in records.windows(2).skip(4).take(12) {
        println!(
            "| {} | {:.1} |",
            w[1].index,
            w[1].output_time - w[0].output_time
        );
    }
    println!(
        "\nτ_in = 120 µs; OI = {}; spread = {:.1} µs\n",
        res.has_output_inconsistency(1e-6),
        res.interval_stats().spread()
    );

    // Scheduled routing on the identical workload: constant throughput.
    match compile(
        &topo,
        &tfg,
        &alloc,
        &timing,
        120.0,
        &CompileConfig::default(),
    ) {
        Ok(s) => {
            verify(&s, &topo, &tfg).expect("verifies");
            println!(
                "Scheduled routing compiles: constant δ = 120 µs, latency {:.1} µs (U = {:.2}).\n",
                s.latency(),
                s.peak_utilization()
            );
        }
        Err(e) => println!("Scheduled routing failed: {e}\n"),
    }
}

/// Ablation: how the allocation strategy moves WR inconsistency and SR
/// feasibility (binary 6-cube, B = 64).
fn allocation_ablation() {
    println!("## Ablation: allocation strategy (binary 6-cube, B=64)\n");
    let platform = Platform::cube6(64.0);
    let (tfg, _, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let tau_c = timing.longest_task(&tfg);
    let strategies: Vec<(&str, Allocation)> = vec![
        ("greedy-local", sr::mapping::greedy(&tfg, topo)),
        ("round-robin", sr::mapping::round_robin(&tfg, topo)),
        (
            "scatter-distinct(7)",
            sr::mapping::random_distinct(&tfg, topo, 7).expect("fits"),
        ),
        ("scatter-colliding(7)", sr::mapping::random(&tfg, topo, 7)),
        (
            "local-search",
            sr::mapping::local_search(&tfg, topo, 1, 400),
        ),
    ];
    println!("| strategy | load | WR OI | SR outcome |\n|---|---|---|---|");
    for (name, alloc) in &strategies {
        for load in [0.25, 0.5, 1.0] {
            let period = tau_c / load;
            let wr = WormholeSim::new(topo, &tfg, alloc, &timing).expect("valid");
            let res = wr.run(period, &SimConfig::default()).expect("valid");
            let sr = compile(
                topo,
                &tfg,
                alloc,
                &timing,
                period,
                &CompileConfig::default(),
            );
            println!(
                "| {name} | {load:.2} | {} | {} |",
                res.has_output_inconsistency(1e-6),
                match &sr {
                    Ok(s) => format!("ok (U={:.2})", s.peak_utilization()),
                    Err(e) => format!("{e}"),
                }
            );
        }
    }
    println!();
}

/// Ablation: the message-window policy trades latency against slack.
fn window_ablation() {
    println!("## Ablation: window policy (binary 6-cube, B=128, load 0.5)\n");
    let platform = Platform::cube6(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = 2.0 * timing.longest_task(&tfg);
    println!("| policy | result | latency (µs) | U |\n|---|---|---|---|");
    for (name, policy) in [
        ("LongestTask (paper)", WindowPolicy::LongestTask),
        ("FullPeriod", WindowPolicy::FullPeriod),
        ("Tight (zero slack)", WindowPolicy::Tight),
    ] {
        let config = CompileConfig {
            window_policy: policy,
            ..CompileConfig::default()
        };
        match compile(topo, &tfg, &alloc, &timing, period, &config) {
            Ok(s) => println!(
                "| {name} | ok | {:.1} | {:.2} |",
                s.latency(),
                s.peak_utilization()
            ),
            Err(e) => println!("| {name} | {e} | — | — |"),
        }
    }
    println!();
}

/// Ablation: routing policy under wormhole flow-control (§3's deterministic
/// vs adaptive vs §6's virtual channels) — inconsistency persists in all
/// three, which is the argument for scheduling instead.
fn routing_ablation() {
    println!("## Ablation: wormhole routing policy (binary 6-cube, B=64)\n");
    let platform = Platform::cube6(64.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let tau_c = timing.longest_task(&tfg);
    println!("| policy | load | OI | thr mid | lat mid (×Λ) |\n|---|---|---|---|---|");
    let critical = timing.critical_path(&tfg);
    for (name, adaptive, vc) in [
        ("deterministic", 1usize, 1usize),
        ("adaptive(16)", 16, 1),
        ("2 virtual channels", 1, 2),
    ] {
        for load in [0.5, 0.9] {
            let period = tau_c / load;
            let sim = WormholeSim::new(topo, &tfg, &alloc, &timing)
                .expect("valid")
                .with_adaptive_routing(adaptive)
                .expect("valid")
                .with_virtual_channels(vc)
                .expect("valid");
            let res = sim.run(period, &SimConfig::default()).expect("valid run");
            if res.records().len() < 40 {
                println!("| {name} | {load:.2} | deadlock | — | — |");
                continue;
            }
            println!(
                "| {name} | {load:.2} | {} | {:.3} | {:.2} |",
                res.has_output_inconsistency(1e-6),
                period / res.interval_stats().mean,
                res.latency_stats().mean / critical,
            );
        }
    }
    println!();
}

/// Ablation: CP synchronization tightness vs guard time vs feasibility
/// (the §7 study).
fn sync_ablation() {
    println!("## Ablation: CP synchronization tightness (binary 6-cube, B=128, load 0.8)\n");
    let platform = Platform::cube6(128.0);
    let (tfg, alloc, timing) = standard_workload(&platform);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / 0.8;
    let clocks = ClockEnsemble::random(topo.num_nodes(), 1, 50.0, 5.0);
    println!("| sync interval (µs) | max skew (µs) | guard (µs) | schedule |");
    println!("|---|---|---|---|");
    for interval in [100.0, 1_000.0, 10_000.0, 100_000.0] {
        let cfg = SyncConfig {
            interval,
            ..SyncConfig::default()
        };
        let outcome = simulate_sync(topo, NodeId(0), &clocks, &cfg, 30, 9);
        let guard = outcome.required_guard();
        let compile_config = CompileConfig {
            guard_time: guard,
            ..CompileConfig::default()
        };
        let cell = match compile(topo, &tfg, &alloc, &timing, period, &compile_config) {
            Ok(s) => format!("ok, latency {:.1} µs", s.latency()),
            Err(e) => format!("{e}"),
        };
        println!(
            "| {interval:>8.0} | {:.3} | {guard:.3} | {cell} |",
            outcome.max_skew()
        );
    }
    println!();
}

/// The scaling sweep: compile + verify the tiled DVB workload on each N×N
/// torus, print the trajectory, write `BENCH_scale.json`, and enforce the
/// wall-clock budget. Returns false when the gate fails.
fn scale_sweep(args: &Args) -> bool {
    let extents = if args.scale_extents.is_empty() {
        vec![8, 32, 64, 128] // the 64 → 1024 → 4096 → 16384-node trajectory
    } else {
        args.scale_extents.clone()
    };
    println!(
        "## scale: tiled DVB compile trajectory (load {}, engine {:?}, {})\n",
        args.scale_load,
        args.scale_engine,
        if args.scale_flat {
            "flat".to_string()
        } else {
            "partitioned".to_string()
        }
    );
    let mut points = Vec::new();
    for &n in &extents {
        let point = scale_point(
            n,
            args.scale_bandwidth,
            args.scale_engine,
            !args.scale_flat,
            args.scale_load,
            sr_bench::ALLOC_SEED,
        );
        eprintln!(
            "{}: compile {:.1} ms, verify {:.1} ms",
            point.platform, point.compile_ms, point.verify_ms
        );
        points.push(point);
    }
    println!("{}", scale_markdown(&points));
    std::fs::write(&args.scale_json_path, scale_json(&points)).expect("write scale json");
    eprintln!("wrote {}", args.scale_json_path.display());

    let mut ok = true;
    for p in &points {
        // The trajectory is gated on feasibility first, then wall-clock.
        if let Err(e) = &p.outcome {
            eprintln!("INFEASIBLE: {}: {e}", p.platform);
            ok = false;
        }
        if let Some(budget) = args.scale_budget_s {
            if p.compile_ms > budget * 1e3 {
                eprintln!(
                    "BUDGET EXCEEDED: {} compiled in {:.1} ms > {budget} s",
                    p.platform, p.compile_ms
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() -> std::process::ExitCode {
    let args = parse_args();
    if args.what == "scale" {
        return if scale_sweep(&args) {
            std::process::ExitCode::SUCCESS
        } else {
            std::process::ExitCode::FAILURE
        };
    }
    let csv = args.csv_dir;
    let all = args.what == "all";

    if all || args.what == "claim" {
        claim_demo();
    }
    if all || args.what == "fig5" {
        utilization_figure(
            "fig5",
            "peak utilization U vs load — GHCs, B=64 (LSD-to-MSD vs AssignPaths)",
            vec![Platform::cube6(64.0), Platform::ghc444(64.0)],
            &csv,
        );
    }
    if all || args.what == "fig6" {
        utilization_figure(
            "fig6",
            "peak utilization U vs load — tori, B=64 (LSD-to-MSD vs AssignPaths)",
            vec![Platform::torus8x8(64.0), Platform::torus444(64.0)],
            &csv,
        );
    }
    if all || args.what == "fig7" {
        performance_figure(
            "fig7",
            "DVB on binary 6-cube — WR vs SR throughput & latency",
            vec![Platform::cube6(64.0), Platform::cube6(128.0)],
            &csv,
        );
    }
    if all || args.what == "fig8" {
        performance_figure(
            "fig8",
            "DVB on 4x4x4 GHC — WR vs SR throughput & latency",
            vec![Platform::ghc444(64.0), Platform::ghc444(128.0)],
            &csv,
        );
    }
    if all || args.what == "fig9" {
        performance_figure(
            "fig9",
            "DVB on 8x8 torus, B=128 — WR vs SR throughput & latency",
            vec![Platform::torus8x8(128.0)],
            &csv,
        );
    }
    if all || args.what == "fig10" {
        performance_figure(
            "fig10",
            "DVB on 4x4x4 torus, B=128 — WR vs SR throughput & latency",
            vec![Platform::torus444(128.0)],
            &csv,
        );
    }
    if all || args.what == "ablation" {
        allocation_ablation();
        window_ablation();
        routing_ablation();
        sync_ablation();
    }
    std::process::ExitCode::SUCCESS
}
