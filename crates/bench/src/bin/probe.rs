//! Quick exploratory probe of the experiment space (not a published
//! figure): prints the qualitative behavior at a few load points so the
//! workload constants can be sanity-checked against the paper's findings.

use sr::prelude::SimConfig;
use sr_bench::{figure_performance, figure_utilization, Platform};

fn main() {
    let quick = SimConfig {
        invocations: 40,
        warmup: 6,
    };
    for platform in [
        Platform::cube6(64.0),
        Platform::cube6(128.0),
        Platform::ghc444(64.0),
        Platform::torus8x8(128.0),
        Platform::torus444(128.0),
        Platform::torus8x8(64.0),
    ] {
        println!("== {} ==", platform.name);
        let util = figure_utilization(&platform, 1);
        for p in util.iter().step_by(3) {
            println!(
                "  load {:.2}: U_lsd={:.2} U_final={:.2}",
                p.load, p.lsd_peak, p.final_peak
            );
        }
        let perf = figure_performance(&platform, &quick);
        for p in perf.iter().step_by(2) {
            println!(
                "  load {:.2}: WR thr {:.2}/{:.2}/{:.2} OI={} dead={} | SR {:?}",
                p.load,
                p.wr_throughput.min,
                p.wr_throughput.mid,
                p.wr_throughput.max,
                p.wr_oi,
                p.wr_deadlock,
                p.sr.as_ref()
                    .map(|s| (s.latency, s.utilization))
                    .map_err(|e| e.clone()),
            );
        }
    }
}
