//! `metrics_gate` — the CI metrics-regression gate.
//!
//! Regenerates a deterministic metrics document for one of the pinned gate
//! workloads and either writes it as the golden baseline or checks the
//! current build against the checked-in one:
//!
//! * `torus4x4` (default) — the torus 4×4 DVB figure workload:
//!   serial-compile counters at three loads, the flow-engine counter
//!   namespace at the middle one, plus the WR/SR output-interval statistics
//!   at the highest.
//! * `scale16` — the 16×16 scaling-fabric point from the scale smoke run
//!   (`scale_workload(16, ...)` at load 0.5): flat and band-partitioned
//!   serial-compile counters, gating the compile pipeline's counter values
//!   at 256 nodes where the partitioned path actually splits work.
//! * `serve` — a fixed admission session against the resident daemon on a
//!   4×4 torus (admit, duplicate, contended adapt, batch, replay, typed
//!   errors, scrape): the full `serve.*` counter namespace, which is
//!   deterministic because admissions run the serial compile walk and the
//!   ladder is a pure function of the tenant table.
//!
//! ```text
//! metrics_gate --write [--workload W] [PATH]   # regenerate the baseline
//! metrics_gate --check [--workload W] [PATH]   # CI: fail on drift
//! metrics_gate --check --inject-drift [PATH]   # CI negative test: must fail
//! ```
//!
//! `PATH` defaults to `results/metrics_baseline_<workload>_dvb.json`. Exit
//! status is nonzero on any violation (and on a *passing* check under
//! `--inject-drift`, which would mean the gate is blind).

use std::fmt::Write as _;
use std::process::ExitCode;

use sr::obs::OiReport;
use sr::prelude::*;
use sr_bench::gate::{compare_metrics, flatten_json, FLOAT_TOL};
use sr_bench::{scale_bands, scale_workload};

const DEFAULT_PATH_TORUS4X4: &str = "results/metrics_baseline_torus4x4_dvb.json";
const DEFAULT_PATH_SCALE16: &str = "results/metrics_baseline_scale16_dvb.json";
const DEFAULT_PATH_SERVE: &str = "results/metrics_baseline_serve.json";
/// Loads gated for compile counters; the last one also drives the OI stats.
const LOADS: [f64; 3] = [0.5, 0.7, 0.85];
/// The single load gated on the 16×16 scaling point (matches the scale
/// smoke sweep's lightest point, so CI compiles it anyway).
const SCALE_LOAD: f64 = 0.5;

fn oi_json(r: &OiReport) -> String {
    let s = r.interval_summary.unwrap_or_default();
    format!(
        "{{\"outputs\": {}, \"min_interval_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \
         \"max_us\": {}, \"max_deviation_us\": {}, \"stalls\": {}, \
         \"cross_invocation_stalls\": {}}}",
        r.outputs.len(),
        r.min_interval_us,
        s.p50,
        s.p95,
        s.max,
        r.max_deviation_us,
        r.stalls.len(),
        r.cross_invocation_stalls()
    )
}

fn counters_json(doc: &mut String, rec: &MetricsRecorder) {
    for (j, (name, v)) in rec.counters().iter().enumerate() {
        let _ = write!(doc, "{}\"{name}\": {v}", if j == 0 { "" } else { ", " });
    }
}

/// Builds the metrics document for the torus 4×4 DVB workload. Everything
/// in it is deterministic: compiles run serially (`parallelism: 1`), the
/// simulator core is single-threaded, and the replay is a pure function of
/// the schedule.
fn build_document_torus4x4() -> String {
    let topo = Torus::new(&[4, 4]).expect("torus 4x4");
    let tfg = dvb_uniform(10);
    let alloc = sr::mapping::random_distinct(&tfg, &topo, 7).expect("16 nodes fit");
    let timing = Timing::calibrated_dvb(128.0);
    let tau_c = timing.longest_task(&tfg);
    let config = CompileConfig {
        parallelism: 1,
        ..CompileConfig::default()
    };

    let mut doc = String::from("{\n\"workload\": \"torus4x4_dvb\",\n\"loads\": {");
    let mut last_schedule = None;
    for (i, &load) in LOADS.iter().enumerate() {
        let rec = MetricsRecorder::new();
        let sched = sr::core::compile_with_recorder(
            &topo,
            &tfg,
            &alloc,
            &timing,
            tau_c / load,
            &config,
            &rec,
        )
        .expect("gate loads compile");
        let _ = write!(
            doc,
            "{}\n\"{load}\": {{\"counters\": {{",
            if i == 0 { "" } else { "," }
        );
        counters_json(&mut doc, &rec);
        doc.push_str("}}");
        last_schedule = Some(sched);
    }
    doc.push_str("\n},\n");

    // Flow-engine counter namespace: the same workload at the middle load,
    // compiled with the min-cost-flow allocation backend. Only the flow
    // engine emits `alloc_flow.*`, so this section gates the namespace
    // without perturbing the simplex sections above.
    let flow_config = CompileConfig {
        alloc_engine: AllocEngine::Flow,
        ..config.clone()
    };
    let rec = MetricsRecorder::new();
    sr::core::compile_with_recorder(
        &topo,
        &tfg,
        &alloc,
        &timing,
        tau_c / LOADS[1],
        &flow_config,
        &rec,
    )
    .expect("flow gate load compiles");
    let _ = write!(doc, "\"flow\": {{\n\"{}\": {{\"counters\": {{", LOADS[1]);
    counters_json(&mut doc, &rec);
    doc.push_str("}}\n},\n");

    // OI statistics at the highest gated load, wormhole and scheduled.
    let period = tau_c / LOADS[LOADS.len() - 1];
    let cfg = SimConfig::default();
    let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).expect("sim builds");
    let cap: usize = sim.routes().iter().map(|r| 2 + 3 * r.len()).sum::<usize>() + 1;
    let sink = RingEventSink::with_capacity(cap * cfg.invocations + 1024);
    sim.run_with_events(period, &cfg, &sink).expect("sim runs");
    let wr = analyze_oi(&sink.events(), period, cfg.warmup);
    let sched = last_schedule.expect("at least one load");
    let sr_events =
        replay_events(&sched, &tfg, &timing, cfg.invocations).expect("schedule replays");
    let sr = analyze_oi(&sr_events, period, cfg.warmup);
    let _ = write!(
        doc,
        "\"oi\": {{\n\"wr\": {},\n\"sr\": {}\n}}\n}}\n",
        oi_json(&wr),
        oi_json(&sr)
    );
    doc
}

/// Builds the metrics document for the 16×16 scaling-fabric point: the
/// `scale_workload` farm at load 0.5, compiled serially flat and with the
/// 4-band row partition (simplex), plus the same partitioned point under
/// the min-cost-flow engine so the Dijkstra kernel's work counts
/// (`alloc_flow.dijkstra_pops`, `alloc_flow.potential_reuse_hits`, …) are
/// pinned at scale. No simulator section — at 256 nodes the gate's job is
/// the compile pipeline's counter values, and the scale smoke run already
/// exercises the same point for wall-clock figures.
fn build_document_scale16() -> String {
    let (platform, tfg, alloc, timing) = scale_workload(16, 256.0, 7);
    let topo = platform.topo.as_ref();
    let period = timing.longest_task(&tfg) / SCALE_LOAD;

    let mut doc = String::from("{\n\"workload\": \"scale16_dvb\",\n");
    for (section, partition, alloc_engine) in [
        ("flat", 0usize, AllocEngine::Simplex),
        ("partitioned", scale_bands(16), AllocEngine::Simplex),
        ("flow", scale_bands(16), AllocEngine::Flow),
    ] {
        let config = CompileConfig {
            parallelism: 1,
            partition,
            alloc_engine,
            ..CompileConfig::default()
        };
        let rec = MetricsRecorder::new();
        sr::core::compile_with_recorder(topo, &tfg, &alloc, &timing, period, &config, &rec)
            .expect("scale16 gate point compiles");
        let _ = write!(
            doc,
            "\"{section}\": {{\n\"{SCALE_LOAD}\": {{\"counters\": {{"
        );
        counters_json(&mut doc, &rec);
        doc.push_str("}}\n},\n");
    }
    doc.truncate(doc.len() - 2);
    doc.push_str("\n}\n");
    doc
}

/// Builds the metrics document for the serve workload: a fixed framed
/// request session against a resident 4×4-torus daemon, covering every
/// ladder rung the fabric allows plus the typed-error taxonomy. The whole
/// `serve.*` namespace (and the `compile.*` counters of the standalone
/// compiles the session triggers) is deterministic: compiles run serially,
/// batches precompile with one thread, and the degradation ladder is a
/// pure function of the tenant table.
fn build_document_serve() -> String {
    let topo = Torus::new(&[4, 4]).expect("torus 4x4");
    let cfg = sr::serve::ServeConfig {
        period: 100.0,
        timing: Timing::new(64.0, 10.0),
        compile: CompileConfig {
            parallelism: 1,
            ..CompileConfig::default()
        },
        batch_threads: 1,
        ..sr::serve::ServeConfig::default()
    };
    let mut daemon = sr::serve::Daemon::new(sr::serve::Engine::new(Box::new(topo), cfg));
    let chain = |i: usize, a: usize, b: usize| {
        format!(
            "{{\"op\":\"admit\",\"tenant\":{{\"name\":\"cam{i}\",\"tfg\":\
             \"task a{i} 100\\ntask b{i} 100\\nmsg m{i} a{i} -> b{i} 256\",\
             \"placement\":[{a},{b}]}}}}"
        )
    };
    let session = [
        chain(0, 0, 1),                    // fast admission
        chain(0, 0, 1),                    // duplicate_tenant
        chain(1, 5, 6),                    // second fast admission
        chain(2, 0, 1),                    // contends with cam0: adapt rung
        "{\"op\":\"admit_batch\",\"tenants\":[\
         {\"name\":\"cam3\",\"tfg\":\"task a3 100\\ntask b3 100\\nmsg m3 a3 -> b3 512\",\"placement\":[8,9]},\
         {\"name\":\"cam4\",\"tfg\":\"task a4 100\\ntask b4 100\\nmsg m4 a4 -> b4 512\",\"placement\":[10,11]}]}"
            .to_string(),
        "{\"op\":\"query\",\"tenant\":\"cam1\"}".to_string(),
        "{\"op\":\"evict\",\"tenant\":\"cam2\"}".to_string(),
        chain(2, 0, 1),                    // readmit on a changed ledger: adapt again
        "{\"op\":\"evict\",\"tenant\":\"cam2\"}".to_string(),
        chain(2, 0, 1),                    // readmit on the same ledger: memoized replay
        "{oops".to_string(),               // malformed
        "{\"op\":\"query\",\"tenant\":\"nobody\"}".to_string(), // unknown_tenant
        "{\"op\":\"stats\"}".to_string(),  // scrape
    ];
    for request in &session {
        let (_, shutdown) = daemon.handle_frame(request.as_bytes());
        assert!(!shutdown, "gate session must not shut the daemon down");
    }
    // One oversized frame, rejected at the framing layer.
    let _ = daemon.oversized_response(sr::serve::MAX_FRAME + 1);

    let mut doc = String::from("{\n\"workload\": \"serve\",\n\"serve\": {\"counters\": {");
    counters_json(&mut doc, daemon.recorder());
    doc.push_str("}}\n}\n");
    doc
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_write = false;
    let mut mode_check = false;
    let mut inject = false;
    let mut workload = String::from("torus4x4");
    let mut positional: Option<String> = None;
    let mut usage_error = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write" => mode_write = true,
            "--check" => mode_check = true,
            "--inject-drift" => inject = true,
            "--workload" => match it.next() {
                Some(w) => workload = w,
                None => usage_error = true,
            },
            _ if a.starts_with("--") => usage_error = true,
            _ => positional = Some(a),
        }
    }
    let default_path = match workload.as_str() {
        "torus4x4" => DEFAULT_PATH_TORUS4X4,
        "scale16" => DEFAULT_PATH_SCALE16,
        "serve" => DEFAULT_PATH_SERVE,
        other => {
            eprintln!("unknown workload {other:?} (expected torus4x4, scale16, or serve)");
            return ExitCode::FAILURE;
        }
    };
    let path = positional.as_deref().unwrap_or(default_path);
    if mode_write == mode_check || usage_error {
        eprintln!(
            "usage: metrics_gate --write|--check [--inject-drift] \
             [--workload torus4x4|scale16|serve] [PATH]"
        );
        return ExitCode::FAILURE;
    }

    let doc = match workload.as_str() {
        "scale16" => build_document_scale16(),
        "serve" => build_document_serve(),
        _ => build_document_torus4x4(),
    };
    if mode_write {
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics baseline to {path}");
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e} (generate with --write)");
            return ExitCode::FAILURE;
        }
    };
    let baseline = flatten_json(&baseline_text);
    let mut current = flatten_json(&doc);
    if inject {
        // Negative test: perturb one counter by 1 and one float past the
        // tolerance; the gate must catch both.
        let counter = current
            .keys()
            .find(|k| k.contains(".counters."))
            .cloned()
            .expect("document has counters");
        *current.get_mut(&counter).unwrap() += 1.0;
        // The scale16 document has no simulator section; the float probe
        // only applies to workloads that carry OI statistics.
        let float = ".oi.wr.max_deviation_us".to_string();
        if let Some(v) = current.get_mut(&float) {
            *v += 10.0 * FLOAT_TOL;
            println!("injected drift into {counter} and {float}");
        } else {
            println!("injected drift into {counter}");
        }
    }

    let violations = compare_metrics(&baseline, &current, FLOAT_TOL);
    if violations.is_empty() {
        println!(
            "metrics gate passed: {} metrics match {path}",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("metrics gate FAILED against {path}:");
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
