//! `metrics_gate` — the CI metrics-regression gate.
//!
//! Regenerates the deterministic metrics document for the torus 4×4 DVB
//! figure workload (serial-compile counters at three loads, the flow-engine
//! counter namespace at the middle one, plus the WR/SR output-interval
//! statistics at the highest) and either writes it as the
//! golden baseline or checks the current build against the checked-in one:
//!
//! ```text
//! metrics_gate --write [PATH]                # regenerate the baseline
//! metrics_gate --check [PATH]                # CI: fail on drift
//! metrics_gate --check --inject-drift [PATH] # CI negative test: must fail
//! ```
//!
//! `PATH` defaults to `results/metrics_baseline_torus4x4_dvb.json`. Exit
//! status is nonzero on any violation (and on a *passing* check under
//! `--inject-drift`, which would mean the gate is blind).

use std::fmt::Write as _;
use std::process::ExitCode;

use sr::obs::OiReport;
use sr::prelude::*;
use sr_bench::gate::{compare_metrics, flatten_json, FLOAT_TOL};

const DEFAULT_PATH: &str = "results/metrics_baseline_torus4x4_dvb.json";
/// Loads gated for compile counters; the last one also drives the OI stats.
const LOADS: [f64; 3] = [0.5, 0.7, 0.85];

fn oi_json(r: &OiReport) -> String {
    let s = r.interval_summary.unwrap_or_default();
    format!(
        "{{\"outputs\": {}, \"min_interval_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \
         \"max_us\": {}, \"max_deviation_us\": {}, \"stalls\": {}, \
         \"cross_invocation_stalls\": {}}}",
        r.outputs.len(),
        r.min_interval_us,
        s.p50,
        s.p95,
        s.max,
        r.max_deviation_us,
        r.stalls.len(),
        r.cross_invocation_stalls()
    )
}

/// Builds the metrics document. Everything in it is deterministic: compiles
/// run serially (`parallelism: 1`), the simulator core is single-threaded,
/// and the replay is a pure function of the schedule.
fn build_document() -> String {
    let topo = Torus::new(&[4, 4]).expect("torus 4x4");
    let tfg = dvb_uniform(10);
    let alloc = sr::mapping::random_distinct(&tfg, &topo, 7).expect("16 nodes fit");
    let timing = Timing::calibrated_dvb(128.0);
    let tau_c = timing.longest_task(&tfg);
    let config = CompileConfig {
        parallelism: 1,
        ..CompileConfig::default()
    };

    let mut doc = String::from("{\n\"workload\": \"torus4x4_dvb\",\n\"loads\": {");
    let mut last_schedule = None;
    for (i, &load) in LOADS.iter().enumerate() {
        let rec = MetricsRecorder::new();
        let sched = sr::core::compile_with_recorder(
            &topo,
            &tfg,
            &alloc,
            &timing,
            tau_c / load,
            &config,
            &rec,
        )
        .expect("gate loads compile");
        let _ = write!(
            doc,
            "{}\n\"{load}\": {{\"counters\": {{",
            if i == 0 { "" } else { "," }
        );
        for (j, (name, v)) in rec.counters().iter().enumerate() {
            let _ = write!(doc, "{}\"{name}\": {v}", if j == 0 { "" } else { ", " });
        }
        doc.push_str("}}");
        last_schedule = Some(sched);
    }
    doc.push_str("\n},\n");

    // Flow-engine counter namespace: the same workload at the middle load,
    // compiled with the min-cost-flow allocation backend. Only the flow
    // engine emits `alloc_flow.*`, so this section gates the namespace
    // without perturbing the simplex sections above.
    let flow_config = CompileConfig {
        alloc_engine: AllocEngine::Flow,
        ..config.clone()
    };
    let rec = MetricsRecorder::new();
    sr::core::compile_with_recorder(
        &topo,
        &tfg,
        &alloc,
        &timing,
        tau_c / LOADS[1],
        &flow_config,
        &rec,
    )
    .expect("flow gate load compiles");
    let _ = write!(doc, "\"flow\": {{\n\"{}\": {{\"counters\": {{", LOADS[1]);
    for (j, (name, v)) in rec.counters().iter().enumerate() {
        let _ = write!(doc, "{}\"{name}\": {v}", if j == 0 { "" } else { ", " });
    }
    doc.push_str("}}\n},\n");

    // OI statistics at the highest gated load, wormhole and scheduled.
    let period = tau_c / LOADS[LOADS.len() - 1];
    let cfg = SimConfig::default();
    let sim = WormholeSim::new(&topo, &tfg, &alloc, &timing).expect("sim builds");
    let cap: usize = sim.routes().iter().map(|r| 2 + 3 * r.len()).sum::<usize>() + 1;
    let sink = RingEventSink::with_capacity(cap * cfg.invocations + 1024);
    sim.run_with_events(period, &cfg, &sink).expect("sim runs");
    let wr = analyze_oi(&sink.events(), period, cfg.warmup);
    let sched = last_schedule.expect("at least one load");
    let sr_events =
        replay_events(&sched, &tfg, &timing, cfg.invocations).expect("schedule replays");
    let sr = analyze_oi(&sr_events, period, cfg.warmup);
    let _ = write!(
        doc,
        "\"oi\": {{\n\"wr\": {},\n\"sr\": {}\n}}\n}}\n",
        oi_json(&wr),
        oi_json(&sr)
    );
    doc
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode_write = args.iter().any(|a| a == "--write");
    let mode_check = args.iter().any(|a| a == "--check");
    let inject = args.iter().any(|a| a == "--inject-drift");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or(DEFAULT_PATH);
    if mode_write == mode_check {
        eprintln!("usage: metrics_gate --write|--check [--inject-drift] [PATH]");
        return ExitCode::FAILURE;
    }

    let doc = build_document();
    if mode_write {
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics baseline to {path}");
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e} (generate with --write)");
            return ExitCode::FAILURE;
        }
    };
    let baseline = flatten_json(&baseline_text);
    let mut current = flatten_json(&doc);
    if inject {
        // Negative test: perturb one counter by 1 and one float past the
        // tolerance; the gate must catch both.
        let counter = current
            .keys()
            .find(|k| k.contains(".counters."))
            .cloned()
            .expect("document has counters");
        *current.get_mut(&counter).unwrap() += 1.0;
        let float = ".oi.wr.max_deviation_us".to_string();
        *current.get_mut(&float).unwrap() += 10.0 * FLOAT_TOL;
        println!("injected drift into {counter} and {float}");
    }

    let violations = compare_metrics(&baseline, &current, FLOAT_TOL);
    if violations.is_empty() {
        println!(
            "metrics gate passed: {} metrics match {path}",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("metrics gate FAILED against {path}:");
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
