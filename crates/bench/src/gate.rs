//! The CI metrics gate: golden `metrics_json` baselines with declared drift
//! tolerances.
//!
//! The compile pipeline's counters (LP pivots, reroutes, subset sizes …) and
//! the WR/SR output-interval statistics are deterministic for a fixed
//! workload, so CI can pin them: [`flatten_json`] turns a metrics document
//! into `path → number` pairs, and [`compare_metrics`] diffs a current
//! document against a checked-in baseline — **exactly** for counter-like
//! paths, within [`FLOAT_TOL`] for float-valued statistics (which pass
//! through summary arithmetic). Structural drift (a path appearing or
//! disappearing) always fails. The `metrics_gate` binary wires this to
//! `results/metrics_baseline_*.json`.

use std::collections::BTreeMap;

/// Absolute tolerance for float-valued metrics (µs quantities and summary
/// statistics). Counters compare exactly regardless.
pub const FLOAT_TOL: f64 = 1e-6;

/// Flattens a JSON document into dot-separated `path → numeric leaf` pairs:
/// `{"counters":{"lp.pivots":3}}` → `{".counters.lp.pivots": 3.0}`.
/// Non-numeric leaves (strings, booleans, nulls) are ignored — the gate
/// pins numbers only. Array elements get their index as a path component.
///
/// # Panics
///
/// Panics on malformed JSON — baselines are generated, never hand-edited,
/// so a parse failure is itself a gate failure.
pub fn flatten_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    p.value(String::new(), &mut out);
    p.skip_ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage at byte {}", p.i);
    out
}

/// One gate violation, human-readable.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Dot-separated path of the offending metric.
    pub path: String,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.reason)
    }
}

/// Returns `true` when `path` must match exactly: counters, and any
/// integer-valued statistic (counts of outputs, stalls, events).
fn is_exact(path: &str) -> bool {
    path.contains(".counters.")
        || path.ends_with(".count")
        || path.ends_with("outputs")
        || path.ends_with("stalls")
}

/// Diffs `current` against `baseline` under the declared tolerances and
/// returns every violation (empty = gate passes). Counter-like paths
/// (`.counters.` components, `.count`/`outputs`/`stalls` suffixes) must
/// match exactly; everything else within `float_tol`;
/// paths present on one side only are violations.
pub fn compare_metrics(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    float_tol: f64,
) -> Vec<Violation> {
    let mut v = Vec::new();
    for (path, &want) in baseline {
        match current.get(path) {
            None => v.push(Violation {
                path: path.clone(),
                reason: "missing from current metrics".into(),
            }),
            Some(&got) => {
                let ok = if is_exact(path) {
                    got == want
                } else {
                    (got - want).abs() <= float_tol
                };
                if !ok {
                    v.push(Violation {
                        path: path.clone(),
                        reason: format!(
                            "baseline {want} vs current {got} ({})",
                            if is_exact(path) {
                                "exact match required".to_string()
                            } else {
                                format!("tolerance {float_tol}")
                            }
                        ),
                    });
                }
            }
        }
    }
    for path in current.keys() {
        if !baseline.contains_key(path) {
            v.push(Violation {
                path: path.clone(),
                reason: "not in baseline (regenerate with --write)".into(),
            });
        }
    }
    v
}

// ---------------------------------------------------------------------------
// Minimal JSON reader over the shapes `metrics_json` and the gate emit:
// objects, arrays, numbers, strings, true/false/null.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn value(&mut self, path: String, out: &mut BTreeMap<String, f64>) {
        self.skip_ws();
        match self.s[self.i] {
            b'{' => {
                self.i += 1;
                self.skip_ws();
                if self.s[self.i] == b'}' {
                    self.i += 1;
                    return;
                }
                loop {
                    self.skip_ws();
                    let key = self.string();
                    self.skip_ws();
                    assert_eq!(self.s[self.i], b':', "expected ':' at byte {}", self.i);
                    self.i += 1;
                    self.value(format!("{path}.{key}"), out);
                    self.skip_ws();
                    match self.s[self.i] {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return;
                        }
                        c => panic!("unexpected '{}' in object", c as char),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                self.skip_ws();
                if self.s[self.i] == b']' {
                    self.i += 1;
                    return;
                }
                let mut idx = 0usize;
                loop {
                    self.value(format!("{path}.{idx}"), out);
                    idx += 1;
                    self.skip_ws();
                    match self.s[self.i] {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return;
                        }
                        c => panic!("unexpected '{}' in array", c as char),
                    }
                }
            }
            b'"' => {
                let _ = self.string(); // non-numeric leaf: ignored
            }
            b't' => self.i += 4,
            b'f' => self.i += 5,
            b'n' => self.i += 4,
            _ => {
                let start = self.i;
                while self.i < self.s.len()
                    && matches!(
                        self.s[self.i],
                        b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                    )
                {
                    self.i += 1;
                }
                let n: f64 = std::str::from_utf8(&self.s[start..self.i])
                    .unwrap()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad number at byte {start}"));
                out.insert(path, n);
            }
        }
    }

    fn string(&mut self) -> String {
        assert_eq!(self.s[self.i], b'"', "expected string at byte {}", self.i);
        self.i += 1;
        let start = self.i;
        while self.s[self.i] != b'"' {
            // metrics names never contain escapes; reject rather than
            // silently mis-parse.
            assert_ne!(self.s[self.i], b'\\', "escape in metrics key");
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.s[start..self.i]).unwrap().into();
        self.i += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "counters": {"lp.pivots": 42, "reroutes": 3},
      "oi": {"wr": {"max_deviation_us": 109.18, "outputs": 120}},
      "note": "ignored",
      "flag": true,
      "nothing": null
    }"#;

    #[test]
    fn flatten_reaches_every_numeric_leaf() {
        let m = flatten_json(DOC);
        assert_eq!(m[".counters.lp.pivots"], 42.0);
        assert_eq!(m[".counters.reroutes"], 3.0);
        assert_eq!(m[".oi.wr.max_deviation_us"], 109.18);
        assert_eq!(m[".oi.wr.outputs"], 120.0);
        assert_eq!(m.len(), 4, "non-numeric leaves must be ignored: {m:?}");
    }

    #[test]
    fn flatten_handles_arrays_and_empties() {
        let m = flatten_json(r#"{"a": [1, 2.5], "b": {}, "c": []}"#);
        assert_eq!(m[".a.0"], 1.0);
        assert_eq!(m[".a.1"], 2.5);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn identical_documents_pass() {
        let m = flatten_json(DOC);
        assert!(compare_metrics(&m, &m, FLOAT_TOL).is_empty());
    }

    #[test]
    fn counter_drift_of_one_fails() {
        let base = flatten_json(DOC);
        let mut cur = base.clone();
        *cur.get_mut(".counters.lp.pivots").unwrap() += 1.0;
        let v = compare_metrics(&base, &cur, FLOAT_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, ".counters.lp.pivots");
        assert!(v[0].reason.contains("exact"), "{}", v[0]);
    }

    #[test]
    fn float_drift_respects_tolerance() {
        let base = flatten_json(DOC);
        let mut cur = base.clone();
        *cur.get_mut(".oi.wr.max_deviation_us").unwrap() += FLOAT_TOL / 2.0;
        assert!(compare_metrics(&base, &cur, FLOAT_TOL).is_empty());
        *cur.get_mut(".oi.wr.max_deviation_us").unwrap() += 1e-3;
        let v = compare_metrics(&base, &cur, FLOAT_TOL);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].reason.contains("tolerance"), "{}", v[0]);
    }

    #[test]
    fn integer_statistics_are_exact_even_outside_counters() {
        let base = flatten_json(DOC);
        let mut cur = base.clone();
        *cur.get_mut(".oi.wr.outputs").unwrap() -= 1.0;
        let v = compare_metrics(&base, &cur, FLOAT_TOL);
        assert_eq!(v.len(), 1);
        assert!(v[0].reason.contains("exact"), "{}", v[0]);
    }

    #[test]
    fn structural_drift_fails_both_ways() {
        let base = flatten_json(DOC);
        let mut cur = base.clone();
        cur.remove(".counters.reroutes");
        cur.insert(".counters.brand_new".into(), 1.0);
        let v = compare_metrics(&base, &cur, FLOAT_TOL);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.reason.contains("missing")));
        assert!(v.iter().any(|x| x.reason.contains("not in baseline")));
    }
}
