//! Minimal std-only data parallelism for the scheduled-routing compiler.
//!
//! The build environment cannot fetch `rayon`, so this crate provides the
//! one primitive the workspace needs: an order-preserving parallel map
//! over a slice, backed by `std::thread::scope` workers that pull indices
//! from a shared atomic counter (self-balancing for irregular item costs).
//!
//! Results are returned in input order regardless of completion order, so
//! callers get deterministic output as long as the mapped function is
//! itself deterministic per item.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads, with a floor of 1.
#[must_use]
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing parallelism knob: `0` means "auto" (all
/// hardware threads), anything else is taken literally.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        max_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items` with up to `threads` worker threads (`0` = auto),
/// returning results in input order.
///
/// `f` receives `(index, &item)`. With one effective thread (or one item)
/// the map runs inline on the caller's thread — no pool, no overhead — so
/// serial configurations pay nothing.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            let produced = match handle.join() {
                Ok(p) => p,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, r) in produced {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// [`par_map_indexed`] without the index.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, t| f(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [0, 1, 2, 7] {
            let out = par_map_indexed(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[9u32], 4, |x| *x + 1), vec![10]);
    }

    #[test]
    fn irregular_costs_balance() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |&x| {
            // Skewed work per item.
            (0..(x % 7) * 1000).fold(x, |acc, i| acc.wrapping_add(i))
        });
        let expect: Vec<u64> = items
            .iter()
            .map(|&x| (0..(x % 7) * 1000).fold(x, |acc, i| acc.wrapping_add(i)))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(&items, 4, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
