//! Property-based tests for TFG structure and time-bound assignment.

use proptest::prelude::*;
use sr_tfg::generators::{layered_random, LayeredParams};
use sr_tfg::{assign_time_bounds, Timing, WindowPolicy};

fn params() -> impl Strategy<Value = LayeredParams> {
    (1usize..5, 1usize..5, 0.0f64..1.0).prop_map(|(layers, width, p)| LayeredParams {
        layers,
        width,
        edge_probability: p,
        ops: (100, 2000),
        bytes: (32, 3200),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_graphs_are_well_formed(seed in any::<u64>(), p in params()) {
        let g = layered_random(seed, &p);
        prop_assert_eq!(g.num_tasks(), p.layers * p.width);
        // Topological order covers every task exactly once.
        let mut seen = vec![false; g.num_tasks()];
        for &t in g.topological_order() {
            prop_assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Messages respect the layering (src precedes dst in topo order).
        let mut pos = vec![0; g.num_tasks()];
        for (i, &t) in g.topological_order().iter().enumerate() {
            pos[t.index()] = i;
        }
        for m in g.messages() {
            prop_assert!(pos[m.src().index()] < pos[m.dst().index()]);
        }
    }

    #[test]
    fn critical_path_dominates_longest_task(seed in any::<u64>(), p in params()) {
        let g = layered_random(seed, &p);
        let t = Timing::new(64.0, 20.0);
        prop_assert!(t.critical_path(&g) >= t.longest_task(&g) - 1e-9);
    }

    #[test]
    fn time_bounds_invariants(
        seed in any::<u64>(),
        p in params(),
        period_factor in 1.0f64..5.0,
    ) {
        let g = layered_random(seed, &p);
        let timing = Timing::new(64.0, 20.0);
        let tau_c = timing.longest_task(&g);
        let period = tau_c * period_factor;
        let bounds = match assign_time_bounds(&g, &timing, period, WindowPolicy::LongestTask) {
            Ok(b) => b,
            // A message longer than the period is a legitimate rejection.
            Err(sr_tfg::TfgError::MessageExceedsPeriod { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        };
        for w in bounds.windows() {
            // Window always long enough for the payload.
            prop_assert!(w.window() >= w.duration() - 1e-9);
            // Folded release inside the frame.
            prop_assert!((0.0..period).contains(&w.release()));
            // Spans are ordered, disjoint, inside the frame, and sum to
            // min(window, period).
            let spans = w.spans();
            prop_assert!(!spans.is_empty() && spans.len() <= 2);
            let mut total = 0.0;
            let mut prev_end = -1.0;
            for &(s, e) in &spans {
                prop_assert!(s >= -1e-9 && e <= period + 1e-9);
                prop_assert!(e > s - 1e-9);
                prop_assert!(s > prev_end - 1e-9);
                prev_end = e;
                total += e - s;
            }
            let expect = w.window().min(period);
            prop_assert!((total - expect).abs() < 1e-6,
                "span total {total} != window {expect}");
        }
        // Task starts never precede their message windows' closes.
        for (id, m) in g.iter_messages() {
            let w = bounds.window(id);
            let src_end = bounds.task_end(m.src());
            let dst_start = bounds.task_start(m.dst());
            prop_assert!(dst_start + 1e-9 >= src_end + w.window());
        }
        // Latency is the max output completion.
        let max_out = g.outputs().iter()
            .map(|&t| bounds.task_end(t))
            .fold(0.0f64, f64::max);
        prop_assert!((bounds.latency() - max_out).abs() < 1e-9);
    }

    #[test]
    fn tight_windows_have_no_slack(seed in any::<u64>(), p in params()) {
        let g = layered_random(seed, &p);
        let timing = Timing::new(64.0, 20.0);
        let period = timing.longest_task(&g) * 4.0;
        if let Ok(bounds) = assign_time_bounds(&g, &timing, period, WindowPolicy::Tight) {
            for w in bounds.windows() {
                prop_assert!(w.is_no_slack());
            }
        }
    }
}
