//! A line-oriented text format for task-flow graphs.
//!
//! The format is deliberately trivial to write by hand or generate:
//!
//! ```text
//! # DVB-like fragment — comments and blank lines are ignored
//! task label 1925
//! task match0 400
//! task select 1536
//! msg a0 label -> match0 192
//! msg b0 match0 -> select 1536
//! ```
//!
//! * `task <name> <ops>` declares a task (names must be unique);
//! * `msg <name> <src> -> <dst> <bytes>` declares a message between
//!   previously declared tasks.
//!
//! [`TaskFlowGraph::to_text`] emits this format; [`from_text`] parses it;
//! the two round-trip.

use std::fmt::Write;

use crate::{TaskFlowGraph, TfgBuilder, TfgError};

/// Errors from parsing the text format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTfgError {
    /// A line did not match either directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Two tasks share a name.
    DuplicateTask {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The repeated name.
        name: String,
    },
    /// A message references an undeclared task.
    UnknownTask {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// The assembled graph failed validation (cycle, empty…).
    Graph(TfgError),
}

impl std::fmt::Display for ParseTfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTfgError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseTfgError::DuplicateTask { line, name } => {
                write!(f, "line {line}: task \"{name}\" already declared")
            }
            ParseTfgError::UnknownTask { line, name } => {
                write!(f, "line {line}: unknown task \"{name}\"")
            }
            ParseTfgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseTfgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTfgError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

/// Parses the text format described in the module docs.
///
/// # Errors
///
/// Returns a [`ParseTfgError`] locating the first offending line, or the
/// underlying graph-validation failure.
pub fn from_text(text: &str) -> Result<TaskFlowGraph, ParseTfgError> {
    let mut b = TfgBuilder::new();
    let mut names: std::collections::HashMap<String, crate::TaskId> =
        std::collections::HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        match tokens.as_slice() {
            ["task", name, ops] => {
                let ops: u64 = ops.parse().map_err(|_| ParseTfgError::BadLine {
                    line,
                    reason: format!("bad op count \"{ops}\""),
                })?;
                if names.contains_key(*name) {
                    return Err(ParseTfgError::DuplicateTask {
                        line,
                        name: name.to_string(),
                    });
                }
                names.insert(name.to_string(), b.task(*name, ops));
            }
            ["msg", mname, src, "->", dst, bytes] => {
                let bytes: u64 = bytes.parse().map_err(|_| ParseTfgError::BadLine {
                    line,
                    reason: format!("bad byte count \"{bytes}\""),
                })?;
                let &s = names.get(*src).ok_or_else(|| ParseTfgError::UnknownTask {
                    line,
                    name: src.to_string(),
                })?;
                let &d = names.get(*dst).ok_or_else(|| ParseTfgError::UnknownTask {
                    line,
                    name: dst.to_string(),
                })?;
                b.message(*mname, s, d, bytes)
                    .map_err(ParseTfgError::Graph)?;
            }
            _ => {
                return Err(ParseTfgError::BadLine {
                    line,
                    reason: format!("expected `task <name> <ops>` or `msg <name> <src> -> <dst> <bytes>`, got \"{stripped}\""),
                })
            }
        }
    }
    b.build().map_err(ParseTfgError::Graph)
}

impl TaskFlowGraph {
    /// Emits the graph in the text format parsed by [`from_text`]; the two
    /// round-trip (up to comments and whitespace).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (_, t) in self.iter_tasks() {
            let _ = writeln!(s, "task {} {}", t.name(), t.ops());
        }
        for (_, m) in self.iter_messages() {
            let _ = writeln!(
                s,
                "msg {} {} -> {} {}",
                m.name(),
                self.task(m.src()).name(),
                self.task(m.dst()).name(),
                m.bytes()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a 3-stage pipeline
task grab 1000
task warp 2000   # the slow one
task emit 500

msg frame grab -> warp 4096
msg clean warp -> emit 2048
";

    #[test]
    fn parses_sample() {
        let g = from_text(SAMPLE).unwrap();
        assert_eq!(g.num_tasks(), 3);
        assert_eq!(g.num_messages(), 2);
        assert_eq!(g.task(crate::TaskId(1)).name(), "warp");
        assert_eq!(g.message(crate::MessageId(0)).bytes(), 4096);
    }

    #[test]
    fn round_trips() {
        let g = crate::dvb(4);
        let text = g.to_text();
        let h = from_text(&text).unwrap();
        assert_eq!(g.num_tasks(), h.num_tasks());
        assert_eq!(g.num_messages(), h.num_messages());
        for (a, b) in g.tasks().iter().zip(h.tasks()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.ops(), b.ops());
        }
        for (a, b) in g.messages().iter().zip(h.messages()) {
            assert_eq!(a.bytes(), b.bytes());
            assert_eq!(a.src(), b.src());
            assert_eq!(a.dst(), b.dst());
        }
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let err = from_text("task a 10\nfrobnicate\n").unwrap_err();
        assert!(
            matches!(err, ParseTfgError::BadLine { line: 2, .. }),
            "{err}"
        );

        let err = from_text("task a x\n").unwrap_err();
        assert!(matches!(err, ParseTfgError::BadLine { line: 1, .. }));
    }

    #[test]
    fn reports_duplicate_and_unknown_tasks() {
        let err = from_text("task a 1\ntask a 2\n").unwrap_err();
        assert!(matches!(err, ParseTfgError::DuplicateTask { line: 2, .. }));

        let err = from_text("task a 1\nmsg m a -> ghost 5\n").unwrap_err();
        assert!(
            matches!(err, ParseTfgError::UnknownTask { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn propagates_graph_validation() {
        let err = from_text("task a 1\ntask b 1\nmsg x a -> b 0\n").unwrap_err();
        assert!(matches!(
            err,
            ParseTfgError::Graph(TfgError::ZeroBytes { .. })
        ));

        let err = from_text("").unwrap_err();
        assert!(matches!(err, ParseTfgError::Graph(TfgError::Empty)));
    }
}
