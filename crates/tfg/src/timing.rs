use crate::{Message, Task, TaskFlowGraph, TfgError};

/// Machine timing parameters: link bandwidth and processor speed.
///
/// The paper parameterizes every experiment by the link bandwidth `B`
/// (bytes/µs) and chooses application-processor speeds so that the ratio
/// `τ_m / τ_c` (longest message transmission time over longest task
/// execution time) is 1 at `B = 64` and 0.5 at `B = 128`.
///
/// # Examples
///
/// ```
/// use sr_tfg::Timing;
///
/// let t = Timing::new(64.0, 38.5);
/// assert_eq!(t.bandwidth(), 64.0);
/// assert!((t.tx_time_bytes(3200) - 50.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    bandwidth: f64,
    speed: f64,
}

impl Timing {
    /// Creates timing parameters from a link bandwidth (bytes/µs) and a
    /// processor speed (operations/µs).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite; use
    /// [`Timing::try_new`] for a fallible constructor.
    pub fn new(bandwidth: f64, speed: f64) -> Self {
        Self::try_new(bandwidth, speed).expect("timing parameters must be positive and finite")
    }

    /// Fallible variant of [`Timing::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TfgError::InvalidTiming`] if either parameter is
    /// non-positive or non-finite.
    pub fn try_new(bandwidth: f64, speed: f64) -> Result<Self, TfgError> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(TfgError::InvalidTiming {
                what: "bandwidth",
                value: bandwidth,
            });
        }
        if !(speed.is_finite() && speed > 0.0) {
            return Err(TfgError::InvalidTiming {
                what: "speed",
                value: speed,
            });
        }
        Ok(Timing { bandwidth, speed })
    }

    /// Timing calibrated the way the paper's evaluation is: processor speed
    /// is chosen so that the longest DVB task (`1925` ops) takes exactly as
    /// long as the longest DVB message (`3200` bytes) does at **64 bytes/µs**
    /// — i.e. `τ_c = 50 µs` regardless of the actual bandwidth, giving
    /// `τ_m/τ_c = 1` at B=64 and `0.5` at B=128.
    pub fn calibrated_dvb(bandwidth: f64) -> Self {
        let tau_c = crate::DVB_LONGEST_MESSAGE_BYTES as f64 / 64.0;
        Timing::new(bandwidth, crate::DVB_LONGEST_TASK_OPS as f64 / tau_c)
    }

    /// Link bandwidth in bytes/µs.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Processor speed in operations/µs.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Execution time of a task, in µs.
    pub fn exec_time(&self, task: &Task) -> f64 {
        task.ops() as f64 / self.speed
    }

    /// Transmission time of a message, in µs.
    pub fn tx_time(&self, message: &Message) -> f64 {
        self.tx_time_bytes(message.bytes())
    }

    /// Transmission time of a payload of the given size, in µs.
    pub fn tx_time_bytes(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// `τ_c`: the execution time of the longest task, in µs.
    ///
    /// # Panics
    ///
    /// Never panics for a valid graph (graphs always have ≥ 1 task).
    pub fn longest_task(&self, tfg: &TaskFlowGraph) -> f64 {
        tfg.tasks()
            .iter()
            .map(|t| self.exec_time(t))
            .fold(0.0, f64::max)
    }

    /// `τ_m`: the transmission time of the longest message, in µs (0 when
    /// the graph has no messages).
    pub fn longest_message(&self, tfg: &TaskFlowGraph) -> f64 {
        tfg.messages()
            .iter()
            .map(|m| self.tx_time(m))
            .fold(0.0, f64::max)
    }

    /// `Λ`: the critical-path length — the maximum, over all input→output
    /// chains, of the sum of task execution and message transmission times
    /// (paper §2). This is the minimum possible invocation latency.
    pub fn critical_path(&self, tfg: &TaskFlowGraph) -> f64 {
        let mut finish = vec![0.0f64; tfg.num_tasks()];
        for &t in tfg.topological_order() {
            let ready = tfg
                .incoming(t)
                .iter()
                .map(|&m| {
                    let msg = tfg.message(m);
                    finish[msg.src().0] + self.tx_time(msg)
                })
                .fold(0.0, f64::max);
            finish[t.0] = ready + self.exec_time(tfg.task(t));
        }
        finish.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TfgBuilder;

    fn chain() -> TaskFlowGraph {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 100);
        let c = b.task("c", 200);
        let d = b.task("d", 50);
        b.message("ac", a, c, 640).unwrap();
        b.message("cd", c, d, 320).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn try_new_rejects_bad_params() {
        assert!(Timing::try_new(0.0, 1.0).is_err());
        assert!(Timing::try_new(1.0, -3.0).is_err());
        assert!(Timing::try_new(f64::NAN, 1.0).is_err());
        assert!(Timing::try_new(1.0, f64::INFINITY).is_err());
        assert!(Timing::try_new(64.0, 38.5).is_ok());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn new_panics_on_bad_params() {
        let _ = Timing::new(-1.0, 1.0);
    }

    #[test]
    fn exec_and_tx_times() {
        let g = chain();
        let t = Timing::new(64.0, 10.0);
        assert_eq!(t.exec_time(g.task(crate::TaskId(0))), 10.0);
        assert_eq!(t.tx_time(g.message(crate::MessageId(0))), 10.0);
        assert_eq!(t.longest_task(&g), 20.0);
        assert_eq!(t.longest_message(&g), 10.0);
    }

    #[test]
    fn critical_path_of_chain_is_sum() {
        let g = chain();
        let t = Timing::new(64.0, 10.0);
        // 10 + 10 + 20 + 5 + 5 = 50.
        assert!((t.critical_path(&g) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_takes_maximum_branch() {
        let mut b = TfgBuilder::new();
        let s = b.task("s", 10);
        let fast = b.task("fast", 10);
        let slow = b.task("slow", 1000);
        let t = b.task("t", 10);
        b.message("sf", s, fast, 10).unwrap();
        b.message("ss", s, slow, 10).unwrap();
        b.message("ft", fast, t, 10).unwrap();
        b.message("st", slow, t, 10).unwrap();
        let g = b.build().unwrap();
        let timing = Timing::new(10.0, 1.0);
        // s(10) + m(1) + slow(1000) + m(1) + t(10)
        assert!((timing.critical_path(&g) - 1022.0).abs() < 1e-12);
    }

    #[test]
    fn calibrated_dvb_tau_ratio() {
        let t64 = Timing::calibrated_dvb(64.0);
        let t128 = Timing::calibrated_dvb(128.0);
        let tau_c = 1925.0 / t64.speed();
        assert!((t64.tx_time_bytes(3200) / tau_c - 1.0).abs() < 1e-12);
        assert!((t128.tx_time_bytes(3200) / tau_c - 0.5).abs() < 1e-12);
        assert_eq!(t64.speed(), t128.speed());
    }
}
