use std::error::Error;
use std::fmt;

use crate::{MessageId, TaskId};

/// Errors arising while building or analyzing a task-flow graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TfgError {
    /// The graph has no tasks.
    Empty,
    /// A message references a task id that does not exist.
    UnknownTask {
        /// The out-of-range task id.
        task: TaskId,
        /// Number of tasks actually present.
        num_tasks: usize,
    },
    /// A message's source equals its destination.
    SelfLoop {
        /// The offending task.
        task: TaskId,
    },
    /// A zero-byte message was declared.
    ZeroBytes {
        /// Name of the offending message.
        name: String,
    },
    /// The precedence relation contains a cycle, so the graph is not a DAG.
    Cycle {
        /// A task known to lie on a cycle.
        witness: TaskId,
    },
    /// Time-bound assignment was asked for a period shorter than the longest
    /// task `τ_c`, which the paper shows leads to infinite accumulation at
    /// the slowest task's input.
    PeriodTooShort {
        /// The rejected period, in µs.
        period: f64,
        /// The longest task execution time `τ_c`, in µs.
        longest_task: f64,
    },
    /// A message's transmission time exceeds the invocation period, so it can
    /// never be pipelined at that rate.
    MessageExceedsPeriod {
        /// The offending message.
        message: MessageId,
        /// Its transmission time, in µs.
        duration: f64,
        /// The invocation period, in µs.
        period: f64,
    },
    /// A non-finite or non-positive timing parameter was supplied.
    InvalidTiming {
        /// Description of the offending parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for TfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfgError::Empty => write!(f, "task-flow graph has no tasks"),
            TfgError::UnknownTask { task, num_tasks } => {
                write!(
                    f,
                    "message references {task} but only {num_tasks} tasks exist"
                )
            }
            TfgError::SelfLoop { task } => {
                write!(f, "message from {task} to itself is not allowed")
            }
            TfgError::ZeroBytes { name } => {
                write!(f, "message \"{name}\" transfers zero bytes")
            }
            TfgError::Cycle { witness } => {
                write!(f, "precedence relation has a cycle through {witness}")
            }
            TfgError::PeriodTooShort {
                period,
                longest_task,
            } => write!(
                f,
                "period {period} µs is shorter than the longest task ({longest_task} µs)"
            ),
            TfgError::MessageExceedsPeriod {
                message,
                duration,
                period,
            } => write!(
                f,
                "{message} needs {duration} µs to transmit, longer than the period {period} µs"
            ),
            TfgError::InvalidTiming { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
        }
    }
}

impl Error for TfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(TfgError::Empty.to_string().contains("no tasks"));
        assert!(TfgError::Cycle { witness: TaskId(3) }
            .to_string()
            .contains("T3"));
        assert!(TfgError::PeriodTooShort {
            period: 1.0,
            longest_task: 2.0
        }
        .to_string()
        .contains("shorter"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TfgError>();
    }
}
