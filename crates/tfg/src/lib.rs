//! Task-flow graphs (TFGs) for task-level pipelining.
//!
//! A TFG (Shukla & Agrawal, ISCA '91, §2) is a directed acyclic graph whose
//! vertices are **tasks** (sequential blocks of `C_i` operations) and whose
//! edges are **messages** (`m_i` bytes sent from the source task's completion
//! to the destination task, which cannot start before the message arrives).
//! A TFG is invoked once per periodically arriving input; *task-level
//! pipelining* overlaps the invocations so the machine sustains one output
//! per input period `τ_in`.
//!
//! This crate provides:
//!
//! * the TFG model with validation ([`TaskFlowGraph`], [`TfgBuilder`]);
//! * timing analysis ([`Timing`]): task execution times, message transmission
//!   times, the longest task `τ_c`, the longest message `τ_m`, and the
//!   critical-path length `Λ`;
//! * the **message time-bound assignment** of §4 ([`assign_time_bounds`]):
//!   every message gets a release (its source task's completion) and a
//!   deadline one message-window later, all folded into a single period frame
//!   `[0, τ_in)` — the foundation scheduled routing builds on;
//! * the reconstructed **DARPA Vision Benchmark** TFG of Fig. 1 ([`dvb`]) and
//!   a family of synthetic generators ([`generators`]).
//!
//! # Examples
//!
//! ```
//! use sr_tfg::{TfgBuilder, Timing};
//!
//! # fn main() -> Result<(), sr_tfg::TfgError> {
//! let mut b = TfgBuilder::new();
//! let grab = b.task("grab", 1000);
//! let warp = b.task("warp", 2000);
//! b.message("frame", grab, warp, 4096)?;
//! let tfg = b.build()?;
//!
//! let timing = Timing::new(64.0, 40.0); // bytes/µs, ops/µs
//! assert_eq!(timing.longest_task(&tfg), 50.0);
//! assert_eq!(timing.critical_path(&tfg), 25.0 + 64.0 + 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod dot;
mod dvb;
mod error;
pub mod generators;
mod graph;
mod ids;
mod textfmt;
mod timing;

pub use bounds::{assign_time_bounds, MessageWindow, TimeBounds, WindowPolicy};
pub use dvb::{dvb, dvb_tiled, dvb_uniform, DVB_LONGEST_MESSAGE_BYTES, DVB_LONGEST_TASK_OPS};
pub use error::TfgError;
pub use graph::{Message, Task, TaskFlowGraph, TfgBuilder};
pub use ids::{MessageId, TaskId};
pub use textfmt::{from_text, ParseTfgError};
pub use timing::Timing;
