use crate::{MessageId, TaskFlowGraph, TaskId, TfgError, Timing};

/// Comparison tolerance for times, in µs.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// How long a message's transmission window is allowed to be.
///
/// The paper (§4) gives every message a window as long as the longest task:
/// "by allowing each message transmission to be as long as the longest task,
/// latency may increase, but the maximum possible throughput remains the
/// same". That is [`WindowPolicy::LongestTask`], the default. The other
/// policies are useful for experiments on the slack/latency trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum WindowPolicy {
    /// Window = `τ_c`, the longest task execution time (paper default).
    #[default]
    LongestTask,
    /// Window = the invocation period `τ_in` (maximum slack).
    FullPeriod,
    /// Window = the message's own transmission time (zero slack).
    Tight,
    /// Window = an explicit duration in µs.
    Fixed(f64),
}

/// The release/deadline window of one message, folded into `[0, τ_in)`.
///
/// Because every message is regenerated once per period, the paper observes
/// that "these time bounds enable consideration of all successively generated
/// messages … by observing only a single time frame of `[0, τ_in]`". A window
/// whose unfolded deadline passes the frame end wraps around: the message is
/// then active in `[0, deadline]` ∪ `[release, τ_in]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageWindow {
    release: f64,
    window: f64,
    duration: f64,
    period: f64,
}

impl MessageWindow {
    pub(crate) fn new(release_abs: f64, window: f64, duration: f64, period: f64) -> Self {
        debug_assert!(period > 0.0);
        let release = release_abs.rem_euclid(period);
        // Guard against `rem_euclid` returning `period` for values that are
        // tiny negative epsilons below a multiple of the period.
        let release = if release >= period - TIME_EPS {
            0.0
        } else {
            release
        };
        MessageWindow {
            release,
            window,
            duration,
            period,
        }
    }

    /// Release time `r_i` folded into `[0, τ_in)`: the instant within the
    /// frame at which the message becomes available for transmission.
    pub fn release(&self) -> f64 {
        self.release
    }

    /// Deadline `d_i` folded into `[0, τ_in)`.
    pub fn deadline(&self) -> f64 {
        if self.covers_period() {
            self.period
        } else {
            let d = (self.release + self.window).rem_euclid(self.period);
            if d < TIME_EPS {
                self.period
            } else {
                d
            }
        }
    }

    /// Allowed transmission span length (unfolded `d_i − r_i`), in µs.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The message's transmission time at the configured bandwidth, in µs.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The invocation period the window was folded into, in µs.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Slack: window length minus transmission time.
    pub fn slack(&self) -> f64 {
        self.window - self.duration
    }

    /// `true` when the message must occupy its whole window (paper: an
    /// equality in constraint (2); such messages create utilization
    /// *hot-spots*).
    pub fn is_no_slack(&self) -> bool {
        self.slack() <= TIME_EPS
    }

    /// `true` when the window spans the entire period frame.
    pub fn covers_period(&self) -> bool {
        self.window >= self.period - TIME_EPS
    }

    /// `true` when the folded window wraps past the frame end.
    pub fn wraps(&self) -> bool {
        !self.covers_period() && self.release + self.window > self.period + TIME_EPS
    }

    /// The active spans within `[0, τ_in]`, in ascending order (one span
    /// normally, two when the window wraps).
    pub fn spans(&self) -> Vec<(f64, f64)> {
        if self.covers_period() {
            vec![(0.0, self.period)]
        } else if self.wraps() {
            let tail = self.release + self.window - self.period;
            vec![(0.0, tail), (self.release, self.period)]
        } else {
            vec![(self.release, self.release + self.window)]
        }
    }

    /// `true` when the message may transmit somewhere inside `[a, b]`
    /// (overlap longer than the tolerance).
    pub fn active_during(&self, a: f64, b: f64) -> bool {
        self.spans()
            .iter()
            .any(|&(s, e)| (b.min(e) - a.max(s)) > TIME_EPS)
    }
}

/// The complete time-bound assignment for a TFG at a given period.
///
/// Produced by [`assign_time_bounds`]; consumed by the scheduled-routing
/// compiler.
#[derive(Debug, Clone)]
pub struct TimeBounds {
    period: f64,
    windows: Vec<MessageWindow>,
    task_start: Vec<f64>,
    task_end: Vec<f64>,
    latency: f64,
}

impl TimeBounds {
    /// The invocation period `τ_in`, in µs.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The window of a message.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn window(&self, id: MessageId) -> &MessageWindow {
        &self.windows[id.0]
    }

    /// All windows, indexable by [`MessageId`].
    pub fn windows(&self) -> &[MessageWindow] {
        &self.windows
    }

    /// Scheduled start of a task within invocation 0 (unfolded), in µs.
    pub fn task_start(&self, id: TaskId) -> f64 {
        self.task_start[id.0]
    }

    /// Scheduled completion of a task within invocation 0 (unfolded), in µs.
    pub fn task_end(&self, id: TaskId) -> f64 {
        self.task_end[id.0]
    }

    /// The invocation latency implied by the time bounds: the completion time
    /// of the last output task when every message is granted its full window.
    pub fn latency(&self) -> f64 {
        self.latency
    }
}

/// Assigns release/deadline windows to every message of `tfg` for pipelining
/// with period `period` (paper §4).
///
/// In invocation 0, input tasks start at time 0; each message is released at
/// its source task's completion and must be fully delivered one window later
/// (window length per `policy`, never less than the message's own
/// transmission time); each task starts when the windows of all its incoming
/// messages close. All times are then folded into the single frame
/// `[0, period)`.
///
/// # Errors
///
/// * [`TfgError::PeriodTooShort`] if `period < τ_c` (pipelining impossible —
///   infinite accumulation at the slowest task);
/// * [`TfgError::MessageExceedsPeriod`] if any message needs longer than the
///   period to transmit;
/// * [`TfgError::InvalidTiming`] for a non-positive/non-finite period or
///   fixed window.
///
/// # Examples
///
/// ```
/// use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
///
/// # fn main() -> Result<(), sr_tfg::TfgError> {
/// let mut b = TfgBuilder::new();
/// let a = b.task("a", 500);
/// let c = b.task("c", 500);
/// b.message("m", a, c, 640)?;
/// let tfg = b.build()?;
///
/// let timing = Timing::new(64.0, 10.0); // τ_c = 50 µs
/// let bounds = assign_time_bounds(&tfg, &timing, 100.0, WindowPolicy::LongestTask)?;
/// let w = bounds.window(sr_tfg::MessageId(0));
/// assert_eq!(w.release(), 50.0);       // folded source completion
/// assert_eq!(w.deadline(), 100.0);     // one τ_c later
/// assert_eq!(w.duration(), 10.0);
/// # Ok(())
/// # }
/// ```
pub fn assign_time_bounds(
    tfg: &TaskFlowGraph,
    timing: &Timing,
    period: f64,
    policy: WindowPolicy,
) -> Result<TimeBounds, TfgError> {
    if !(period.is_finite() && period > 0.0) {
        return Err(TfgError::InvalidTiming {
            what: "period",
            value: period,
        });
    }
    let tau_c = timing.longest_task(tfg);
    if period < tau_c - TIME_EPS {
        return Err(TfgError::PeriodTooShort {
            period,
            longest_task: tau_c,
        });
    }
    let base_window = match policy {
        WindowPolicy::LongestTask => tau_c,
        WindowPolicy::FullPeriod => period,
        WindowPolicy::Tight => 0.0, // lifted to each message's duration below
        WindowPolicy::Fixed(w) => {
            if !(w.is_finite() && w > 0.0) {
                return Err(TfgError::InvalidTiming {
                    what: "fixed window",
                    value: w,
                });
            }
            w
        }
    };

    let n = tfg.num_tasks();
    let mut task_start = vec![0.0f64; n];
    let mut task_end = vec![0.0f64; n];
    let mut window_len = vec![0.0f64; tfg.num_messages()];
    let mut release_abs = vec![0.0f64; tfg.num_messages()];

    for (id, msg) in tfg.iter_messages() {
        let duration = timing.tx_time(msg);
        if duration > period + TIME_EPS {
            return Err(TfgError::MessageExceedsPeriod {
                message: id,
                duration,
                period,
            });
        }
        window_len[id.0] = base_window.max(duration);
    }

    for &t in tfg.topological_order() {
        let ready = tfg
            .incoming(t)
            .iter()
            .map(|&m| {
                let src = tfg.message(m).src();
                task_end[src.0] + window_len[m.0]
            })
            .fold(0.0, f64::max);
        task_start[t.0] = ready;
        task_end[t.0] = ready + timing.exec_time(tfg.task(t));
        for &m in tfg.outgoing(t) {
            release_abs[m.0] = task_end[t.0];
        }
    }

    let latency = tfg
        .outputs()
        .iter()
        .map(|&t| task_end[t.0])
        .fold(0.0, f64::max);

    let windows = (0..tfg.num_messages())
        .map(|i| {
            let duration = timing.tx_time(tfg.message(MessageId(i)));
            MessageWindow::new(release_abs[i], window_len[i], duration, period)
        })
        .collect();

    Ok(TimeBounds {
        period,
        windows,
        task_start,
        task_end,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TfgBuilder;

    fn chain3(bytes: u64) -> TaskFlowGraph {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 500);
        let c = b.task("c", 500);
        let d = b.task("d", 500);
        b.message("ac", a, c, bytes).unwrap();
        b.message("cd", c, d, bytes).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rejects_short_period() {
        let g = chain3(64);
        let t = Timing::new(64.0, 10.0); // τ_c = 50
        let err = assign_time_bounds(&g, &t, 40.0, WindowPolicy::LongestTask).unwrap_err();
        assert!(matches!(err, TfgError::PeriodTooShort { .. }));
    }

    #[test]
    fn rejects_oversized_message() {
        let g = chain3(64_000); // 1000 µs at B=64
        let t = Timing::new(64.0, 10.0);
        let err = assign_time_bounds(&g, &t, 100.0, WindowPolicy::LongestTask).unwrap_err();
        assert!(matches!(err, TfgError::MessageExceedsPeriod { .. }));
    }

    #[test]
    fn rejects_bad_period() {
        let g = chain3(64);
        let t = Timing::new(64.0, 10.0);
        assert!(assign_time_bounds(&g, &t, f64::NAN, WindowPolicy::LongestTask).is_err());
        assert!(assign_time_bounds(&g, &t, -5.0, WindowPolicy::LongestTask).is_err());
    }

    #[test]
    fn max_throughput_windows_cover_period() {
        // At τ_in = τ_c every window covers the whole frame.
        let g = chain3(640);
        let t = Timing::new(64.0, 10.0); // τ_c = 50, durations 10
        let b = assign_time_bounds(&g, &t, 50.0, WindowPolicy::LongestTask).unwrap();
        for w in b.windows() {
            assert!(w.covers_period());
            assert_eq!(w.spans(), vec![(0.0, 50.0)]);
        }
    }

    #[test]
    fn folded_release_and_wrap() {
        let g = chain3(640);
        let t = Timing::new(64.0, 10.0); // exec 50 each, τ_c = 50
                                         // Period 80: releases at 50 and 50+50+50 = 150 -> folded 70, window 50
                                         // wraps to [0,40] ∪ [70,80].
        let b = assign_time_bounds(&g, &t, 80.0, WindowPolicy::LongestTask).unwrap();
        let w0 = b.window(MessageId(0));
        assert!((w0.release() - 50.0).abs() < 1e-9);
        assert!(w0.wraps());
        let spans = w0.spans();
        assert_eq!(spans.len(), 2);
        assert!((spans[0].1 - 20.0).abs() < 1e-9);
        assert!((spans[1].0 - 50.0).abs() < 1e-9);

        let w1 = b.window(MessageId(1));
        assert!((w1.release() - 70.0).abs() < 1e-9);
        assert!(w1.wraps());
    }

    #[test]
    fn task_schedule_accumulates_windows() {
        let g = chain3(640);
        let t = Timing::new(64.0, 10.0);
        let b = assign_time_bounds(&g, &t, 200.0, WindowPolicy::LongestTask).unwrap();
        assert_eq!(b.task_start(TaskId(0)), 0.0);
        assert_eq!(b.task_end(TaskId(0)), 50.0);
        assert_eq!(b.task_start(TaskId(1)), 100.0); // 50 + window 50
        assert_eq!(b.task_end(TaskId(2)), 250.0);
        assert_eq!(b.latency(), 250.0);
    }

    #[test]
    fn tight_policy_gives_zero_slack() {
        let g = chain3(640);
        let t = Timing::new(64.0, 10.0);
        let b = assign_time_bounds(&g, &t, 200.0, WindowPolicy::Tight).unwrap();
        for w in b.windows() {
            assert!(w.is_no_slack());
            assert!((w.window() - 10.0).abs() < 1e-9);
        }
        // Latency shrinks to the true critical path.
        assert!((b.latency() - t.critical_path(&g)).abs() < 1e-9);
    }

    #[test]
    fn window_never_below_duration() {
        // A message longer than τ_c still gets a window ≥ its duration.
        let mut builder = TfgBuilder::new();
        let a = builder.task("a", 10);
        let c = builder.task("c", 10);
        builder.message("big", a, c, 6400).unwrap(); // 100 µs at B=64
        let g = builder.build().unwrap();
        let t = Timing::new(64.0, 10.0); // τ_c = 1 µs
        let b = assign_time_bounds(&g, &t, 150.0, WindowPolicy::LongestTask).unwrap();
        let w = b.window(MessageId(0));
        assert!(w.window() >= w.duration());
    }

    #[test]
    fn active_during_queries() {
        let w = MessageWindow::new(70.0, 50.0, 10.0, 80.0); // [0,40] ∪ [70,80]
        assert!(w.active_during(0.0, 10.0));
        assert!(w.active_during(75.0, 80.0));
        assert!(!w.active_during(45.0, 65.0));
        assert!(!w.active_during(40.0, 70.0)); // touches endpoints only
    }

    #[test]
    fn deadline_reporting() {
        let w = MessageWindow::new(10.0, 30.0, 5.0, 100.0);
        assert_eq!(w.deadline(), 40.0);
        let wrap = MessageWindow::new(90.0, 30.0, 5.0, 100.0);
        assert_eq!(wrap.deadline(), 20.0);
        let full = MessageWindow::new(25.0, 100.0, 5.0, 100.0);
        assert_eq!(full.deadline(), 100.0);
    }

    #[test]
    fn fixed_policy_validated() {
        let g = chain3(640);
        let t = Timing::new(64.0, 10.0);
        assert!(assign_time_bounds(&g, &t, 100.0, WindowPolicy::Fixed(-1.0)).is_err());
        let b = assign_time_bounds(&g, &t, 100.0, WindowPolicy::Fixed(20.0)).unwrap();
        assert!((b.window(MessageId(0)).window() - 20.0).abs() < 1e-9);
    }
}
