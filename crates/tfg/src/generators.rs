//! Synthetic task-flow graph generators.
//!
//! These produce the auxiliary workloads used in tests, examples, and the
//! ablation benchmarks: deterministic shapes (chains, diamonds, fan-out) and
//! seeded random layered DAGs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{TaskFlowGraph, TfgBuilder};

/// A linear pipeline of `stages` tasks joined by `stages − 1` messages.
///
/// # Panics
///
/// Panics if `stages == 0` or (when `stages > 1`) `bytes == 0`.
///
/// # Examples
///
/// ```
/// let g = sr_tfg::generators::chain(4, 1000, 256);
/// assert_eq!(g.num_tasks(), 4);
/// assert_eq!(g.num_messages(), 3);
/// ```
pub fn chain(stages: usize, ops: u64, bytes: u64) -> TaskFlowGraph {
    assert!(stages > 0, "a chain needs at least one stage");
    let mut b = TfgBuilder::new();
    let ids: Vec<_> = (0..stages).map(|i| b.task(format!("s{i}"), ops)).collect();
    for w in ids.windows(2) {
        b.message(format!("{}->{}", w[0], w[1]), w[0], w[1], bytes)
            .expect("valid chain message");
    }
    b.build().expect("chains are acyclic")
}

/// The §3 *Claim* scenario: a 4-task chain whose first and last messages are
/// large (and will contend for a link under wormhole routing) with a small
/// coupling message in the middle.
///
/// `M1 = T0→T1` and `M2 = T2→T3` satisfy the Claim's premise
/// (`T1 ⪯ T2`, all four tasks on the critical path); map them so their
/// paths share a link and wormhole routing exhibits output inconsistency.
pub fn claim_chain(ops: u64, big_bytes: u64, small_bytes: u64) -> TaskFlowGraph {
    let mut b = TfgBuilder::new();
    let t0 = b.task("T1s", ops);
    let t1 = b.task("T1d", ops);
    let t2 = b.task("T2s", ops);
    let t3 = b.task("T2d", ops);
    b.message("M1", t0, t1, big_bytes).expect("valid");
    b.message("link", t1, t2, small_bytes).expect("valid");
    b.message("M2", t2, t3, big_bytes).expect("valid");
    b.build().expect("claim chain is acyclic")
}

/// A fan-out/fan-in diamond: one source, `width` parallel branches, one sink.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn diamond(width: usize, ops: u64, bytes: u64) -> TaskFlowGraph {
    assert!(width > 0, "diamond needs at least one branch");
    let mut b = TfgBuilder::new();
    let src = b.task("src", ops);
    let sink = b.task("sink", ops);
    for i in 0..width {
        let mid = b.task(format!("mid{i}"), ops);
        b.message(format!("out{i}"), src, mid, bytes)
            .expect("valid");
        b.message(format!("in{i}"), mid, sink, bytes)
            .expect("valid");
    }
    b.build().expect("diamonds are acyclic")
}

/// An image-pyramid reduction: `levels` layers halving in width, every
/// task feeding its parent — the fan-in shape of multiresolution vision
/// kernels (the application domain the paper motivates with).
///
/// Level 0 has `2^(levels-1)` leaf tasks (inputs); each non-leaf combines
/// two children. Message sizes halve level by level from `base_bytes`.
///
/// # Panics
///
/// Panics if `levels == 0` or `base_bytes == 0`.
///
/// # Examples
///
/// ```
/// let g = sr_tfg::generators::pyramid(3, 1000, 4096);
/// assert_eq!(g.num_tasks(), 7);      // 4 + 2 + 1
/// assert_eq!(g.num_messages(), 6);
/// assert_eq!(g.inputs().len(), 4);
/// assert_eq!(g.outputs().len(), 1);
/// ```
pub fn pyramid(levels: usize, ops: u64, base_bytes: u64) -> TaskFlowGraph {
    assert!(levels > 0, "pyramid needs at least one level");
    assert!(base_bytes > 0, "pyramid messages need payload");
    let mut b = TfgBuilder::new();
    let leaves = 1usize << (levels - 1);
    let mut prev: Vec<crate::TaskId> = (0..leaves)
        .map(|i| b.task(format!("l0_{i}"), ops))
        .collect();
    let mut bytes = base_bytes;
    for level in 1..levels {
        let width = prev.len() / 2;
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let t = b.task(format!("l{level}_{i}"), ops);
            b.message(format!("m{level}_{i}a"), prev[2 * i], t, bytes)
                .expect("valid pyramid edge");
            b.message(format!("m{level}_{i}b"), prev[2 * i + 1], t, bytes)
                .expect("valid pyramid edge");
            cur.push(t);
        }
        prev = cur;
        bytes = (bytes / 2).max(1);
    }
    b.build().expect("pyramids are acyclic")
}

/// `count` independent copies of a `stages`-long pipeline sharing nothing —
/// the multiprogrammed workload for interference studies (each pipeline
/// should be schedulable independently; any coupling comes from the
/// network).
///
/// # Panics
///
/// Panics if `count == 0` or `stages == 0`.
pub fn parallel_chains(count: usize, stages: usize, ops: u64, bytes: u64) -> TaskFlowGraph {
    assert!(count > 0 && stages > 0, "degenerate shape");
    let mut b = TfgBuilder::new();
    for c in 0..count {
        let ids: Vec<_> = (0..stages)
            .map(|i| b.task(format!("p{c}_s{i}"), ops))
            .collect();
        for (i, w) in ids.windows(2).enumerate() {
            b.message(format!("p{c}_m{i}"), w[0], w[1], bytes)
                .expect("valid chain edge");
        }
    }
    b.build().expect("chains are acyclic")
}

/// Parameters for [`layered_random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredParams {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Tasks per layer (≥ 1).
    pub width: usize,
    /// Probability of a message between tasks in adjacent layers.
    pub edge_probability: f64,
    /// Inclusive range of task operation counts.
    pub ops: (u64, u64),
    /// Inclusive range of message payload sizes (min ≥ 1).
    pub bytes: (u64, u64),
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 4,
            width: 4,
            edge_probability: 0.4,
            ops: (200, 2000),
            bytes: (64, 4096),
        }
    }
}

/// A random layered DAG: tasks arranged in layers, messages only between
/// adjacent layers, every non-first-layer task guaranteed at least one
/// predecessor (so the precedence structure is connected enough to pipeline).
///
/// Deterministic for a fixed `seed`.
///
/// # Panics
///
/// Panics if `layers == 0`, `width == 0`, `bytes.0 == 0`, or a range is
/// inverted.
///
/// # Examples
///
/// ```
/// use sr_tfg::generators::{layered_random, LayeredParams};
///
/// let g = layered_random(42, &LayeredParams::default());
/// let h = layered_random(42, &LayeredParams::default());
/// assert_eq!(g.num_messages(), h.num_messages()); // reproducible
/// ```
pub fn layered_random(seed: u64, params: &LayeredParams) -> TaskFlowGraph {
    assert!(params.layers > 0 && params.width > 0, "degenerate shape");
    assert!(params.ops.0 <= params.ops.1, "inverted ops range");
    assert!(
        params.bytes.0 >= 1 && params.bytes.0 <= params.bytes.1,
        "invalid bytes range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TfgBuilder::new();
    let mut layers: Vec<Vec<crate::TaskId>> = Vec::with_capacity(params.layers);
    for l in 0..params.layers {
        let layer: Vec<_> = (0..params.width)
            .map(|i| {
                let ops = rng.gen_range(params.ops.0..=params.ops.1);
                b.task(format!("t{l}_{i}"), ops)
            })
            .collect();
        layers.push(layer);
    }
    for l in 1..params.layers {
        for (i, &dst) in layers[l].clone().iter().enumerate() {
            let mut has_pred = false;
            for (j, &src) in layers[l - 1].clone().iter().enumerate() {
                if rng.gen_bool(params.edge_probability.clamp(0.0, 1.0)) {
                    let bytes = rng.gen_range(params.bytes.0..=params.bytes.1);
                    b.message(format!("m{l}_{j}_{i}"), src, dst, bytes)
                        .expect("valid edge");
                    has_pred = true;
                }
            }
            if !has_pred {
                let j = rng.gen_range(0..params.width);
                let src = layers[l - 1][j];
                let bytes = rng.gen_range(params.bytes.0..=params.bytes.1);
                b.message(format!("f{l}_{j}_{i}"), src, dst, bytes)
                    .expect("valid fallback edge");
            }
        }
    }
    b.build().expect("layered graphs are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5, 100, 32);
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_messages(), 4);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn single_stage_chain_has_no_messages() {
        let g = chain(1, 100, 32);
        assert_eq!(g.num_messages(), 0);
    }

    #[test]
    fn claim_chain_precedence() {
        let g = claim_chain(1000, 3200, 64);
        // M1's destination precedes M2's source (the Claim's premise).
        let m1 = g.message(crate::MessageId(0));
        let m2 = g.message(crate::MessageId(2));
        assert!(g.precedes(m1.dst(), m2.src()) || m1.dst() == m2.src());
    }

    #[test]
    fn diamond_shape() {
        let g = diamond(3, 10, 10);
        assert_eq!(g.num_tasks(), 5);
        assert_eq!(g.num_messages(), 6);
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn pyramid_shape() {
        let g = pyramid(4, 100, 4096);
        assert_eq!(g.num_tasks(), 8 + 4 + 2 + 1);
        assert_eq!(g.num_messages(), 14);
        assert_eq!(g.inputs().len(), 8);
        assert_eq!(g.outputs().len(), 1);
        // Byte sizes halve per level.
        let max = g.messages().iter().map(|m| m.bytes()).max().unwrap();
        let min = g.messages().iter().map(|m| m.bytes()).min().unwrap();
        assert_eq!(max, 4096);
        assert_eq!(min, 1024);
    }

    #[test]
    fn pyramid_single_level_is_one_task() {
        let g = pyramid(1, 100, 64);
        assert_eq!(g.num_tasks(), 1);
        assert_eq!(g.num_messages(), 0);
    }

    #[test]
    fn parallel_chains_are_disjoint() {
        let g = parallel_chains(3, 4, 100, 64);
        assert_eq!(g.num_tasks(), 12);
        assert_eq!(g.num_messages(), 9);
        assert_eq!(g.inputs().len(), 3);
        assert_eq!(g.outputs().len(), 3);
        // No path between different pipelines.
        assert!(!g.precedes(crate::TaskId(0), crate::TaskId(4)));
    }

    #[test]
    fn layered_random_is_reproducible() {
        let p = LayeredParams::default();
        let a = layered_random(7, &p);
        let b = layered_random(7, &p);
        assert_eq!(a.num_tasks(), b.num_tasks());
        assert_eq!(a.num_messages(), b.num_messages());
        for (x, y) in a.messages().iter().zip(b.messages()) {
            assert_eq!(x.bytes(), y.bytes());
            assert_eq!(x.src(), y.src());
            assert_eq!(x.dst(), y.dst());
        }
    }

    #[test]
    fn layered_random_every_later_task_has_predecessor() {
        let p = LayeredParams {
            layers: 5,
            width: 3,
            edge_probability: 0.05, // force the fallback path to kick in
            ..LayeredParams::default()
        };
        let g = layered_random(123, &p);
        // Only the first layer (3 tasks) may be inputs.
        assert_eq!(g.inputs().len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let p = LayeredParams::default();
        let a = layered_random(1, &p);
        let b = layered_random(2, &p);
        // With overwhelming probability the byte multiset differs.
        let sa: u64 = a.total_bytes();
        let sb: u64 = b.total_bytes();
        assert_ne!(sa, sb);
    }
}
