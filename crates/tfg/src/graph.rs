use crate::{MessageId, TaskId, TfgError};

/// A task: a block of `ops` operations executed sequentially on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    name: String,
    ops: u64,
}

impl Task {
    /// The task's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations the task performs per invocation.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// A message: `bytes` transferred from `src`'s completion to `dst`'s start.
///
/// Identical payloads destined for different tasks are distinct messages at
/// the application level (paper §2), which is why a message names exactly one
/// destination task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    name: String,
    src: TaskId,
    dst: TaskId,
    bytes: u64,
}

impl Message {
    /// The message's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The producing task.
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// The consuming task.
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Incrementally builds a [`TaskFlowGraph`].
///
/// # Examples
///
/// ```
/// use sr_tfg::TfgBuilder;
///
/// # fn main() -> Result<(), sr_tfg::TfgError> {
/// let mut b = TfgBuilder::new();
/// let a = b.task("a", 100);
/// let c = b.task("c", 300);
/// b.message("a->c", a, c, 64)?;
/// let tfg = b.build()?;
/// assert_eq!(tfg.num_tasks(), 2);
/// assert_eq!(tfg.inputs(), &[a]);
/// assert_eq!(tfg.outputs(), &[c]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TfgBuilder {
    tasks: Vec<Task>,
    messages: Vec<Message>,
}

impl TfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task and returns its id.
    pub fn task(&mut self, name: impl Into<String>, ops: u64) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name: name.into(),
            ops,
        });
        id
    }

    /// Adds a message from `src` to `dst` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TfgError::UnknownTask`] for out-of-range task ids,
    /// [`TfgError::SelfLoop`] when `src == dst`, and [`TfgError::ZeroBytes`]
    /// for an empty payload. Cycles are detected later, in [`Self::build`].
    pub fn message(
        &mut self,
        name: impl Into<String>,
        src: TaskId,
        dst: TaskId,
        bytes: u64,
    ) -> Result<MessageId, TfgError> {
        let name = name.into();
        for task in [src, dst] {
            if task.0 >= self.tasks.len() {
                return Err(TfgError::UnknownTask {
                    task,
                    num_tasks: self.tasks.len(),
                });
            }
        }
        if src == dst {
            return Err(TfgError::SelfLoop { task: src });
        }
        if bytes == 0 {
            return Err(TfgError::ZeroBytes { name });
        }
        let id = MessageId(self.messages.len());
        self.messages.push(Message {
            name,
            src,
            dst,
            bytes,
        });
        Ok(id)
    }

    /// Validates acyclicity and finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`TfgError::Empty`] for a task-less graph and
    /// [`TfgError::Cycle`] when the precedence relation is cyclic.
    pub fn build(self) -> Result<TaskFlowGraph, TfgError> {
        TaskFlowGraph::new(self.tasks, self.messages)
    }
}

/// A validated task-flow graph `{S_T, S_M}` (paper §2).
///
/// Construction is via [`TfgBuilder`]; a built graph is guaranteed acyclic
/// with all message endpoints in range.
#[derive(Debug, Clone)]
pub struct TaskFlowGraph {
    tasks: Vec<Task>,
    messages: Vec<Message>,
    incoming: Vec<Vec<MessageId>>,
    outgoing: Vec<Vec<MessageId>>,
    topo: Vec<TaskId>,
    inputs: Vec<TaskId>,
    outputs: Vec<TaskId>,
}

impl TaskFlowGraph {
    fn new(tasks: Vec<Task>, messages: Vec<Message>) -> Result<Self, TfgError> {
        if tasks.is_empty() {
            return Err(TfgError::Empty);
        }
        let n = tasks.len();
        let mut incoming = vec![Vec::new(); n];
        let mut outgoing = vec![Vec::new(); n];
        for (i, m) in messages.iter().enumerate() {
            outgoing[m.src.0].push(MessageId(i));
            incoming[m.dst.0].push(MessageId(i));
        }
        // Kahn's algorithm for topological order / cycle detection.
        let mut indeg: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<TaskId> =
            (0..n).filter(|&t| indeg[t] == 0).map(TaskId).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(t) = queue.pop_front() {
            topo.push(t);
            for &m in &outgoing[t.0] {
                let d = messages[m.0].dst;
                indeg[d.0] -= 1;
                if indeg[d.0] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if topo.len() != n {
            let witness = TaskId(indeg.iter().position(|&d| d > 0).expect("cycle exists"));
            return Err(TfgError::Cycle { witness });
        }
        let inputs = (0..n)
            .filter(|&t| incoming[t].is_empty())
            .map(TaskId)
            .collect();
        let outputs = (0..n)
            .filter(|&t| outgoing[t].is_empty())
            .map(TaskId)
            .collect();
        Ok(TaskFlowGraph {
            tasks,
            messages,
            incoming,
            outgoing,
            topo,
            inputs,
            outputs,
        })
    }

    /// Number of tasks `N_t`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of messages `N_m`.
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// The message with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.0]
    }

    /// All tasks, indexable by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All messages, indexable by [`MessageId`].
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Iterator over `(id, message)` pairs.
    pub fn iter_messages(&self) -> impl Iterator<Item = (MessageId, &Message)> {
        self.messages
            .iter()
            .enumerate()
            .map(|(i, m)| (MessageId(i), m))
    }

    /// Iterator over `(id, task)` pairs.
    pub fn iter_tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Messages arriving at `task`.
    pub fn incoming(&self, task: TaskId) -> &[MessageId] {
        &self.incoming[task.0]
    }

    /// Messages departing from `task`.
    pub fn outgoing(&self, task: TaskId) -> &[MessageId] {
        &self.outgoing[task.0]
    }

    /// Input tasks (no predecessors); they start on external input arrival.
    pub fn inputs(&self) -> &[TaskId] {
        &self.inputs
    }

    /// Output tasks (no successors); their completion ends the invocation.
    pub fn outputs(&self) -> &[TaskId] {
        &self.outputs
    }

    /// Tasks in a topological order of the precedence relation.
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// `true` if `a` precedes `b` (a directed path of messages exists).
    ///
    /// Computed by forward BFS from `a`; `precedes(t, t)` is `false`.
    pub fn precedes(&self, a: TaskId, b: TaskId) -> bool {
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![a];
        seen[a.0] = true;
        while let Some(t) = stack.pop() {
            for &m in &self.outgoing[t.0] {
                let d = self.messages[m.0].dst;
                if d == b {
                    return true;
                }
                if !seen[d.0] {
                    seen[d.0] = true;
                    stack.push(d);
                }
            }
        }
        false
    }

    /// Total bytes communicated per invocation.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Returns a copy where every task performs `ops` operations.
    ///
    /// The paper's evaluation assumes "all tasks take the same time"; this
    /// adapter applies that normalization without touching the messages.
    pub fn with_uniform_ops(&self, ops: u64) -> TaskFlowGraph {
        let mut clone = self.clone();
        for t in &mut clone.tasks {
            t.ops = ops;
        }
        clone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskFlowGraph {
        let mut b = TfgBuilder::new();
        let s = b.task("s", 10);
        let l = b.task("l", 20);
        let r = b.task("r", 30);
        let t = b.task("t", 40);
        b.message("sl", s, l, 1).unwrap();
        b.message("sr", s, r, 2).unwrap();
        b.message("lt", l, t, 3).unwrap();
        b.message("rt", r, t, 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(TfgBuilder::new().build().unwrap_err(), TfgError::Empty);
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1);
        let err = b.message("m", a, TaskId(5), 1).unwrap_err();
        assert!(matches!(err, TfgError::UnknownTask { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1);
        assert_eq!(
            b.message("m", a, a, 1).unwrap_err(),
            TfgError::SelfLoop { task: a }
        );
    }

    #[test]
    fn zero_bytes_rejected() {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1);
        let c = b.task("c", 1);
        assert!(matches!(
            b.message("m", a, c, 0).unwrap_err(),
            TfgError::ZeroBytes { .. }
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1);
        let c = b.task("c", 1);
        b.message("ac", a, c, 1).unwrap();
        b.message("ca", c, a, 1).unwrap();
        assert!(matches!(b.build().unwrap_err(), TfgError::Cycle { .. }));
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_messages(), 4);
        assert_eq!(g.inputs(), &[TaskId(0)]);
        assert_eq!(g.outputs(), &[TaskId(3)]);
        assert_eq!(g.incoming(TaskId(3)).len(), 2);
        assert_eq!(g.outgoing(TaskId(0)).len(), 2);
        assert_eq!(g.total_bytes(), 10);
    }

    #[test]
    fn topological_order_respects_precedence() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.num_tasks()];
            for (i, &t) in g.topological_order().iter().enumerate() {
                p[t.0] = i;
            }
            p
        };
        for m in g.messages() {
            assert!(pos[m.src().0] < pos[m.dst().0]);
        }
    }

    #[test]
    fn precedes_is_reachability() {
        let g = diamond();
        assert!(g.precedes(TaskId(0), TaskId(3)));
        assert!(g.precedes(TaskId(1), TaskId(3)));
        assert!(!g.precedes(TaskId(1), TaskId(2)));
        assert!(!g.precedes(TaskId(3), TaskId(0)));
        assert!(!g.precedes(TaskId(0), TaskId(0)));
    }

    #[test]
    fn isolated_task_is_input_and_output() {
        let mut b = TfgBuilder::new();
        let a = b.task("a", 1);
        let g = b.build().unwrap();
        assert_eq!(g.inputs(), &[a]);
        assert_eq!(g.outputs(), &[a]);
    }

    #[test]
    fn uniform_ops_normalization() {
        let g = diamond().with_uniform_ops(99);
        assert!(g.tasks().iter().all(|t| t.ops() == 99));
        assert_eq!(g.num_messages(), 4);
    }
}
