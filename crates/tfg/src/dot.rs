//! Graphviz DOT export for task-flow graphs.

use std::fmt::Write;

use crate::TaskFlowGraph;

impl TaskFlowGraph {
    /// Renders the graph in Graphviz DOT format: tasks as nodes labeled
    /// `name\nops`, messages as edges labeled `name (bytes B)`. Input tasks
    /// are drawn as double circles, output tasks as double octagons.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = sr_tfg::generators::chain(2, 100, 64);
    /// let dot = g.to_dot("pipeline");
    /// assert!(dot.starts_with("digraph pipeline {"));
    /// assert!(dot.contains("s0"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph {} {{", sanitize(name));
        let _ = writeln!(s, "  rankdir=TB;");
        let _ = writeln!(s, "  node [shape=ellipse, fontname=\"Helvetica\"];");
        for (id, task) in self.iter_tasks() {
            let shape = if self.inputs().contains(&id) {
                "doublecircle"
            } else if self.outputs().contains(&id) {
                "doubleoctagon"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                s,
                "  t{} [label=\"{}\\n{} ops\", shape={shape}];",
                id.index(),
                escape(task.name()),
                task.ops()
            );
        }
        for (_, m) in self.iter_messages() {
            let _ = writeln!(
                s,
                "  t{} -> t{} [label=\"{} ({} B)\"];",
                m.src().index(),
                m.dst().index(),
                escape(m.name()),
                m.bytes()
            );
        }
        let _ = writeln!(s, "}}");
        s
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::{dvb, generators};

    #[test]
    fn dot_contains_all_tasks_and_messages() {
        let g = dvb(3);
        let dot = g.to_dot("dvb");
        for task in g.tasks() {
            assert!(dot.contains(task.name()), "missing task {}", task.name());
        }
        for m in g.messages() {
            assert!(dot.contains(m.name()), "missing message {}", m.name());
        }
        assert_eq!(dot.matches(" -> ").count(), g.num_messages());
    }

    #[test]
    fn dot_marks_inputs_and_outputs() {
        let g = generators::chain(3, 10, 10);
        let dot = g.to_dot("chain");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("doubleoctagon"));
    }

    #[test]
    fn dot_name_sanitized() {
        let g = generators::chain(2, 10, 10);
        assert!(g.to_dot("8x8 torus!").starts_with("digraph g_8x8_torus_ {"));
        assert!(g.to_dot("").starts_with("digraph g_ {"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = crate::TfgBuilder::new();
        let a = b.task("a\"quote", 1);
        let c = b.task("c", 1);
        b.message("m", a, c, 1).unwrap();
        let g = b.build().unwrap();
        assert!(g.to_dot("q").contains("a\\\"quote"));
    }
}
