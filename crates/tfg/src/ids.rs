use std::fmt;

/// Dense index of a task within a [`TaskFlowGraph`](crate::TaskFlowGraph).
///
/// # Examples
///
/// ```
/// use sr_tfg::TaskId;
///
/// let t = TaskId(2);
/// assert_eq!(t.index(), 2);
/// assert_eq!(t.to_string(), "T2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(value: usize) -> Self {
        TaskId(value)
    }
}

impl From<TaskId> for usize {
    fn from(value: TaskId) -> Self {
        value.0
    }
}

/// Dense index of a message within a [`TaskFlowGraph`](crate::TaskFlowGraph).
///
/// # Examples
///
/// ```
/// use sr_tfg::MessageId;
///
/// let m = MessageId(0);
/// assert_eq!(m.index(), 0);
/// assert_eq!(m.to_string(), "M0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(pub usize);

impl MessageId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<usize> for MessageId {
    fn from(value: usize) -> Self {
        MessageId(value)
    }
}

impl From<MessageId> for usize {
    fn from(value: MessageId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let t: TaskId = 3usize.into();
        assert_eq!(usize::from(t), 3);
        let m: MessageId = 8usize.into();
        assert_eq!(usize::from(m), 8);
    }

    #[test]
    fn display() {
        assert_eq!(TaskId(1).to_string(), "T1");
        assert_eq!(MessageId(4).to_string(), "M4");
    }
}
