//! The DARPA Vision Benchmark task-flow graph (paper Fig. 1).
//!
//! The paper evaluates everything on the TFG of the DARPA (Integrated Image
//! Understanding) Vision Benchmark \[WRHR88\]: model-based recognition of a
//! hypothetical 2½-D object against `n` stored object models, invoked once
//! per arriving image.
//!
//! The scanned figure is partly illegible; this module reconstructs it from
//! the legible constants and the published structure (documented in
//! DESIGN.md): an input/labeling stage fans image features out to `n`
//! model-matching tasks, whose hypotheses are combined, verified by probing
//! the image, and reported. The legible message sizes (192, 1536, 3200,
//! 1728, 768, 384 bytes) and task sizes (1925, 400 ops) are kept, so the
//! paper's calibration constants hold: the longest message is
//! [`DVB_LONGEST_MESSAGE_BYTES`] and the longest task is
//! [`DVB_LONGEST_TASK_OPS`].

use crate::{TaskFlowGraph, TfgBuilder};

/// Size in bytes of the longest DVB message (`c` in Fig. 1).
pub const DVB_LONGEST_MESSAGE_BYTES: u64 = 3200;

/// Operation count of the longest DVB task.
pub const DVB_LONGEST_TASK_OPS: u64 = 1925;

/// Builds the DVB task-flow graph for `n_models` object models.
///
/// Structure (per reconstructed Fig. 1):
///
/// ```text
///            label (1925 ops)
///       a(192) ↙   ↓   ↘ a(192)        — one per model
///      match_0  …  match_{n-1}  (400 ops each)
///       b(1536) ↘  ↓  ↙ b(1536)
///            select (1536 ops)
///               ↓ c(3200)
///            verify (1925 ops)   ← h(768) skip edge from label
///               ↓ g(1728)
///            report (768 ops)    ← i(384) skip edge from select
/// ```
///
/// The graph has `n_models + 4` tasks and `2·n_models + 4` messages.
///
/// # Panics
///
/// Panics if `n_models == 0`.
///
/// # Examples
///
/// ```
/// use sr_tfg::dvb;
///
/// let g = dvb(5);
/// assert_eq!(g.num_tasks(), 9);
/// assert_eq!(g.num_messages(), 14);
/// assert_eq!(g.inputs().len(), 1);
/// assert_eq!(g.outputs().len(), 1);
/// ```
pub fn dvb(n_models: usize) -> TaskFlowGraph {
    assert!(n_models > 0, "DVB needs at least one object model");
    let mut b = TfgBuilder::new();
    let label = b.task("label", DVB_LONGEST_TASK_OPS);
    let select = b.task("select", 1536);
    let verify = b.task("verify", DVB_LONGEST_TASK_OPS);
    let report = b.task("report", 768);

    for i in 0..n_models {
        let m = b.task(format!("match{i}"), 400);
        b.message(format!("a{i}"), label, m, 192)
            .expect("valid message");
        b.message(format!("b{i}"), m, select, 1536)
            .expect("valid message");
    }
    b.message("c", select, verify, DVB_LONGEST_MESSAGE_BYTES)
        .expect("valid message");
    b.message("h", label, verify, 768).expect("valid message");
    b.message("g", verify, report, 1728).expect("valid message");
    b.message("i", select, report, 384).expect("valid message");
    b.build().expect("DVB graph is a DAG by construction")
}

/// `tiles` disjoint copies of the uniform-ops DVB graph in one TFG.
///
/// The paper's benchmark is one recognition pipeline on a 64-node machine;
/// scaling the fabric two orders of magnitude (ROADMAP item 2) cannot scale
/// the *single* pipeline the same way, because `label`/`select` are fan
/// hubs — every extra model funnels another message through the same
/// node's few links, so peak utilization grows without bound. The natural
/// scaled workload is instead many independent pipelines, one per region
/// of the machine, which is what a recognition farm would run. Task and
/// message indices are contiguous per tile (tile `t` owns tasks
/// `t·(n+4) .. (t+1)·(n+4)`), so a banded allocation can pin each pipeline
/// into its own sub-torus.
///
/// # Panics
///
/// Panics if `tiles == 0` or `n_models == 0`.
///
/// # Examples
///
/// ```
/// use sr_tfg::dvb_tiled;
///
/// let g = dvb_tiled(4, 10);
/// assert_eq!(g.num_tasks(), 4 * 14);
/// assert_eq!(g.num_messages(), 4 * 24);
/// assert_eq!(g.inputs().len(), 4);
/// ```
pub fn dvb_tiled(tiles: usize, n_models: usize) -> TaskFlowGraph {
    assert!(tiles > 0, "need at least one tile");
    assert!(n_models > 0, "DVB needs at least one object model");
    let mut b = TfgBuilder::new();
    for t in 0..tiles {
        let label = b.task(format!("label.{t}"), DVB_LONGEST_TASK_OPS);
        let select = b.task(format!("select.{t}"), 1536);
        let verify = b.task(format!("verify.{t}"), DVB_LONGEST_TASK_OPS);
        let report = b.task(format!("report.{t}"), 768);
        for i in 0..n_models {
            let m = b.task(format!("match{i}.{t}"), 400);
            b.message(format!("a{i}.{t}"), label, m, 192)
                .expect("valid message");
            b.message(format!("b{i}.{t}"), m, select, 1536)
                .expect("valid message");
        }
        b.message(format!("c.{t}"), select, verify, DVB_LONGEST_MESSAGE_BYTES)
            .expect("valid message");
        b.message(format!("h.{t}"), label, verify, 768)
            .expect("valid message");
        b.message(format!("g.{t}"), verify, report, 1728)
            .expect("valid message");
        b.message(format!("i.{t}"), select, report, 384)
            .expect("valid message");
    }
    b.build()
        .expect("tiled DVB is a DAG by construction")
        .with_uniform_ops(DVB_LONGEST_TASK_OPS)
}

/// The DVB graph with every task normalized to the longest task's size.
///
/// The paper's evaluation assumes "all tasks … take the same time", so the
/// throughput is set by the longest task and under-utilized processors do
/// not perturb the measurement. This is the graph the figure harnesses use.
///
/// # Panics
///
/// Panics if `n_models == 0`.
pub fn dvb_uniform(n_models: usize) -> TaskFlowGraph {
    dvb(n_models).with_uniform_ops(DVB_LONGEST_TASK_OPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timing;

    #[test]
    fn shape_scales_with_models() {
        for n in [1usize, 3, 8, 16] {
            let g = dvb(n);
            assert_eq!(g.num_tasks(), n + 4);
            assert_eq!(g.num_messages(), 2 * n + 4);
            assert_eq!(g.inputs().len(), 1, "single input task");
            assert_eq!(g.outputs().len(), 1, "single output task");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_models_panics() {
        let _ = dvb(0);
    }

    #[test]
    fn longest_constants_hold() {
        let g = dvb(6);
        assert_eq!(
            g.messages().iter().map(|m| m.bytes()).max().unwrap(),
            DVB_LONGEST_MESSAGE_BYTES
        );
        assert_eq!(
            g.tasks().iter().map(|t| t.ops()).max().unwrap(),
            DVB_LONGEST_TASK_OPS
        );
    }

    #[test]
    fn calibration_gives_50us_tau_c() {
        let g = dvb_uniform(6);
        let t = Timing::calibrated_dvb(64.0);
        assert!((t.longest_task(&g) - 50.0).abs() < 1e-9);
        assert!((t.longest_message(&g) - 50.0).abs() < 1e-9);
        let t128 = Timing::calibrated_dvb(128.0);
        assert!((t128.longest_message(&g) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_variant_preserves_messages() {
        let a = dvb(4);
        let b = dvb_uniform(4);
        assert_eq!(a.num_messages(), b.num_messages());
        assert!(b.tasks().iter().all(|t| t.ops() == DVB_LONGEST_TASK_OPS));
    }

    #[test]
    fn critical_path_passes_through_matching() {
        let g = dvb(3);
        let t = Timing::calibrated_dvb(64.0);
        // label + a + match + b + select + c + verify + g + report.
        let expected = t.exec_time(g.task(crate::TaskId(0)))
            + t.tx_time_bytes(192)
            + 400.0 / t.speed()
            + t.tx_time_bytes(1536)
            + 1536.0 / t.speed()
            + t.tx_time_bytes(3200)
            + 1925.0 / t.speed()
            + t.tx_time_bytes(1728)
            + 768.0 / t.speed();
        assert!((t.critical_path(&g) - expected).abs() < 1e-9);
    }
}
