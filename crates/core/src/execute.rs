//! Operational execution of a compiled schedule.
//!
//! The verifier proves a schedule is contention-free *within one frame*;
//! this module closes the loop by **executing** the pipeline over many
//! invocations — tasks run on their application processors, transmissions
//! happen exactly at the switching schedule's times — and measuring the
//! output intervals, as the wormhole simulator does for the baseline. If
//! scheduled routing keeps its promise, every measured interval equals
//! `τ_in` and every task is ready before its messages' windows open.
//!
//! The frame-to-invocation unfolding uses the paper's single-frame argument
//! in reverse: message `M_i` of invocation `j` transmits at the schedule's
//! segment times shifted by whole periods so they land inside
//! `[release_j, release_j + window]`, where `release_j = j·τ_in + t_e(T_is)`.

use sr_mapping::Allocation;
use sr_tfg::{MessageId, TaskFlowGraph, TaskId, Timing};

use crate::{Schedule, Segment, EPS};

/// One executed invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedInvocation {
    /// Invocation index.
    pub index: usize,
    /// Input arrival, µs.
    pub input_time: f64,
    /// Completion of the last output task, µs.
    pub output_time: f64,
}

/// The measured outcome of executing a schedule for several invocations.
#[derive(Debug, Clone)]
pub struct Execution {
    period: f64,
    invocations: Vec<ExecutedInvocation>,
}

impl Execution {
    /// Per-invocation records, in order.
    pub fn invocations(&self) -> &[ExecutedInvocation] {
        &self.invocations
    }

    /// Output intervals `δ_j`, µs.
    pub fn output_intervals(&self) -> Vec<f64> {
        self.invocations
            .windows(2)
            .map(|w| w[1].output_time - w[0].output_time)
            .collect()
    }

    /// Measured latency of each invocation, µs.
    pub fn latencies(&self) -> Vec<f64> {
        self.invocations
            .iter()
            .map(|r| r.output_time - r.input_time)
            .collect()
    }

    /// `true` when every output interval equals the period within `tol` —
    /// the operational statement of Eq. (1).
    pub fn is_throughput_constant(&self, tol: f64) -> bool {
        self.output_intervals()
            .iter()
            .all(|&d| (d - self.period).abs() <= tol)
    }
}

/// Why execution of a compiled schedule failed — each variant is a broken
/// promise and indicates a compiler bug (none are reachable from schedules
/// produced by [`crate::compile`]; the type exists so corruption is caught
/// loudly rather than mismeasured).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecuteError {
    /// A task had not finished when its outgoing message's window opened.
    TaskLate {
        /// The late task.
        task: TaskId,
        /// The invocation in which it was late.
        invocation: usize,
        /// When the task finished, µs.
        finished_at: f64,
        /// When its message's transmission began, µs.
        needed_at: f64,
    },
    /// A message had no transmission segments although its path crosses the
    /// network.
    MissingSegments {
        /// The unscheduled message.
        message: MessageId,
    },
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::TaskLate {
                task,
                invocation,
                finished_at,
                needed_at,
            } => write!(
                f,
                "{task} finished at {finished_at:.3} µs but invocation {invocation} \
                 needed its output at {needed_at:.3} µs"
            ),
            ExecuteError::MissingSegments { message } => {
                write!(f, "{message} has no scheduled transmission segments")
            }
        }
    }
}

impl std::error::Error for ExecuteError {}

/// Invocation-0 unfolding of a schedule: the frame-relative switching
/// tables mapped onto the timeline of the first invocation. Invocation `j`
/// is this shifted by `j·τ_in` (AP capacity within the period is checked at
/// compile time), which is what [`execute`] and the event replay
/// ([`crate::replay_events`]) both build on.
pub(crate) struct Unfolded {
    /// Per-message unfolded segments `(start, end)`, µs, in schedule order
    /// (empty for node-local messages).
    pub(crate) segments0: Vec<Vec<(f64, f64)>>,
    /// Per-message delivery instant (end of the last segment; the source
    /// task's completion bound for local messages), µs.
    pub(crate) delivery: Vec<f64>,
    /// Per-task completion time under dedicated-AP execution, µs.
    pub(crate) finish0: Vec<f64>,
    /// Output time of invocation 0 (latest output task completion), µs.
    pub(crate) out0: f64,
}

/// Unfolds the schedule's frame-relative segments into invocation 0's
/// window and derives task completion times, checking the schedule's
/// promises along the way.
pub(crate) fn unfold_invocation0(
    schedule: &Schedule,
    tfg: &TaskFlowGraph,
    timing: &Timing,
) -> Result<Unfolded, ExecuteError> {
    let period = schedule.period();
    let nt = tfg.num_tasks();

    // Per-message unfolded delivery/start offsets for invocation 0.
    // A message's segments are frame times; unfold each into the window of
    // invocation 0 (release at bounds.task_end(src)).
    let mut segments0 = vec![Vec::new(); tfg.num_messages()];
    let mut first_tx = vec![f64::INFINITY; tfg.num_messages()];
    let mut delivery = vec![0.0f64; tfg.num_messages()];
    for (i, _msg) in tfg.iter_messages() {
        let links = schedule.assignment().links(i);
        let release = schedule.bounds().task_end(tfg.message(i).src());
        if links.is_empty() {
            // Local: delivered at the source task's completion.
            first_tx[i.index()] = release;
            delivery[i.index()] = release;
            continue;
        }
        let segs: Vec<&Segment> = schedule
            .segments()
            .iter()
            .filter(|s| s.message == i)
            .collect();
        if segs.is_empty() {
            return Err(ExecuteError::MissingSegments { message: i });
        }
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        for s in segs {
            // Shift the frame-time segment up by whole periods until it
            // starts at or after the release instant (EPS guards against a
            // segment boundary that equals the folded release up to LP
            // rounding being pushed a whole period late).
            let k = ((release - s.start - EPS) / period).ceil().max(0.0);
            let shifted = s.start + k * period;
            segments0[i.index()].push((shifted, shifted + (s.end - s.start)));
            start = start.min(shifted);
            end = end.max(shifted + (s.end - s.start));
        }
        first_tx[i.index()] = start;
        delivery[i.index()] = end;
    }

    // Invocation-0 task completion times under dedicated-AP execution:
    // a task starts when all its inputs are delivered (input tasks at 0).
    let mut finish0 = vec![0.0f64; nt];
    for &t in tfg.topological_order() {
        let ready = tfg
            .incoming(t)
            .iter()
            .map(|&m| delivery[m.index()])
            .fold(0.0, f64::max);
        finish0[t.index()] = ready + timing.exec_time(tfg.task(t));
        // Promise check: the task must be done before any outgoing
        // message's first transmission.
        for &m in tfg.outgoing(t) {
            if finish0[t.index()] > first_tx[m.index()] + EPS {
                return Err(ExecuteError::TaskLate {
                    task: t,
                    invocation: 0,
                    finished_at: finish0[t.index()],
                    needed_at: first_tx[m.index()],
                });
            }
        }
    }
    // Output time of invocation 0:
    let out0 = tfg
        .outputs()
        .iter()
        .map(|&t| finish0[t.index()])
        .fold(0.0, f64::max);

    Ok(Unfolded {
        segments0,
        delivery,
        finish0,
        out0,
    })
}

/// Executes `schedule` for `invocations` periodic invocations and measures
/// the resulting output intervals and latencies.
///
/// Task executions are event-free to model: each AP runs its (single, by
/// the compile-time capacity check, possibly several) tasks as they become
/// ready; every message of invocation `j` is delivered exactly when its
/// last scheduled segment (unfolded into invocation `j`'s window) ends.
///
/// # Errors
///
/// [`ExecuteError`] when the schedule breaks a promise — possible only for
/// hand-corrupted schedules.
pub fn execute(
    schedule: &Schedule,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    invocations: usize,
) -> Result<Execution, ExecuteError> {
    let period = schedule.period();
    // AP capacity within the steady state: every node's total work fits the
    // period (checked at compile time), so invocation j is invocation 0
    // shifted by j·τ_in.
    let unfolded = unfold_invocation0(schedule, tfg, timing)?;
    let records = (0..invocations)
        .map(|j| ExecutedInvocation {
            index: j,
            input_time: j as f64 * period,
            output_time: unfolded.out0 + j as f64 * period,
        })
        .collect();
    let _ = alloc;
    Ok(Execution {
        period,
        invocations: records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::generators;
    use sr_topology::GeneralizedHypercube;

    fn setup() -> (
        GeneralizedHypercube,
        TaskFlowGraph,
        Allocation,
        Timing,
        Schedule,
    ) {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(4, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            80.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        (topo, tfg, alloc, timing, sched)
    }

    #[test]
    fn execution_has_constant_throughput() {
        let (_topo, tfg, alloc, timing, sched) = setup();
        let exec = execute(&sched, &tfg, &alloc, &timing, 25).expect("executes");
        assert_eq!(exec.invocations().len(), 25);
        assert!(exec.is_throughput_constant(1e-9));
        assert_eq!(exec.output_intervals().len(), 24);
        // Latency is identical every invocation and within the compile-time
        // bound.
        let lats = exec.latencies();
        assert!(lats.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        assert!(lats[0] <= sched.latency() + 1e-6);
        assert!(lats[0] >= timing.critical_path(&tfg) - 1e-6);
    }

    #[test]
    fn corrupted_schedule_is_caught() {
        let (_topo, tfg, alloc, timing, mut sched) = setup();
        // Remove every segment of the first network message.
        let victim = (0..tfg.num_messages())
            .map(MessageId)
            .find(|&m| !sched.assignment().links(m).is_empty())
            .unwrap();
        sched.segments.retain(|s| s.message != victim);
        let err = execute(&sched, &tfg, &alloc, &timing, 5).unwrap_err();
        assert_eq!(err, ExecuteError::MissingSegments { message: victim });
    }

    #[test]
    fn execution_matches_wormhole_under_no_contention() {
        // A single 2-task pipeline: both systems should deliver the same
        // steady throughput (δ = τ_in) — the baseline agreement case.
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(2, 500, 640);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        let exec = execute(&sched, &tfg, &alloc, &timing, 10).expect("executes");
        assert!(exec.is_throughput_constant(1e-9));
        assert!((exec.output_intervals()[0] - 60.0).abs() < 1e-9);
    }
}
