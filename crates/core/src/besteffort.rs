//! Idle-capacity analysis and **best-effort admission** — the paper's §7
//! asks how scheduled routing should handle traffic that is *not* known at
//! compile time. The answer implemented here: a compiled schedule `Ω`
//! leaves every link's busy intervals fully determined, so aperiodic
//! best-effort messages can be admitted online into provably idle windows
//! without perturbing a single scheduled transmission.

use sr_tfg::Timing;
use sr_topology::{LinkId, NodeId, Path, Topology};

use crate::{Schedule, EPS};

/// A clear-path reservation granted to a best-effort message: during
/// `[start, start + duration]` every link of `path` is idle in the compiled
/// schedule (guard margins included), so the transfer cannot collide with
/// real-time traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct BestEffortGrant {
    /// The route the message should take.
    pub path: Path,
    /// Transmission start within the period frame, µs.
    pub start: f64,
    /// Transmission time, µs.
    pub duration: f64,
}

impl BestEffortGrant {
    /// End of the reservation, µs.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

impl Schedule {
    /// The busy spans of `link` within one period frame, merged and
    /// ascending: every `[start, end]` in which a scheduled message
    /// occupies the link.
    pub fn link_busy_spans(&self, link: LinkId) -> Vec<(f64, f64)> {
        let mut spans: Vec<(f64, f64)> = self
            .segments
            .iter()
            .filter(|s| self.assignment.links(s.message).contains(&link))
            .map(|s| (s.start, s.end))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 + EPS => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }

    /// The idle windows of `link` within one period frame: the complement
    /// of [`Schedule::link_busy_spans`] in `[0, τ_in]`, with the schedule's
    /// guard time shaved off both ends of every window (a best-effort
    /// transfer needs the same switching margin as scheduled traffic).
    pub fn link_idle_windows(&self, link: LinkId) -> Vec<(f64, f64)> {
        let guard = self.guard_time;
        let mut windows = Vec::new();
        let mut cursor = 0.0;
        for (s, e) in self.link_busy_spans(link) {
            if s - cursor > EPS {
                windows.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if self.period - cursor > EPS {
            windows.push((cursor, self.period));
        }
        windows
            .into_iter()
            .filter_map(|(s, e)| {
                let s = s + guard;
                let e = e - guard;
                (e - s > EPS).then_some((s, e))
            })
            .collect()
    }

    /// Fraction of the frame in which `link` is idle (1.0 for unused
    /// links).
    pub fn link_idle_fraction(&self, link: LinkId) -> f64 {
        let busy: f64 = self.link_busy_spans(link).iter().map(|(s, e)| e - s).sum();
        1.0 - busy / self.period
    }
}

/// Intersects two ascending disjoint span lists.
fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e - s > EPS {
            out.push((s, e));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Admits an aperiodic best-effort message of `bytes` from `src` to `dst`
/// into the idle capacity of a compiled schedule.
///
/// Considers up to `path_cap` shortest paths; for each, intersects the idle
/// windows of every hop and takes the earliest window long enough for the
/// transfer. Returns the grant with the earliest start over all candidate
/// paths, or `None` when no path has a wide-enough simultaneous idle
/// window this frame.
///
/// Co-located endpoints are granted a trivial instant reservation.
///
/// # Panics
///
/// Panics if `src` or `dst` is out of range for `topo`.
pub fn admit_best_effort(
    schedule: &Schedule,
    topo: &dyn Topology,
    timing: &Timing,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    path_cap: usize,
) -> Option<BestEffortGrant> {
    let duration = timing.tx_time_bytes(bytes);
    if src == dst {
        return Some(BestEffortGrant {
            path: Path::trivial(src),
            start: 0.0,
            duration: 0.0,
        });
    }
    let mut best: Option<BestEffortGrant> = None;
    for path in topo.shortest_paths(src, dst, path_cap.max(1)) {
        let links = path.links(topo);
        let mut free = vec![(0.0, schedule.period())];
        for l in &links {
            free = intersect(&free, &schedule.link_idle_windows(*l));
            if free.is_empty() {
                break;
            }
        }
        if let Some(&(s, _)) = free.iter().find(|&&(s, e)| e - s + EPS >= duration) {
            if best.as_ref().is_none_or(|g| s < g.start - EPS) {
                best = Some(BestEffortGrant {
                    path,
                    start: s,
                    duration,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> (
        GeneralizedHypercube,
        sr_tfg::TaskFlowGraph,
        Timing,
        Schedule,
    ) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 500, 1280); // tx 20 µs each
        let timing = Timing::new(64.0, 10.0); // exec 50
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        (topo, tfg, timing, sched)
    }

    #[test]
    fn busy_and_idle_partition_the_frame() {
        let (topo, _, _, sched) = compiled();
        for l in 0..sr_topology::Topology::num_links(&topo) {
            let link = LinkId(l);
            let busy: f64 = sched.link_busy_spans(link).iter().map(|(s, e)| e - s).sum();
            let idle: f64 = sched
                .link_idle_windows(link)
                .iter()
                .map(|(s, e)| e - s)
                .sum();
            assert!(
                (busy + idle - sched.period()).abs() < 1e-6,
                "link {link}: busy {busy} + idle {idle} != {}",
                sched.period()
            );
            assert!((sched.link_idle_fraction(link) - idle / sched.period()).abs() < 1e-9);
        }
    }

    #[test]
    fn unused_link_is_fully_idle() {
        let (topo, _, _, sched) = compiled();
        // Find a link carrying no scheduled message.
        let unused = (0..sr_topology::Topology::num_links(&topo))
            .map(LinkId)
            .find(|&l| sched.link_busy_spans(l).is_empty())
            .expect("3-cube has spare links for a 2-message chain");
        assert_eq!(sched.link_idle_windows(unused), vec![(0.0, 100.0)]);
        assert_eq!(sched.link_idle_fraction(unused), 1.0);
    }

    #[test]
    fn grant_avoids_scheduled_traffic() {
        let (topo, _, timing, sched) = compiled();
        let grant = admit_best_effort(
            &sched,
            &topo,
            &timing,
            NodeId(0),
            NodeId(7),
            640, // 10 µs
            16,
        )
        .expect("idle capacity exists");
        assert!(grant.path.validate(&topo));
        assert_eq!(grant.path.source(), NodeId(0));
        assert_eq!(grant.path.destination(), NodeId(7));
        assert!((grant.end() - grant.duration - grant.start).abs() < 1e-12);
        // The granted span must lie inside every hop's idle windows.
        for l in grant.path.links(&topo) {
            let ok = sched
                .link_idle_windows(l)
                .iter()
                .any(|&(s, e)| grant.start >= s - 1e-9 && grant.end() <= e + 1e-9);
            assert!(
                ok,
                "grant [{}, {}] collides on {l}",
                grant.start,
                grant.end()
            );
        }
    }

    #[test]
    fn oversized_request_is_refused() {
        let (topo, _, timing, sched) = compiled();
        // Longer than the whole frame: impossible.
        let grant = admit_best_effort(
            &sched,
            &topo,
            &timing,
            NodeId(0),
            NodeId(7),
            64 * 101, // 101 µs > 100 µs frame
            16,
        );
        assert!(grant.is_none());
    }

    #[test]
    fn colocated_request_is_trivial() {
        let (topo, _, timing, sched) = compiled();
        let grant =
            admit_best_effort(&sched, &topo, &timing, NodeId(3), NodeId(3), 9999, 4).unwrap();
        assert_eq!(grant.path.hops(), 0);
        assert_eq!(grant.duration, 0.0);
    }

    #[test]
    fn intersect_spans() {
        let a = [(0.0, 10.0), (20.0, 30.0)];
        let b = [(5.0, 25.0)];
        assert_eq!(intersect(&a, &b), vec![(5.0, 10.0), (20.0, 25.0)]);
        assert!(intersect(&a, &[]).is_empty());
    }

    #[test]
    fn guarded_schedule_shrinks_idle_windows() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let plain = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig::default(),
        )
        .unwrap();
        let guarded = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig {
                guard_time: 3.0,
                ..CompileConfig::default()
            },
        )
        .unwrap();
        // Pick a used link and compare idle totals.
        let used = (0..sr_topology::Topology::num_links(&topo))
            .map(LinkId)
            .find(|&l| !plain.link_busy_spans(l).is_empty())
            .unwrap();
        let idle = |s: &Schedule, l: LinkId| -> f64 {
            s.link_idle_windows(l).iter().map(|(a, b)| b - a).sum()
        };
        assert!(idle(&guarded, used) < idle(&plain, used) + 1e-9);
    }
}
