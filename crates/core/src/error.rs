use std::error::Error;
use std::fmt;

use sr_lp::LpError;
use sr_tfg::{MessageId, TfgError};
use sr_topology::LinkId;

/// Why scheduled-routing compilation failed.
///
/// Each variant corresponds to a stage of the Fig. 3 pipeline; the paper's
/// evaluation reports exactly these outcomes (utilization above unity at some
/// loads, message–interval allocation failing at three torus points, …).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// Time-bound assignment failed (period too short, oversized message…).
    TimeBounds(TfgError),
    /// The best path assignment found still has peak utilization above 1:
    /// the TFG's communication requirements exceed the link capacity at this
    /// period ("If U < 1, SR can be attempted; otherwise …").
    UtilizationExceeded {
        /// The peak utilization reached.
        utilization: f64,
    },
    /// The message–interval allocation LP for one maximal related subset is
    /// infeasible: no split of the messages' transmission times over their
    /// active intervals respects every link's per-interval capacity.
    AllocationInfeasible {
        /// Messages of the failing subset.
        subset: Vec<MessageId>,
    },
    /// An interval's messages cannot all be transmitted within it: the
    /// minimal total time of the link-feasible-set schedule exceeds the
    /// interval length.
    IntervalUnschedulable {
        /// Index of the failing interval.
        interval: usize,
        /// Minimal schedule length required, µs.
        required: f64,
        /// Interval length available, µs.
        available: f64,
    },
    /// Enumerating link-feasible sets would exceed the configured limit
    /// (pathologically dense conflict graph).
    TooManyFeasibleSets {
        /// Index of the offending interval.
        interval: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The LP solver failed unexpectedly (numerical trouble).
    Lp(LpError),
    /// Co-located tasks demand more execution time per period than their
    /// shared application processor has: the pipeline rate is unsustainable
    /// regardless of routing.
    NodeOverloaded {
        /// The overloaded node.
        node: sr_topology::NodeId,
        /// Total execution demand per invocation on that node, µs.
        demand: f64,
        /// The invocation period, µs.
        period: f64,
    },
    /// The allocation does not match the TFG/topology pair.
    AllocationMismatch {
        /// Placements supplied.
        alloc_tasks: usize,
        /// Tasks in the graph.
        tfg_tasks: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TimeBounds(e) => write!(f, "time-bound assignment failed: {e}"),
            CompileError::UtilizationExceeded { utilization } => write!(
                f,
                "peak utilization {utilization:.3} exceeds link capacity (need ≤ 1)"
            ),
            CompileError::AllocationInfeasible { subset } => write!(
                f,
                "message-interval allocation infeasible for a subset of {} messages",
                subset.len()
            ),
            CompileError::IntervalUnschedulable {
                interval,
                required,
                available,
            } => write!(
                f,
                "interval {interval} needs {required:.3} µs but only {available:.3} µs long"
            ),
            CompileError::TooManyFeasibleSets { interval, cap } => write!(
                f,
                "interval {interval} has more than {cap} link-feasible sets"
            ),
            CompileError::Lp(e) => write!(f, "LP solver failed: {e}"),
            CompileError::NodeOverloaded {
                node,
                demand,
                period,
            } => write!(
                f,
                "{node} must execute {demand:.3} µs of tasks per {period:.3} µs period"
            ),
            CompileError::AllocationMismatch {
                alloc_tasks,
                tfg_tasks,
            } => write!(
                f,
                "allocation covers {alloc_tasks} tasks but the graph has {tfg_tasks}"
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::TimeBounds(e) => Some(e),
            CompileError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TfgError> for CompileError {
    fn from(e: TfgError) -> Self {
        CompileError::TimeBounds(e)
    }
}

impl From<LpError> for CompileError {
    fn from(e: LpError) -> Self {
        CompileError::Lp(e)
    }
}

/// A violation found while replaying a compiled schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Two message segments occupy the same link at overlapping times.
    LinkContention {
        /// The contended link.
        link: LinkId,
        /// The two clashing messages.
        messages: (MessageId, MessageId),
        /// Overlap start, µs.
        at: f64,
    },
    /// A message's scheduled segments do not add up to its transmission
    /// time.
    IncompleteTransmission {
        /// The short-changed message.
        message: MessageId,
        /// Time scheduled, µs.
        scheduled: f64,
        /// Time required, µs.
        required: f64,
    },
    /// A segment lies (partly) outside the message's release/deadline spans.
    OutsideWindow {
        /// The offending message.
        message: MessageId,
        /// Segment start, µs.
        start: f64,
        /// Segment end, µs.
        end: f64,
    },
    /// A segment is not aligned with the message's assigned path (its links
    /// differ from the path assignment).
    WrongPath {
        /// The offending message.
        message: MessageId,
    },
    /// Node switching commands disagree with the message segments (a
    /// crossbar would have to be in two states at once).
    ConflictingCommands {
        /// The node whose schedule is inconsistent.
        node: sr_topology::NodeId,
        /// When the conflict occurs, µs.
        at: f64,
    },
    /// A scheduled message's path crosses a failed link or node (only
    /// raised by [`crate::verify_with_faults`]).
    UsesFailedResource {
        /// The message routed over a failed resource.
        message: MessageId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::LinkContention { link, messages, at } => write!(
                f,
                "{} and {} contend for {link} at t={at:.3} µs",
                messages.0, messages.1
            ),
            VerifyError::IncompleteTransmission {
                message,
                scheduled,
                required,
            } => write!(
                f,
                "{message} scheduled for {scheduled:.3} µs of {required:.3} µs"
            ),
            VerifyError::OutsideWindow {
                message,
                start,
                end,
            } => write!(
                f,
                "{message} segment [{start:.3}, {end:.3}] leaves its window"
            ),
            VerifyError::WrongPath { message } => {
                write!(f, "{message} segment deviates from its assigned path")
            }
            VerifyError::ConflictingCommands { node, at } => {
                write!(f, "switching commands conflict at {node}, t={at:.3} µs")
            }
            VerifyError::UsesFailedResource { message } => {
                write!(f, "{message} is routed over a failed link or node")
            }
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::UtilizationExceeded { utilization: 1.4 };
        assert!(e.to_string().contains("1.4"));
        let e = CompileError::IntervalUnschedulable {
            interval: 3,
            required: 5.0,
            available: 4.0,
        };
        assert!(e.to_string().contains("interval 3"));
        let v = VerifyError::IncompleteTransmission {
            message: MessageId(2),
            scheduled: 1.0,
            required: 2.0,
        };
        assert!(v.to_string().contains("M2"));
    }

    #[test]
    fn conversions() {
        let e: CompileError = TfgError::Empty.into();
        assert!(matches!(e, CompileError::TimeBounds(_)));
        let e: CompileError = LpError::Infeasible.into();
        assert!(matches!(e, CompileError::Lp(_)));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CompileError>();
        assert_error::<VerifyError>();
    }
}
