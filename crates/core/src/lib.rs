//! **Scheduled routing**: compile-time, contention-free communication
//! schedules for task-level pipelining.
//!
//! This crate implements the primary contribution of Shukla & Agrawal
//! (ISCA '91). Instead of resolving link contention obliviously at run time
//! (wormhole routing's FCFS hardware, which breaks the constant-throughput
//! requirement of real-time pipelines), scheduled routing integrates the
//! task-flow graph's communication requirements into flow control: every
//! communication processor independently executes a **switching schedule**
//! computed at compile time, so every message finds a completely clear
//! source→destination path inside its release/deadline window. The result is
//! deadlock-free, contention-free, buffers nothing at intermediate nodes,
//! and exploits the multiple equivalent shortest paths of the topology.
//!
//! Compilation follows the paper's Fig. 3 pipeline:
//!
//! 1. **Time bounds** — [`sr_tfg::assign_time_bounds`] folds every message's
//!    release/deadline into one period frame `[0, τ_in)`.
//! 2. **Intervals & activity** — the distinct window endpoints partition the
//!    frame into intervals ([`Intervals`]); the activity matrix `A` says
//!    which message may transmit in which interval.
//! 3. **Path assignment** — [`assign_paths`] (the Fig. 4 heuristic)
//!    iteratively reroutes messages over alternative shortest paths to
//!    minimize the peak link/spot utilization `U` ([`UtilizationMap`]);
//!    `U ≤ 1` is the necessary condition for a feasible schedule.
//! 4. **Message–interval allocation** — an LP per *maximal related subset*
//!    ([`related_subsets`]) splits each message's transmission time across
//!    its active intervals without exceeding any link's capacity in any
//!    interval (constraints (3),(4)) — [`allocate_intervals`].
//! 5. **Interval scheduling** — inside each interval, messages needing
//!    several links *simultaneously* are packed into **link-feasible sets**
//!    (independent sets of the link-conflict graph) whose total time is
//!    LP-minimized after \[BDW86\] — [`schedule_intervals`].
//! 6. **Switching schedules** — the timed slices become per-node crossbar
//!    command lists `ω_i` ([`NodeSchedule`]), collectively the communication
//!    schedule `Ω` ([`Schedule`]), which [`verify`] replays to prove
//!    contention-freedom, window compliance, and completeness.
//!
//! The one-call entry point is [`compile`].
//!
//! # Examples
//!
//! ```
//! use sr_core::{compile, CompileConfig};
//! use sr_tfg::Timing;
//! use sr_topology::GeneralizedHypercube;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cube = GeneralizedHypercube::binary(6)?;
//! let tfg = sr_tfg::dvb_uniform(6);
//! let alloc = sr_mapping::greedy(&tfg, &cube);
//! let timing = Timing::calibrated_dvb(64.0);
//!
//! let sched = compile(&cube, &tfg, &alloc, &timing, 100.0, &CompileConfig::default())?;
//! assert!(sched.peak_utilization() <= 1.0 + 1e-6);
//! sr_core::verify(&sched, &cube, &tfg)?; // contention-free, deadline-safe
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation_flow;
mod allocation_lp;
mod assign_paths;
mod assignment;
mod besteffort;
mod compile;
mod damage;
mod diagnosis;
mod error;
mod execute;
mod export;
mod interval_sched;
mod intervals;
mod optimize;
mod render;
mod repack;
mod replay;
mod subsets;
mod summary;
mod switching;
mod utilization;
mod verify;

pub use allocation_flow::{
    allocate_intervals_flow, allocate_intervals_flow_with_kernel,
    allocate_intervals_pinned_reserved_flow, FlowAllocStats, FlowKernel, FlowWorkspace,
};
pub use allocation_lp::{
    allocate_intervals, allocate_intervals_partitioned, allocate_intervals_pinned,
    allocate_intervals_pinned_reserved, allocate_intervals_pinned_warm, allocate_intervals_stats,
    allocate_intervals_warm, AllocBasisCache, AllocationStats, IntervalAllocation,
};
pub use assign_paths::{
    assign_paths, assign_paths_partial, assign_paths_partitioned, assign_paths_pooled,
    band_partition, band_partition_topo, AssignPathsConfig, AssignPathsOutcome, PathPool,
};
pub use assignment::PathAssignment;
pub use besteffort::{admit_best_effort, BestEffortGrant};
pub use compile::{
    compile, compile_diagnosed, compile_with_recorder, AllocEngine, CompileConfig, Schedule,
};
pub use damage::{analyze_damage, DamageReport};
pub use diagnosis::{
    bottlenecks, diagnose_infeasible_subset, Bottleneck, CandidateOutcome, CandidateRecord,
    Diagnosis, SaturatedRow, SubsetDiagnosis,
};
pub use error::{CompileError, VerifyError};
pub use execute::{execute, ExecuteError, ExecutedInvocation, Execution};
pub use interval_sched::{
    schedule_intervals, schedule_intervals_greedy, schedule_intervals_guarded,
    schedule_intervals_guarded_stats, IntervalSchedStats, IntervalSchedule, Slice,
};
pub use intervals::{ActivityMatrix, Intervals};
pub use optimize::{co_design, find_min_period, CoDesignResult, MinPeriodResult};
pub use repack::{
    free_within, intersect, pack_affected, reallocate_pinned, ReallocAttempt,
    ReallocAttemptOutcome, Repacked,
};
pub use replay::replay_events;
pub use subsets::related_subsets;
pub use summary::ScheduleSummary;
pub use switching::{build_node_schedules, Command, Connection, NodeSchedule, Port, Segment};
pub use utilization::{Hotspot, UtilizationMap};
pub use verify::{verify, verify_with_faults};

/// Comparison tolerance for schedule times, in µs.
///
/// Coarser than the TFG-level tolerance because values pass through the LP
/// solver.
pub const EPS: f64 = 1e-6;
