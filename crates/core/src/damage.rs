use sr_tfg::MessageId;
use sr_topology::FaultSet;

use crate::Schedule;

/// The damage a [`FaultSet`] does to a compiled schedule: which messages
/// keep their clear-path guarantee and which lost it.
///
/// Produced by [`analyze_damage`]. The partition drives incremental repair:
/// `unaffected` messages keep their paths, allocations, and Ω entries
/// bit-identical (the *pinning rule*), `affected` messages are re-routed
/// over the masked topology, and `lost` messages cannot be carried at all
/// because a communication endpoint itself failed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DamageReport {
    /// Messages whose assigned path touches no failed link or node. Their
    /// schedule entries remain valid verbatim.
    pub unaffected: Vec<MessageId>,
    /// Messages whose path crosses a failed link or an interior failed
    /// node: the transmission must be re-routed.
    pub affected: Vec<MessageId>,
    /// Messages whose source or destination node failed: no route can
    /// exist, the message is gone with its endpoint.
    pub lost: Vec<MessageId>,
}

impl DamageReport {
    /// `true` when the fault set touches no scheduled path at all.
    pub fn is_clean(&self) -> bool {
        self.affected.is_empty() && self.lost.is_empty()
    }

    /// Messages needing attention: `affected` then `lost`, ascending within
    /// each.
    pub fn damaged(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.affected.iter().chain(self.lost.iter()).copied()
    }
}

/// Partitions a compiled schedule's messages by what `faults` does to their
/// assigned paths (see [`DamageReport`]).
///
/// Purely path-based: no topology access is needed because the schedule
/// already carries every message's node sequence and link list. Messages
/// with trivial (zero-hop) paths — co-located endpoints — are unaffected
/// unless their single node failed, in which case they are lost.
pub fn analyze_damage(schedule: &Schedule, faults: &FaultSet) -> DamageReport {
    let mut report = DamageReport::default();
    let assignment = schedule.assignment();
    for i in 0..assignment.len() {
        let m = MessageId(i);
        let path = assignment.path(m);
        let nodes = path.nodes();
        if faults.is_node_failed(path.source()) || faults.is_node_failed(path.destination()) {
            report.lost.push(m);
        } else if nodes.iter().any(|&v| faults.is_node_failed(v))
            || assignment
                .links(m)
                .iter()
                .any(|&l| faults.is_link_failed(l))
        {
            report.affected.push(m);
        } else {
            report.unaffected.push(m);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> (GeneralizedHypercube, Schedule) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            75.0,
            &CompileConfig::default(),
        )
        .expect("diamond compiles");
        (topo, sched)
    }

    #[test]
    fn no_faults_means_all_unaffected() {
        let (_, sched) = compiled();
        let report = analyze_damage(&sched, &FaultSet::new());
        assert!(report.is_clean());
        assert_eq!(report.unaffected.len(), sched.assignment().len());
    }

    #[test]
    fn failed_link_partitions_by_usage() {
        let (_, sched) = compiled();
        // Pick a link used by at least one message.
        let m0 = sched.segments()[0].message;
        let link = sched.assignment().links(m0)[0];
        let report = analyze_damage(&sched, &FaultSet::new().fail_link(link));
        assert!(report.affected.contains(&m0));
        assert!(report.lost.is_empty());
        for &m in &report.unaffected {
            assert!(!sched.assignment().links(m).contains(&link));
        }
        assert_eq!(
            report.unaffected.len() + report.affected.len(),
            sched.assignment().len()
        );
    }

    #[test]
    fn failed_endpoint_loses_its_messages() {
        let (_, sched) = compiled();
        let m0 = sched.segments()[0].message;
        let src = sched.assignment().path(m0).source();
        let report = analyze_damage(&sched, &FaultSet::new().fail_node(src));
        assert!(report.lost.contains(&m0));
        // Every lost message starts or ends at the dead node; every affected
        // one merely passes through it.
        for &m in &report.lost {
            let p = sched.assignment().path(m);
            assert!(p.source() == src || p.destination() == src);
        }
        for &m in &report.affected {
            let p = sched.assignment().path(m);
            assert!(p.source() != src && p.destination() != src);
            assert!(p.nodes().contains(&src));
        }
    }
}
