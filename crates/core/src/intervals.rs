use sr_tfg::{MessageId, TimeBounds};

use crate::EPS;

/// The partition of the period frame `[0, τ_in]` into intervals
/// `A_1 … A_K` induced by the distinct release/deadline endpoints of all
/// messages (paper §5.1: `t_0 = 0 < t_1 < … < t_K = τ_in`).
///
/// Because every window boundary is an interval endpoint, a message is
/// either active throughout an interval or not active in it at all — which
/// is what makes the activity matrix a clean 0/1 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Intervals {
    endpoints: Vec<f64>,
}

impl Intervals {
    /// Crate-internal constructor from explicit ascending endpoints.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_endpoints(endpoints: Vec<f64>) -> Self {
        debug_assert!(endpoints.len() >= 2);
        debug_assert!(endpoints.windows(2).all(|w| w[1] > w[0]));
        Intervals { endpoints }
    }

    /// Builds the interval partition for a time-bound assignment.
    pub fn from_bounds(bounds: &TimeBounds) -> Self {
        let period = bounds.period();
        let mut pts = vec![0.0, period];
        for w in bounds.windows() {
            for (s, e) in w.spans() {
                pts.push(s);
                pts.push(e);
            }
        }
        pts.sort_by(f64::total_cmp);
        let mut endpoints: Vec<f64> = Vec::with_capacity(pts.len());
        for p in pts {
            let p = p.clamp(0.0, period);
            if endpoints.last().is_none_or(|&last| p - last > EPS) {
                endpoints.push(p);
            }
        }
        // Guarantee the frame end is the exact period value.
        let last = endpoints.last_mut().expect("at least one endpoint");
        if (*last - period).abs() <= EPS {
            *last = period;
        } else {
            endpoints.push(period);
        }
        Intervals { endpoints }
    }

    /// Number of intervals `K`.
    pub fn len(&self) -> usize {
        self.endpoints.len() - 1
    }

    /// `true` when the frame degenerated to a single point (never happens
    /// for a positive period).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th interval `[t_{k}, t_{k+1}]` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn bounds(&self, k: usize) -> (f64, f64) {
        (self.endpoints[k], self.endpoints[k + 1])
    }

    /// Length of the `k`-th interval, in µs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn length(&self, k: usize) -> f64 {
        let (s, e) = self.bounds(k);
        e - s
    }

    /// The ascending endpoint sequence `t_0 … t_K`.
    pub fn endpoints(&self) -> &[f64] {
        &self.endpoints
    }

    /// Index of the interval containing time `t` (end-exclusive except for
    /// the frame end).
    pub fn containing(&self, t: f64) -> Option<usize> {
        if t < -EPS || t > *self.endpoints.last().expect("non-empty") + EPS {
            return None;
        }
        let k = self
            .endpoints
            .partition_point(|&p| p <= t + EPS)
            .saturating_sub(1);
        Some(k.min(self.len() - 1))
    }
}

/// The message activity matrix `A = [a_ik]` (paper Def. preceding (2)):
/// `a_ik = 1` iff message `M_i` may transmit during interval `A_k`.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityMatrix {
    /// Row-major: `active[i][k]`.
    active: Vec<Vec<bool>>,
}

impl ActivityMatrix {
    /// Builds the activity matrix from windows and the interval partition.
    pub fn new(bounds: &TimeBounds, intervals: &Intervals) -> Self {
        let active = bounds
            .windows()
            .iter()
            .map(|w| {
                (0..intervals.len())
                    .map(|k| {
                        let (s, e) = intervals.bounds(k);
                        w.active_during(s, e)
                    })
                    .collect()
            })
            .collect();
        ActivityMatrix { active }
    }

    /// `a_ik`: may `message` transmit in interval `k`?
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_active(&self, message: MessageId, k: usize) -> bool {
        self.active[message.index()][k]
    }

    /// The intervals in which `message` is active, ascending.
    pub fn active_intervals(&self, message: MessageId) -> Vec<usize> {
        self.active[message.index()]
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(k, _)| k)
            .collect()
    }

    /// The messages active in interval `k`, ascending.
    pub fn active_messages(&self, k: usize) -> Vec<MessageId> {
        (0..self.active.len())
            .filter(|&i| self.active[i][k])
            .map(MessageId)
            .collect()
    }

    /// Number of message rows.
    pub fn num_messages(&self) -> usize {
        self.active.len()
    }

    /// Total active time of `message`: Σ over its active intervals of the
    /// interval length (the left side of the paper's constraint (2)).
    pub fn active_time(&self, message: MessageId, intervals: &Intervals) -> f64 {
        self.active_intervals(message)
            .iter()
            .map(|&k| intervals.length(k))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_tfg::{assign_time_bounds, generators, Timing, WindowPolicy};

    fn bounds(period: f64) -> TimeBounds {
        // chain of 3 tasks, exec 50 each, messages tx 10 each, τ_c = 50.
        let g = generators::chain(3, 500, 640);
        let t = Timing::new(64.0, 10.0);
        assign_time_bounds(&g, &t, period, WindowPolicy::LongestTask).unwrap()
    }

    #[test]
    fn endpoints_cover_frame() {
        let b = bounds(120.0);
        let iv = Intervals::from_bounds(&b);
        assert_eq!(iv.endpoints().first(), Some(&0.0));
        assert_eq!(iv.endpoints().last(), Some(&120.0));
        assert!(!iv.is_empty());
        let total: f64 = (0..iv.len()).map(|k| iv.length(k)).sum();
        assert!((total - 120.0).abs() < 1e-9);
    }

    #[test]
    fn interval_boundaries_are_window_endpoints() {
        // Releases at 50 (fold 50) and 150 (fold 30 at period 120),
        // windows of 50: spans [50,100] and [30,80].
        let b = bounds(120.0);
        let iv = Intervals::from_bounds(&b);
        for p in [0.0, 30.0, 50.0, 80.0, 100.0, 120.0] {
            assert!(
                iv.endpoints().iter().any(|&e| (e - p).abs() < 1e-6),
                "missing endpoint {p} in {:?}",
                iv.endpoints()
            );
        }
    }

    #[test]
    fn activity_matches_spans() {
        let b = bounds(120.0);
        let iv = Intervals::from_bounds(&b);
        let a = ActivityMatrix::new(&b, &iv);
        assert_eq!(a.num_messages(), 2);
        // Message 0 active exactly on [50,100].
        for k in 0..iv.len() {
            let (s, e) = iv.bounds(k);
            let mid = 0.5 * (s + e);
            let expect = (50.0..100.0).contains(&mid);
            assert_eq!(
                a.is_active(MessageId(0), k),
                expect,
                "interval {k} [{s},{e}]"
            );
        }
        // Constraint (2) holds: active time >= duration.
        for (i, w) in b.windows().iter().enumerate() {
            assert!(a.active_time(MessageId(i), &iv) >= w.duration() - 1e-9);
        }
    }

    #[test]
    fn wrap_windows_are_active_in_two_pieces() {
        // Period 80: message 1 releases at 70, window 50 -> [0,40] ∪ [70,80].
        let b = bounds(80.0);
        let iv = Intervals::from_bounds(&b);
        let a = ActivityMatrix::new(&b, &iv);
        let ks = a.active_intervals(MessageId(1));
        assert!(!ks.is_empty());
        let (first_start, _) = iv.bounds(ks[0]);
        let (_, last_end) = iv.bounds(*ks.last().unwrap());
        assert!(first_start.abs() < 1e-9, "wraps to frame start");
        assert!((last_end - 80.0).abs() < 1e-9, "extends to frame end");
        // There is a gap in the middle (not all intervals active).
        assert!(ks.len() < iv.len());
    }

    #[test]
    fn containing_lookup() {
        let b = bounds(120.0);
        let iv = Intervals::from_bounds(&b);
        for k in 0..iv.len() {
            let (s, e) = iv.bounds(k);
            assert_eq!(iv.containing(0.5 * (s + e)), Some(k));
        }
        assert_eq!(iv.containing(-5.0), None);
        assert_eq!(iv.containing(125.0), None);
        assert_eq!(iv.containing(120.0), Some(iv.len() - 1));
    }

    #[test]
    fn full_frame_windows_give_trivial_partition() {
        let b = bounds(50.0); // period = τ_c: every window covers the frame
        let iv = Intervals::from_bounds(&b);
        assert_eq!(iv.len(), 1);
        let a = ActivityMatrix::new(&b, &iv);
        assert!(a.is_active(MessageId(0), 0));
        assert!(a.is_active(MessageId(1), 0));
    }
}
