use sr_tfg::MessageId;
use sr_topology::{LinkId, NodeId, Topology};

use crate::{IntervalSchedule, PathAssignment};

/// One uninterrupted transmission of (part of) a message: during
/// `[start, end]` the message's whole path is clear and carries it.
///
/// Messages split across several interval slices get several segments; the
/// verifier checks that the segment lengths add up to the transmission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The transmitted message.
    pub message: MessageId,
    /// Absolute start within the period frame, µs.
    pub start: f64,
    /// Absolute end within the period frame, µs.
    pub end: f64,
}

impl Segment {
    /// Segment length, µs.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A crossbar endpoint inside a communication processor: a network link or
/// the local application processor's buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// One of the node's half-duplex network links.
    Link(LinkId),
    /// The node's application processor (its input/output buffers).
    Processor,
}

/// A crossbar connection: route data arriving on `from` out through `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Connection {
    /// Where the data enters the CP.
    pub from: Port,
    /// Where the data leaves the CP.
    pub to: Port,
}

/// A timed switching command in a node schedule `ω_i` (paper §4.1): hold
/// `connection` during `[start, end]` to carry `message`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Command {
    /// Absolute start within the period frame, µs.
    pub start: f64,
    /// Absolute end within the period frame, µs.
    pub end: f64,
    /// The crossbar setting.
    pub connection: Connection,
    /// The message being carried (for tracing/verification).
    pub message: MessageId,
}

/// The switching schedule `ω_i` of one communication processor: the timed
/// crossbar commands it executes, independently of every other node, once
/// per period frame.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSchedule {
    node: NodeId,
    commands: Vec<Command>,
}

impl NodeSchedule {
    /// Crate-internal constructor (tests, corrupt-schedule injection).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(node: NodeId, commands: Vec<Command>) -> Self {
        NodeSchedule { node, commands }
    }

    /// The node this schedule drives.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Commands sorted by start time.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// `true` when the node never switches (carries no traffic).
    pub fn is_idle(&self) -> bool {
        self.commands.is_empty()
    }
}

/// Derives message [`Segment`]s and per-node switching schedules `Ω = {ω_i}`
/// from the interval schedules (paper §5.4).
///
/// For every slice and every member message, each node along the message's
/// path receives one command covering the slice's span:
///
/// * the source connects its processor buffers to the first link,
/// * intermediate nodes connect incoming link to outgoing link,
/// * the destination connects the last link to its processor buffers.
///
/// Returns `(segments, node schedules)`; node schedules cover every node of
/// the topology (idle nodes get empty command lists).
pub fn build_node_schedules(
    assignment: &PathAssignment,
    interval_schedules: &[IntervalSchedule],
    topo: &dyn Topology,
) -> (Vec<Segment>, Vec<NodeSchedule>) {
    let mut segments = Vec::new();
    let mut commands: Vec<Vec<Command>> = vec![Vec::new(); topo.num_nodes()];

    for is in interval_schedules {
        for slice in &is.slices {
            for &m in &slice.messages {
                let seg = Segment {
                    message: m,
                    start: slice.start,
                    end: slice.start + slice.duration,
                };
                segments.push(seg);
                let path = assignment.path(m);
                let nodes = path.nodes();
                let links = assignment.links(m);
                for (i, &node) in nodes.iter().enumerate() {
                    let from = if i == 0 {
                        Port::Processor
                    } else {
                        Port::Link(links[i - 1])
                    };
                    let to = if i == nodes.len() - 1 {
                        Port::Processor
                    } else {
                        Port::Link(links[i])
                    };
                    commands[node.index()].push(Command {
                        start: seg.start,
                        end: seg.end,
                        connection: Connection { from, to },
                        message: m,
                    });
                }
            }
        }
    }

    segments.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then_with(|| a.message.cmp(&b.message))
    });
    let node_schedules = commands
        .into_iter()
        .enumerate()
        .map(|(n, mut cmds)| {
            cmds.sort_by(|a, b| {
                a.start
                    .total_cmp(&b.start)
                    .then_with(|| a.message.cmp(&b.message))
            });
            NodeSchedule {
                node: NodeId(n),
                commands: cmds,
            }
        })
        .collect();
    (segments, node_schedules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Slice;
    use sr_topology::{Path, Topology};

    fn setup() -> (
        sr_topology::GeneralizedHypercube,
        PathAssignment,
        Vec<IntervalSchedule>,
    ) {
        let topo = sr_topology::GeneralizedHypercube::binary(2).unwrap();
        // One message over two hops: 0 -> 1 -> 3.
        let pa = PathAssignment::new(
            vec![Path::new(vec![NodeId(0), NodeId(1), NodeId(3)])],
            &topo,
        );
        let schedules = vec![IntervalSchedule {
            interval: 0,
            slices: vec![Slice {
                messages: vec![MessageId(0)],
                start: 2.0,
                duration: 5.0,
            }],
        }];
        (topo, pa, schedules)
    }

    #[test]
    fn commands_cover_whole_path() {
        let (topo, pa, scheds) = setup();
        let (segments, nodes) = build_node_schedules(&pa, &scheds, &topo);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].duration(), 5.0);
        assert_eq!(nodes.len(), 4);

        let l01 = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        let l13 = topo.link_between(NodeId(1), NodeId(3)).unwrap();

        // Source: processor -> first link.
        let src = &nodes[0];
        assert_eq!(src.commands().len(), 1);
        assert_eq!(
            src.commands()[0].connection,
            Connection {
                from: Port::Processor,
                to: Port::Link(l01)
            }
        );
        // Intermediate: link -> link.
        let mid = &nodes[1];
        assert_eq!(
            mid.commands()[0].connection,
            Connection {
                from: Port::Link(l01),
                to: Port::Link(l13)
            }
        );
        // Destination: last link -> processor.
        let dst = &nodes[3];
        assert_eq!(
            dst.commands()[0].connection,
            Connection {
                from: Port::Link(l13),
                to: Port::Processor
            }
        );
        // Uninvolved node is idle.
        assert!(nodes[2].is_idle());
        // All commands share the slice's span.
        for ns in &nodes {
            for c in ns.commands() {
                assert_eq!((c.start, c.end), (2.0, 7.0));
                assert_eq!(c.message, MessageId(0));
            }
        }
    }

    #[test]
    fn multiple_slices_produce_multiple_segments() {
        let (topo, pa, _) = setup();
        let scheds = vec![
            IntervalSchedule {
                interval: 0,
                slices: vec![Slice {
                    messages: vec![MessageId(0)],
                    start: 0.0,
                    duration: 3.0,
                }],
            },
            IntervalSchedule {
                interval: 1,
                slices: vec![Slice {
                    messages: vec![MessageId(0)],
                    start: 10.0,
                    duration: 2.0,
                }],
            },
        ];
        let (segments, nodes) = build_node_schedules(&pa, &scheds, &topo);
        assert_eq!(segments.len(), 2);
        let total: f64 = segments.iter().map(Segment::duration).sum();
        assert!((total - 5.0).abs() < 1e-12);
        assert_eq!(nodes[0].commands().len(), 2);
        // Sorted by start.
        assert!(nodes[0].commands()[0].start < nodes[0].commands()[1].start);
    }
}
