use sr_lp::{Basis, LpError, Problem, Relation, SolveStats, VarId};
use sr_tfg::{MessageId, TimeBounds};
use sr_topology::LinkId;

use crate::{ActivityMatrix, CompileError, Intervals, PathAssignment, EPS};

/// Work statistics from one [`allocate_intervals_stats`] pass: how much
/// LP machinery the message–interval allocation stage ground through.
///
/// Exact operation counts — deterministic for fixed inputs, so the compile
/// pipeline can report them independently of its thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocationStats {
    /// Simplex work summed over every subset LP.
    pub lp: SolveStats,
    /// Subset LPs solved (one per maximal related subset).
    pub lp_solves: u64,
    /// LP variables created across all subset LPs.
    pub vars: u64,
    /// LP constraints created across all subset LPs.
    pub constraints: u64,
}

/// Warm-start bases for the allocation subset LPs, keyed by subset
/// position.
///
/// Each maximal related subset solves one LP; along a candidate's
/// capacity-scale ladder the subset LPs are *structurally identical* — the
/// assignment, activity, intervals, and subsets are fixed, only the
/// capacity right-hand sides shrink — so the optimal basis of the previous
/// scale is a legal warm start for the next one ([`sr_lp::Problem::solve_warm`]).
/// The cache must be discarded whenever the assignment or subsets change
/// (i.e. across seeds); reusing it would still be *correct* (a mismatched
/// basis degrades to a cold solve) but would churn on misses.
#[derive(Debug, Clone, Default)]
pub struct AllocBasisCache {
    bases: Vec<Option<Basis>>,
}

impl AllocBasisCache {
    /// An empty cache (every subset LP starts cold).
    pub fn new() -> Self {
        AllocBasisCache::default()
    }

    /// Number of subset slots currently holding a reusable basis.
    pub fn warm_slots(&self) -> usize {
        self.bases.iter().filter(|b| b.is_some()).count()
    }

    fn slot(&mut self, si: usize) -> &mut Option<Basis> {
        if self.bases.len() <= si {
            self.bases.resize(si + 1, None);
        }
        &mut self.bases[si]
    }
}

/// The message–interval allocation matrix `P = [p_ik]` (paper §5.2):
/// `p_ik` is the time message `M_i` transmits during interval `A_k`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalAllocation {
    /// `p[message][interval]`, µs.
    p: Vec<Vec<f64>>,
}

impl IntervalAllocation {
    /// Crate-internal constructor from an explicit matrix (tests, ablations).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_matrix(p: Vec<Vec<f64>>) -> Self {
        IntervalAllocation { p }
    }

    /// Time allocated to `m` in interval `k`, µs.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn allocated(&self, m: MessageId, k: usize) -> f64 {
        self.p[m.index()][k]
    }

    /// The allocation row of one message.
    pub fn row(&self, m: MessageId) -> &[f64] {
        &self.p[m.index()]
    }

    /// Total time allocated to `m` across all intervals, µs.
    pub fn total(&self, m: MessageId) -> f64 {
        self.p[m.index()].iter().sum()
    }

    /// Messages with a positive allocation in interval `k`.
    pub fn messages_in(&self, k: usize) -> Vec<MessageId> {
        (0..self.p.len())
            .filter(|&i| self.p[i][k] > EPS)
            .map(MessageId)
            .collect()
    }

    /// Number of message rows.
    pub fn num_messages(&self) -> usize {
        self.p.len()
    }
}

/// Solves the **message–interval allocation** problem (paper §5.2,
/// constraints (3) and (4)), one LP per maximal related subset.
///
/// For every message `M_i` of a subset and every interval `A_k` it is active
/// in, a variable `x_ik ≥ 0` gives its transmission time in that interval:
///
/// * constraint (3): `Σ_k x_ik = duration(M_i)` — the whole message is sent;
/// * constraint (4): for every link and interval,
///   `Σ_{messages on the link} x_ik ≤ capacity_scale · |A_k|` — no link is
///   oversubscribed in any interval.
///
/// `capacity_scale` is normally 1; the compile pipeline lowers it as
/// *feedback* (the paper's §7 suggestion) when interval scheduling
/// subsequently fails, trading slack for schedulability.
///
/// # Errors
///
/// [`CompileError::AllocationInfeasible`] when a subset has no feasible
/// split; [`CompileError::Lp`] on solver trouble.
pub fn allocate_intervals(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
) -> Result<IntervalAllocation, CompileError> {
    allocate_intervals_stats(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        capacity_scale,
        &mut AllocationStats::default(),
    )
}

/// [`allocate_intervals`] that also accumulates LP work counters into
/// `stats` (identical allocation either way).
///
/// # Errors
///
/// As [`allocate_intervals`]. `stats` reflects the work done up to a
/// failure too.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_stats(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];

    for subset in subsets {
        solve_subset_capacities(
            assignment,
            bounds,
            activity,
            subset,
            |_, k| capacity_scale * intervals.length(k),
            &mut p,
            None,
            stats,
        )?;
    }
    Ok(IntervalAllocation { p })
}

/// [`allocate_intervals_stats`] with warm-started subset LPs.
///
/// Each subset LP warm-starts from the basis stored in `cache` at its
/// subset position and deposits its own optimal basis back, so a caller
/// walking a capacity-scale ladder (same assignment and subsets, shrinking
/// capacities) skips phase 1 whenever the previous scale's split still fits
/// — for these zero-objective feasibility systems that is the entire solve.
///
/// The *feasibility verdict* is identical to the cold path (it is a
/// property of the LP, not the start point), but a warm solve may land on a
/// different optimal vertex than a cold one, so the allocation matrix can
/// differ. Callers that promise cold-identical output (the compile walk's
/// accepted candidate) must re-derive it cold — see
/// `CompileConfig::warm_start`.
///
/// # Errors
///
/// As [`allocate_intervals`].
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_warm(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    cache: &mut AllocBasisCache,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];

    for (si, subset) in subsets.iter().enumerate() {
        solve_subset_capacities(
            assignment,
            bounds,
            activity,
            subset,
            |_, k| capacity_scale * intervals.length(k),
            &mut p,
            Some(cache.slot(si)),
            stats,
        )?;
    }
    Ok(IntervalAllocation { p })
}

/// Re-solves the message–interval allocation for `affected` messages only,
/// treating every other message's existing allocation as **pinned**: their
/// rows are copied from `pinned` bit-identically, and their per-link
/// per-interval usage is subtracted from the capacity available to the LP
/// (constraint (4) becomes `Σ x_ik ≤ capacity_scale·|A_k| − reserved_lk`).
///
/// This is the allocation stage of incremental repair: after `AssignPaths`
/// re-routes the affected messages over the masked topology, only their
/// rows are re-derived — the unaffected traffic keeps its exact split, so
/// downstream slices and Ω entries for it never move.
///
/// Rows of messages whose (possibly updated) path assignment has no links —
/// local messages, and dropped/demoted messages encoded with trivial paths —
/// are zeroed rather than pinned: they carry no network traffic.
///
/// `subsets` must be the maximal related subsets of the *new* `assignment`;
/// subsets containing no affected message are skipped (their members are
/// pinned anyway).
///
/// # Errors
///
/// [`CompileError::AllocationInfeasible`] when some affected message cannot
/// fit in the capacity left by the pinned traffic; [`CompileError::Lp`] on
/// solver trouble.
///
/// # Panics
///
/// Panics if `pinned` has a different message count than `assignment`.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_pinned(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    affected: &[MessageId],
    pinned: &IntervalAllocation,
    capacity_scale: f64,
) -> Result<IntervalAllocation, CompileError> {
    allocate_intervals_pinned_impl(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        affected,
        pinned,
        None,
        capacity_scale,
        None,
        &mut AllocationStats::default(),
    )
}

/// [`allocate_intervals_pinned`] with warm-started subset LPs and work
/// counters — the repair ladder's variant.
///
/// `sr-fault::repair` walks the same affected-message allocation across a
/// shrinking capacity-scale ladder; the subset LPs differ only in their
/// residual capacities (pinned traffic folded into the right-hand side), so
/// the previous rung's bases warm-start the next. Same verdicts as the cold
/// path; the affected rows' split may sit on a different optimal vertex.
///
/// # Errors
///
/// As [`allocate_intervals_pinned`].
///
/// # Panics
///
/// As [`allocate_intervals_pinned`].
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_pinned_warm(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    affected: &[MessageId],
    pinned: &IntervalAllocation,
    capacity_scale: f64,
    cache: &mut AllocBasisCache,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    allocate_intervals_pinned_impl(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        affected,
        pinned,
        None,
        capacity_scale,
        Some(cache),
        stats,
    )
}

/// [`allocate_intervals_pinned_warm`] with **external reservations**: on top
/// of the capacity consumed by the pinned rows, `reserved[link][k]` µs of
/// interval `k` on `link` are unavailable to the LP (clamped at zero). This
/// is the multi-tenant admission variant — the reservations describe
/// traffic that lives *outside* this allocation problem entirely (other
/// tenants' schedules folded onto this tenant's interval grid), where the
/// pinned path describes rows of the *same* matrix.
///
/// Entries of `reserved` must have one value per interval; links absent
/// from the map reserve nothing. `cache` is optional: `Some` warm-starts
/// the subset LPs exactly like [`allocate_intervals_pinned_warm`].
///
/// # Errors
///
/// As [`allocate_intervals_pinned`].
///
/// # Panics
///
/// As [`allocate_intervals_pinned`], and if a `reserved` row's length is
/// not `intervals.len()`.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_pinned_reserved(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    affected: &[MessageId],
    pinned: &IntervalAllocation,
    reserved: &std::collections::HashMap<LinkId, Vec<f64>>,
    capacity_scale: f64,
    cache: Option<&mut AllocBasisCache>,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    for row in reserved.values() {
        assert_eq!(
            row.len(),
            intervals.len(),
            "external reservation row does not cover every interval"
        );
    }
    allocate_intervals_pinned_impl(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        affected,
        pinned,
        Some(reserved),
        capacity_scale,
        cache,
        stats,
    )
}

/// Partitioned message–interval allocation for large fabrics: subsets whose
/// members' paths stay inside one node partition (`part_of[node] = part`)
/// are solved concurrently via [`sr_par::par_map`], then the remaining
/// **boundary** subsets are solved serially with every interior row pinned
/// ([`allocate_intervals_pinned`]'s residual-capacity pass).
///
/// Maximal related subsets never couple through a `(link, interval)` pair,
/// so the parallel interior solves and the pinned boundary pass produce the
/// same rows — and the same feasibility verdict — as the serial
/// [`allocate_intervals`]; only the wall-clock changes. The result and the
/// `stats` counters are deterministic and independent of `threads` (each
/// subset's LP is solved exactly once, and counters are folded in subset
/// order).
///
/// # Errors
///
/// As [`allocate_intervals`]. With several infeasible subsets the smallest
/// *interior* subset index wins (boundary subsets are only reached when
/// every interior one is feasible), which can differ from the serial
/// walk's report; the feasibility verdict itself is always identical.
///
/// # Panics
///
/// Panics if `part_of` does not cover every node on some member's path.
#[allow(clippy::too_many_arguments)]
pub fn allocate_intervals_partitioned(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    capacity_scale: f64,
    part_of: &[usize],
    threads: usize,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    // A subset is interior when every node of every member's path sits in
    // one part; anything else is boundary traffic.
    let subset_part = |subset: &[MessageId]| -> Option<usize> {
        let first = subset.first()?;
        let home = part_of[assignment.path(*first).source().index()];
        subset
            .iter()
            .all(|&m| {
                assignment
                    .path(m)
                    .nodes()
                    .iter()
                    .all(|n| part_of[n.index()] == home)
            })
            .then_some(home)
    };
    let interior: Vec<usize> = (0..subsets.len())
        .filter(|&si| subset_part(&subsets[si]).is_some())
        .collect();

    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];
    let solved = sr_par::par_map(&interior, threads, |&si| {
        let mut local = vec![vec![0.0; intervals.len()]; assignment.len()];
        let mut local_stats = AllocationStats::default();
        solve_subset_capacities(
            assignment,
            bounds,
            activity,
            &subsets[si],
            |_, k| capacity_scale * intervals.length(k),
            &mut local,
            None,
            &mut local_stats,
        )
        .map(|()| {
            let rows: Vec<(usize, Vec<f64>)> = subsets[si]
                .iter()
                .map(|&m| (m.index(), std::mem::take(&mut local[m.index()])))
                .collect();
            (rows, local_stats)
        })
    });
    for result in solved {
        let (rows, local_stats) = result?;
        for (mi, row) in rows {
            p[mi] = row;
        }
        stats.lp.merge(&local_stats.lp);
        stats.lp_solves += local_stats.lp_solves;
        stats.vars += local_stats.vars;
        stats.constraints += local_stats.constraints;
    }

    let boundary: Vec<MessageId> = (0..subsets.len())
        .filter(|&si| subset_part(&subsets[si]).is_none())
        .flat_map(|si| subsets[si].iter().copied())
        .collect();
    if boundary.is_empty() {
        return Ok(IntervalAllocation { p });
    }
    allocate_intervals_pinned_impl(
        assignment,
        bounds,
        activity,
        intervals,
        subsets,
        &boundary,
        &IntervalAllocation { p },
        None,
        capacity_scale,
        None,
        stats,
    )
}

#[allow(clippy::too_many_arguments)]
fn allocate_intervals_pinned_impl(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    affected: &[MessageId],
    pinned: &IntervalAllocation,
    external: Option<&std::collections::HashMap<LinkId, Vec<f64>>>,
    capacity_scale: f64,
    mut cache: Option<&mut AllocBasisCache>,
    stats: &mut AllocationStats,
) -> Result<IntervalAllocation, CompileError> {
    assert_eq!(
        pinned.num_messages(),
        assignment.len(),
        "pinned allocation does not match the assignment"
    );
    let is_affected: Vec<bool> = {
        let mut v = vec![false; assignment.len()];
        for &m in affected {
            v[m.index()] = true;
        }
        v
    };

    // Start from the pinned matrix; blank what must be re-derived (affected
    // rows) or cannot carry traffic (link-less rows).
    let mut p = vec![vec![0.0; intervals.len()]; assignment.len()];
    for i in 0..assignment.len() {
        if !is_affected[i] && !assignment.links(MessageId(i)).is_empty() {
            p[i].clone_from_slice(pinned.row(MessageId(i)));
        }
    }

    // Capacity already consumed by pinned traffic, per link per interval.
    let mut reserved: std::collections::HashMap<LinkId, Vec<f64>> =
        std::collections::HashMap::new();
    for i in 0..assignment.len() {
        let m = MessageId(i);
        if is_affected[i] {
            continue;
        }
        for &l in assignment.links(m) {
            let row = reserved
                .entry(l)
                .or_insert_with(|| vec![0.0; intervals.len()]);
            for (k, r) in row.iter_mut().enumerate() {
                *r += p[i][k];
            }
        }
    }

    for (si, subset) in subsets.iter().enumerate() {
        let members: Vec<MessageId> = subset
            .iter()
            .copied()
            .filter(|m| is_affected[m.index()])
            .collect();
        if members.is_empty() {
            continue;
        }
        solve_subset_capacities(
            assignment,
            bounds,
            activity,
            &members,
            |link, k| {
                let used = reserved.get(&link).map_or(0.0, |r| r[k])
                    + external.and_then(|e| e.get(&link)).map_or(0.0, |r| r[k]);
                (capacity_scale * intervals.length(k) - used).max(0.0)
            },
            &mut p,
            cache.as_deref_mut().map(|c| c.slot(si)),
            stats,
        )?;
    }
    Ok(IntervalAllocation { p })
}

/// One subset LP built in a fixed row layout: the `subset.len()` equality
/// rows of constraint (3) in subset order, then the capacity rows of
/// constraint (4) in ascending (link, interval) order — `cap_rows[i]` names
/// the `(link, interval)` behind equality-row-count + `i`. The explainer
/// ([`crate::diagnose_infeasible_subset`]) relies on this layout to map LP
/// row diagnostics back to schedule objects, so it is built here, next to
/// the solver that consumes it, and nowhere else.
pub(crate) struct SubsetLp {
    pub(crate) lp: Problem,
    pub(crate) actives: Vec<Vec<usize>>,
    pub(crate) var_of: std::collections::HashMap<(usize, usize), VarId>,
    pub(crate) cap_rows: Vec<(LinkId, usize)>,
}

pub(crate) fn build_subset_lp<C>(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    subset: &[MessageId],
    capacity: C,
) -> SubsetLp
where
    C: Fn(LinkId, usize) -> f64,
{
    let mut lp = Problem::minimize();
    // Per-member active-interval lists, computed once (`active_intervals`
    // walks the whole activity row, so repeated calls are O(K) each).
    let actives: Vec<Vec<usize>> = subset
        .iter()
        .map(|&m| activity.active_intervals(m))
        .collect();
    // var_of[(message position in subset, interval)] -> LP variable.
    let mut var_of: std::collections::HashMap<(usize, usize), VarId> =
        std::collections::HashMap::new();

    for (mi, ks) in actives.iter().enumerate() {
        for &k in ks {
            // Zero objective: this is a feasibility system.
            var_of.insert((mi, k), lp.add_var(0.0));
        }
    }

    // (3): total allocation equals the transmission time.
    for (mi, &m) in subset.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = actives[mi]
            .iter()
            .map(|&k| (var_of[&(mi, k)], 1.0))
            .collect();
        lp.add_constraint(&terms, Relation::Eq, bounds.window(m).duration())
            .expect("variables are registered");
    }

    // (4): per-link per-interval capacity, built from sparse per-link
    // interval maps: only the links this subset's paths touch carry state,
    // and each link visits only the intervals where one of its messages is
    // active. The constraints emitted — and their ascending link-then-
    // interval order — are identical to a dense links × K scan, which only
    // ever produced empty rows elsewhere.
    let mut on_link: std::collections::BTreeMap<LinkId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (mi, &m) in subset.iter().enumerate() {
        for &l in assignment.links(m) {
            on_link.entry(l).or_default().push(mi);
        }
    }
    let mut cap_rows: Vec<(LinkId, usize)> = Vec::new();
    let mut link_ks: Vec<usize> = Vec::new();
    for (&link, members) in &on_link {
        link_ks.clear();
        for &mi in members {
            link_ks.extend_from_slice(&actives[mi]);
        }
        link_ks.sort_unstable();
        link_ks.dedup();
        for &k in &link_ks {
            let terms: Vec<(VarId, f64)> = members
                .iter()
                .filter_map(|&mi| var_of.get(&(mi, k)).map(|&v| (v, 1.0)))
                .collect();
            lp.add_constraint(&terms, Relation::Le, capacity(link, k))
                .expect("variables are registered");
            cap_rows.push((link, k));
        }
    }
    SubsetLp {
        lp,
        actives,
        var_of,
        cap_rows,
    }
}

/// One subset LP with an arbitrary per-link per-interval capacity function
/// (full scaled interval length for a fresh compile, residual capacity
/// after pinned traffic for incremental repair).
///
/// When `warm` is supplied the LP warm-starts from the slot's basis and the
/// new optimal basis is stored back into it; `None` keeps the cold path
/// (bit-identical to the pre-warm-start implementation).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_subset_capacities<C>(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    subset: &[MessageId],
    capacity: C,
    p: &mut [Vec<f64>],
    warm: Option<&mut Option<Basis>>,
    stats: &mut AllocationStats,
) -> Result<(), CompileError>
where
    C: Fn(LinkId, usize) -> f64,
{
    let SubsetLp {
        lp,
        actives,
        var_of,
        cap_rows: _,
    } = build_subset_lp(assignment, bounds, activity, subset, capacity);

    stats.lp_solves += 1;
    stats.vars += lp.num_vars() as u64;
    stats.constraints += lp.num_constraints() as u64;
    let solved = match warm {
        Some(slot) => lp.solve_warm(slot.as_ref()).map(|(s, basis, st)| {
            *slot = basis;
            (s, st)
        }),
        None => lp.solve_with_stats(),
    };
    let sol = match solved {
        Ok((s, solve_stats)) => {
            stats.lp.merge(&solve_stats);
            s
        }
        Err(LpError::Infeasible) => {
            return Err(CompileError::AllocationInfeasible {
                subset: subset.to_vec(),
            })
        }
        Err(e) => return Err(CompileError::Lp(e)),
    };

    for (mi, &m) in subset.iter().enumerate() {
        for &k in &actives[mi] {
            let v = sol.value(var_of[&(mi, k)]);
            if v > EPS {
                p[m.index()][k] = v;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::related_subsets;
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId};

    struct Fixture {
        assignment: PathAssignment,
        bounds: TimeBounds,
        activity: ActivityMatrix,
        intervals: Intervals,
        subsets: Vec<Vec<MessageId>>,
    }

    /// Two 10 µs messages sharing the single link of a 2-node cube, both
    /// active over the whole 50 µs frame.
    fn shared_link(period: f64, bytes: u64) -> Fixture {
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 500);
        let t1 = b.task("t1", 500);
        let t2 = b.task("t2", 500);
        b.message("m0", t0, t1, bytes).unwrap();
        b.message("m1", t1, t2, bytes).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let assignment = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&assignment, &activity);
        Fixture {
            assignment,
            bounds,
            activity,
            intervals,
            subsets,
        }
    }

    fn check_constraints(f: &Fixture, alloc: &IntervalAllocation, scale: f64) {
        // (3)
        for m in 0..f.assignment.len() {
            let m = MessageId(m);
            if f.assignment.links(m).is_empty() {
                continue;
            }
            assert!(
                (alloc.total(m) - f.bounds.window(m).duration()).abs() < 1e-6,
                "(3) violated for {m}: {} vs {}",
                alloc.total(m),
                f.bounds.window(m).duration()
            );
            // Allocation only where active.
            for k in 0..f.intervals.len() {
                if alloc.allocated(m, k) > EPS {
                    assert!(f.activity.is_active(m, k), "inactive allocation {m}@{k}");
                }
            }
        }
        // (4) for the single link 0.
        for k in 0..f.intervals.len() {
            let sum: f64 = (0..f.assignment.len())
                .filter(|&i| !f.assignment.links(MessageId(i)).is_empty())
                .map(|i| alloc.allocated(MessageId(i), k))
                .sum();
            assert!(
                sum <= scale * f.intervals.length(k) + 1e-6,
                "(4) violated in interval {k}: {sum}"
            );
        }
    }

    #[test]
    fn feasible_shared_link_allocation() {
        let f = shared_link(50.0, 640); // 10 µs each in a 50 µs frame
        let alloc = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
        )
        .unwrap();
        check_constraints(&f, &alloc, 1.0);
    }

    #[test]
    fn infeasible_when_demand_exceeds_frame() {
        // Two 30 µs messages on one link active over a 50 µs frame: 60 > 50.
        let f = shared_link(50.0, 1920);
        let err = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
    }

    #[test]
    fn capacity_scale_tightens() {
        // 20+20 µs over 50 µs fits at scale 1.0 but not at scale 0.5.
        let f = shared_link(50.0, 1280);
        assert!(allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0
        )
        .is_ok());
        let err = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            0.5,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
    }

    #[test]
    fn multi_interval_split_respects_windows() {
        // Period 120 -> windows [50,100] and [110->fold 0? no: 110 fold
        // 110, window 50 wraps to [110,120]∪[0,40]].
        let f = shared_link(120.0, 640);
        let alloc = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
        )
        .unwrap();
        check_constraints(&f, &alloc, 1.0);
    }

    #[test]
    fn pinned_reallocation_keeps_unaffected_rows_bit_identical() {
        let f = shared_link(50.0, 1280); // 20+20 µs: tight but feasible
        let full = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
        )
        .unwrap();
        // Re-derive only message 1, pinning message 0.
        let repaired = allocate_intervals_pinned(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            &[MessageId(1)],
            &full,
            1.0,
        )
        .unwrap();
        assert_eq!(repaired.row(MessageId(0)), full.row(MessageId(0)));
        check_constraints(&f, &repaired, 1.0);
    }

    #[test]
    fn pinned_reallocation_is_infeasible_when_residual_capacity_runs_out() {
        // 20+20 µs over a 50 µs frame fits; but squeeze the affected
        // message into capacity scale 0.5 while message 0 stays pinned at
        // its full-scale split: 25-20=5 µs of residual cannot carry 20 µs.
        let f = shared_link(50.0, 1280);
        let full = allocate_intervals(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            1.0,
        )
        .unwrap();
        let err = allocate_intervals_pinned(
            &f.assignment,
            &f.bounds,
            &f.activity,
            &f.intervals,
            &f.subsets,
            &[MessageId(1)],
            &full,
            0.5,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
    }

    #[test]
    fn local_messages_get_no_allocation() {
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 500);
        let t1 = b.task("t1", 500);
        b.message("m", t0, t1, 640).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 60.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&pa, &activity);
        assert!(subsets.is_empty());
        let ia = allocate_intervals(&pa, &bounds, &activity, &intervals, &subsets, 1.0).unwrap();
        assert_eq!(ia.total(MessageId(0)), 0.0);
    }

    #[test]
    fn partitioned_allocation_matches_flat() {
        // A scattered DVB workload on a 4x4 torus yields several related
        // subsets, some confined to one node band and some crossing bands.
        let topo = sr_topology::Torus::new(&[4, 4]).unwrap();
        let tfg = sr_tfg::dvb_uniform(4);
        let timing = Timing::calibrated_dvb(128.0);
        let alloc = sr_mapping::random_distinct(&tfg, &topo, 7).unwrap();
        let period = timing.longest_task(&tfg) * 2.0;
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let assignment = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&assignment, &activity);
        assert!(subsets.len() > 1, "fixture should have multiple subsets");

        let flat =
            allocate_intervals(&assignment, &bounds, &activity, &intervals, &subsets, 1.0).unwrap();
        let part_of = crate::band_partition(sr_topology::Topology::num_nodes(&topo), 4);
        for threads in [1, 4] {
            let mut stats = AllocationStats::default();
            let part = allocate_intervals_partitioned(
                &assignment,
                &bounds,
                &activity,
                &intervals,
                &subsets,
                1.0,
                &part_of,
                threads,
                &mut stats,
            )
            .unwrap();
            assert!(stats.lp_solves > 0);
            for m in 0..assignment.len() {
                let m = MessageId(m);
                assert_eq!(part.row(m), flat.row(m), "{m} differs at threads={threads}");
            }
        }
    }
}
