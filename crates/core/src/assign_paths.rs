use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sr_mapping::Allocation;
use sr_tfg::{MessageId, TaskFlowGraph, TimeBounds};
use sr_topology::{NodeId, Path, Topology};

use crate::utilization::UtilEval;
use crate::{ActivityMatrix, Hotspot, Intervals, PathAssignment, UtilizationMap, EPS};

/// Memoized shortest-path enumeration, keyed by `(source, destination)`.
///
/// The alternative paths of a message depend only on its endpoint nodes
/// and the enumeration cap — not on the heuristic seed — so the compile
/// feedback search shares one pool across all its `AssignPaths` retries
/// (and across worker threads: cells are [`OnceLock`]s, so each pair is
/// enumerated exactly once no matter how many threads ask).
pub struct PathPool<'a> {
    topo: &'a dyn Topology,
    cap: usize,
    cells: PoolCells,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cell storage for [`PathPool`]: dense `n × n` for small fabrics, or a
/// map seeded with exactly the pairs that will be asked for. Both are
/// structurally frozen after construction — only the [`OnceLock`] payloads
/// are ever written — so shared `&self` lookups stay safe.
enum PoolCells {
    Dense(Vec<OnceLock<Vec<Path>>>),
    Seeded(std::collections::HashMap<(usize, usize), OnceLock<Vec<Path>>>),
}

impl<'a> PathPool<'a> {
    /// An empty pool enumerating up to `cap` shortest paths per pair, with
    /// a dense cell per node pair. Memory is `O(num_nodes²)` — use
    /// [`PathPool::seeded`] for large fabrics where the set of endpoint
    /// pairs is known up front.
    pub fn new(topo: &'a dyn Topology, cap: usize) -> Self {
        let n = topo.num_nodes();
        PathPool {
            topo,
            cap: cap.max(1),
            cells: PoolCells::Dense((0..n * n).map(|_| OnceLock::new()).collect()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A pool holding one cell per *seeded* `(src, dst)` pair instead of a
    /// dense `n × n` array: memory is proportional to the number of
    /// distinct pairs, which is what lets a 16,384-node fabric share one
    /// pool (dense cells there would cost gigabytes before the first
    /// enumeration). Lookup behavior — including the hit/miss counters —
    /// is identical to a dense pool for seeded pairs; asking for an
    /// unseeded pair panics.
    pub fn seeded<I>(topo: &'a dyn Topology, cap: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let cells = pairs
            .into_iter()
            .map(|(s, d)| ((s.index(), d.index()), OnceLock::new()))
            .collect();
        PathPool {
            topo,
            cap: cap.max(1),
            cells: PoolCells::Seeded(cells),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The per-pair enumeration cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The shortest paths `src → dst` (index 0 = dimension order),
    /// enumerating and caching them on first request.
    ///
    /// # Panics
    ///
    /// Panics if the pool was built with [`PathPool::seeded`] and this
    /// pair was not seeded.
    pub fn paths(&self, src: NodeId, dst: NodeId) -> &[Path] {
        let cell = match &self.cells {
            PoolCells::Dense(cells) => &cells[src.index() * self.topo.num_nodes() + dst.index()],
            PoolCells::Seeded(map) => map
                .get(&(src.index(), dst.index()))
                .unwrap_or_else(|| panic!("path pool was not seeded with pair {src}→{dst}")),
        };
        if let Some(cached) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        cell.get_or_init(|| self.topo.shortest_paths(src, dst, self.cap))
    }

    /// Lookup counters `(hits, misses)` since construction. A "miss" is a
    /// lookup that found its cell empty — under concurrent first lookups of
    /// the same pair several threads can each count a miss even though the
    /// enumeration runs once, so hit/miss totals depend on thread timing
    /// (report them as parallelism-dependent metrics only).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Tuning knobs for the [`assign_paths`] heuristic (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignPathsConfig {
    /// Maximum alternative shortest paths enumerated per message.
    pub path_cap: usize,
    /// Random restarts after the iterative improvement converges
    /// ("helps the algorithm slide out of any local minima").
    pub max_restarts: usize,
    /// Safety cap on improvement/reposition steps per restart.
    pub max_inner: usize,
    /// RNG seed (the heuristic is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for AssignPathsConfig {
    fn default() -> Self {
        AssignPathsConfig {
            path_cap: 64,
            max_restarts: 6,
            max_inner: 200,
            seed: 0x5eed,
        }
    }
}

/// The result of running [`assign_paths`].
#[derive(Debug, Clone)]
pub struct AssignPathsOutcome {
    /// The best path assignment found.
    pub assignment: PathAssignment,
    /// Utilizations of that assignment.
    pub utilization: UtilizationMap,
    /// Effective peak utilization (Def. 5.1/5.2 sharpened with the Hall
    /// group bound) of the LSD-to-MSD baseline, for comparison — the
    /// quantity Figs. 5–6 plot against the final value.
    pub baseline_peak: f64,
    /// Restarts actually performed.
    pub restarts: usize,
}

/// The `AssignPaths` heuristic (paper Fig. 4): minimize the peak link/spot
/// utilization `U` by iteratively rerouting messages over alternative
/// shortest paths.
///
/// Each round finds the peak's location, tries every alternative path of
/// every message crossing it, applies the reroute with the largest peak
/// *reduction* (or, failing that, one that *repositions* the same peak so a
/// later reroute can attack it), and — once stuck — restarts from a fresh
/// random assignment, keeping the best result seen.
///
/// The output's peak utilization is never worse than the LSD-to-MSD
/// baseline's.
pub fn assign_paths(
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
    alloc: &Allocation,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    config: &AssignPathsConfig,
) -> AssignPathsOutcome {
    let pool = PathPool::new(topo, config.path_cap);
    assign_paths_pooled(tfg, topo, alloc, bounds, intervals, activity, config, &pool)
}

/// [`assign_paths`] drawing its candidate paths from a shared [`PathPool`]
/// instead of enumerating per call. The pool's cap takes the place of
/// [`AssignPathsConfig::path_cap`]; results are identical to
/// [`assign_paths`] when the caps agree.
#[allow(clippy::too_many_arguments)]
pub fn assign_paths_pooled(
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
    alloc: &Allocation,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    config: &AssignPathsConfig,
    pool: &PathPool<'_>,
) -> AssignPathsOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_links = topo.num_links();
    let compute =
        |pa: &PathAssignment| UtilizationMap::compute(pa, bounds, activity, intervals, num_links);

    // Alternative shortest paths per message (index 0 = dimension order).
    let candidates: Vec<&[Path]> = tfg
        .messages()
        .iter()
        .map(|m| pool.paths(alloc.node_of(m.src()), alloc.node_of(m.dst())))
        .collect();

    let baseline = PathAssignment::lsd_to_msd(tfg, topo, alloc);
    let baseline_effective = compute(&baseline).effective_peak();

    let (best, restarts) = hill_climb(
        baseline,
        baseline_effective,
        &candidates,
        topo,
        bounds,
        intervals,
        activity,
        config,
        &mut rng,
    );

    let utilization = compute(&best);
    AssignPathsOutcome {
        assignment: best,
        utilization,
        baseline_peak: baseline_effective,
        restarts,
    }
}

/// Re-runs the Fig. 4 heuristic for `affected` messages only, holding every
/// other message to its path in `base` — the path-assignment stage of
/// incremental repair.
///
/// Frozen messages get a single-entry candidate list (their `base` path),
/// which the improvement loop and random restarts leave untouched by
/// construction; each affected message's candidates are the masked
/// topology's surviving shortest paths between its original endpoints. The
/// returned outcome's `baseline_peak` is the peak of the starting
/// assignment (frozen paths + first candidate for each affected message).
///
/// `topo` should be the masked topology so candidate enumeration sees only
/// surviving edges; every frozen path must itself survive (guaranteed when
/// `affected` is taken from [`crate::analyze_damage`] and dead messages
/// were reset to trivial paths first).
///
/// # Panics
///
/// Panics if an affected message has no surviving route — check
/// reachability (e.g. `MaskedTopology::connects`) before calling.
pub fn assign_paths_partial(
    topo: &dyn Topology,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    base: &PathAssignment,
    affected: &[MessageId],
    config: &AssignPathsConfig,
) -> AssignPathsOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let num_links = topo.num_links();
    let compute =
        |pa: &PathAssignment| UtilizationMap::compute(pa, bounds, activity, intervals, num_links);

    let is_affected: Vec<bool> = {
        let mut v = vec![false; base.len()];
        for &m in affected {
            v[m.index()] = true;
        }
        v
    };
    let owned: Vec<Vec<Path>> = (0..base.len())
        .map(|i| {
            let m = MessageId(i);
            let p = base.path(m);
            if is_affected[i] {
                let alts = topo.shortest_paths(p.source(), p.destination(), config.path_cap);
                assert!(
                    !alts.is_empty(),
                    "affected message {m} has no surviving route {} -> {}",
                    p.source(),
                    p.destination()
                );
                alts
            } else {
                vec![p.clone()]
            }
        })
        .collect();
    let candidates: Vec<&[Path]> = owned.iter().map(Vec::as_slice).collect();

    let mut start = base.clone();
    for &m in affected {
        start.set_path(m, candidates[m.index()][0].clone(), topo);
    }
    let start_peak = compute(&start).effective_peak();

    let (best, restarts) = hill_climb(
        start,
        start_peak,
        &candidates,
        topo,
        bounds,
        intervals,
        activity,
        config,
        &mut rng,
    );

    let utilization = compute(&best);
    AssignPathsOutcome {
        assignment: best,
        utilization,
        baseline_peak: start_peak,
        restarts,
    }
}

/// Maps each node to one of `parts` contiguous index bands, as equal in
/// size as possible. On a row-major torus or mesh a band is a sub-grid of
/// whole rows (a sub-torus), which is the tiling
/// [`assign_paths_partitioned`] expects: nodes of one band are adjacent
/// only to their own band and its index neighbors.
///
/// `parts` is clamped to `[1, num_nodes]`.
pub fn band_partition(num_nodes: usize, parts: usize) -> Vec<usize> {
    let parts = parts.clamp(1, num_nodes.max(1));
    (0..num_nodes)
        .map(|n| (n * parts / num_nodes.max(1)).min(parts - 1))
        .collect()
}

/// Topology-generic band partitioner: maps each node to one of `parts`
/// bands that are contiguous *in the fabric*, not merely in index space.
///
/// For topologies with a mixed-radix coordinate system
/// ([`Topology::mixed_radix_hint`] — tori, meshes, generalized
/// hypercubes), the fabric is cut along the most significant dimension
/// that still yields at least `parts` hyperplane slabs, and bands are
/// unions of whole consecutive slabs: on a `N×N` torus a band is a block
/// of whole rows (identical to [`band_partition`] whenever `parts`
/// divides `N`, so existing partitioned workloads keep their exact
/// counters), and on `GHC(16,16,16)` with `parts = 16` each band is one
/// complete `GHC(16,16)` sub-cube.
///
/// Topologies without a coordinate hint fall back to a BFS-layer
/// decomposition from node 0: nodes are ordered by (hop depth, id) and
/// split into `parts` equal contiguous runs, which keeps each band
/// connected-ish on arbitrary fabrics.
///
/// `parts` is clamped to `[1, num_nodes]`.
pub fn band_partition_topo(topo: &dyn Topology, parts: usize) -> Vec<usize> {
    let n = topo.num_nodes();
    let parts = parts.clamp(1, n.max(1));
    if parts == 1 || n == 0 {
        return vec![0; n];
    }

    if let Some(radix) = topo.mixed_radix_hint() {
        // The slab at cut-weight `w` is `node / w` (the node's digits at
        // and above the cut dimension); equal slabs are contiguous index
        // ranges of size `w`. Pick the coarsest cut that still covers
        // `parts` slabs so bands keep whole hyperplanes together.
        let mut best: Option<(usize, usize)> = None;
        let mut weight = 1usize;
        for &r in radix.radices() {
            let slices = n / weight;
            if slices >= parts {
                best = Some((weight, slices));
            }
            weight *= r;
        }
        if let Some((w, slices)) = best {
            return (0..n)
                .map(|node| ((node / w) * parts / slices).min(parts - 1))
                .collect();
        }
    }

    // BFS layering from node 0 (unreachable nodes sort last), then equal
    // contiguous runs over the (depth, id) order.
    let mut depth = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[0] = 0;
    queue.push_back(NodeId(0));
    while let Some(u) = queue.pop_front() {
        for &v in topo.neighbors(u) {
            if depth[v.index()] == usize::MAX {
                depth[v.index()] = depth[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (depth[v], v));
    let mut part_of = vec![0usize; n];
    for (rank, &v) in order.iter().enumerate() {
        part_of[v] = (rank * parts / n).min(parts - 1);
    }
    part_of
}

/// Hierarchical `AssignPaths` for large fabrics: partition the nodes
/// (`part_of[node] = part id`), hill-climb each part's **interior**
/// messages independently — in parallel via [`sr_par::par_map`] — with
/// candidates restricted to paths that stay inside the part, then stitch
/// the **boundary** traffic (messages crossing parts, plus interiors with
/// no in-part route) with a final serial climb over the merged assignment.
///
/// Because each part only moves its own interior messages and only onto
/// its own links, merging the parts' reroutes cannot raise any link above
/// the load the owning part already accepted, so the merged peak — and the
/// final outcome — is never worse than the LSD-to-MSD baseline (the same
/// guarantee [`assign_paths`] gives). The result is deterministic for a
/// fixed `(config.seed, part_of)` and independent of `threads`.
///
/// This trades assignment quality for wall-clock scaling: each part's
/// climb only attacks the global peak where its own messages can move, so
/// tightly coupled workloads may end with a higher peak than a flat
/// [`assign_paths`] run. Use flat assignment when it is affordable.
///
/// # Panics
///
/// Panics if `part_of.len() != topo.num_nodes()`.
#[allow(clippy::too_many_arguments)]
pub fn assign_paths_partitioned(
    tfg: &TaskFlowGraph,
    topo: &dyn Topology,
    alloc: &Allocation,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    config: &AssignPathsConfig,
    pool: &PathPool<'_>,
    part_of: &[usize],
    threads: usize,
) -> AssignPathsOutcome {
    assert_eq!(
        part_of.len(),
        topo.num_nodes(),
        "partition does not cover the topology"
    );
    let num_links = topo.num_links();
    let compute =
        |pa: &PathAssignment| UtilizationMap::compute(pa, bounds, activity, intervals, num_links);

    let candidates: Vec<&[Path]> = tfg
        .messages()
        .iter()
        .map(|m| pool.paths(alloc.node_of(m.src()), alloc.node_of(m.dst())))
        .collect();
    let baseline = PathAssignment::lsd_to_msd(tfg, topo, alloc);
    let baseline_effective = compute(&baseline).effective_peak();

    // A message is interior to part `p` when both endpoints live in `p`
    // AND it has at least two candidate paths confined to `p` (otherwise
    // there is nothing the part-local climb could do with it, and the
    // stitch pass handles it with the full candidate set instead).
    let in_part = |path: &Path, p: usize| path.nodes().iter().all(|n| part_of[n.index()] == p);
    let home: Vec<Option<usize>> = tfg
        .messages()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let s = part_of[alloc.node_of(m.src()).index()];
            let d = part_of[alloc.node_of(m.dst()).index()];
            (s == d && candidates[i].iter().filter(|p| in_part(p, s)).count() > 1).then_some(s)
        })
        .collect();

    let num_parts = part_of.iter().copied().max().map_or(1, |m| m + 1);
    let part_ids: Vec<usize> = (0..num_parts)
        .filter(|&p| home.contains(&Some(p)))
        .collect();
    let optimized = sr_par::par_map(&part_ids, threads, |&pid| {
        // Part-local problem: this part's interior messages keep their
        // in-part candidates, everything else is frozen at baseline (the
        // frozen load is exactly what the other parts see too).
        let owned: Vec<Vec<Path>> = (0..candidates.len())
            .map(|i| {
                if home[i] == Some(pid) {
                    candidates[i]
                        .iter()
                        .filter(|p| in_part(p, pid))
                        .cloned()
                        .collect()
                } else {
                    vec![baseline.path(MessageId(i)).clone()]
                }
            })
            .collect();
        let cand: Vec<&[Path]> = owned.iter().map(Vec::as_slice).collect();
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_add((pid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        hill_climb(
            baseline.clone(),
            baseline_effective,
            &cand,
            topo,
            bounds,
            intervals,
            activity,
            config,
            &mut rng,
        )
    });

    // Merge: each part contributes the paths of its own interior messages.
    // Parts only reroute onto links they own, so no link ends up above the
    // load its owning part accepted.
    let mut merged = baseline.clone();
    let mut restarts = 0;
    for (&pid, (part_best, part_restarts)) in part_ids.iter().zip(optimized) {
        restarts += part_restarts;
        for (i, h) in home.iter().enumerate() {
            if *h == Some(pid) {
                let m = MessageId(i);
                merged.set_path(m, part_best.path(m).clone(), topo);
            }
        }
    }
    // Defensive: the merge argument above holds exactly; guard against EPS
    // pathologies so the baseline guarantee is unconditional.
    let merged_peak = compute(&merged).effective_peak();
    let (stitch_start, stitch_peak) = if merged_peak <= baseline_effective + EPS {
        (merged, merged_peak)
    } else {
        (baseline, baseline_effective)
    };

    // Boundary stitch: only messages without a home part may move, now
    // with their full candidate sets; every interior message is frozen at
    // its merged path.
    let owned: Vec<Vec<Path>> = (0..candidates.len())
        .map(|i| {
            if home[i].is_none() {
                candidates[i].to_vec()
            } else {
                vec![stitch_start.path(MessageId(i)).clone()]
            }
        })
        .collect();
    let cand: Vec<&[Path]> = owned.iter().map(Vec::as_slice).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (best, stitch_restarts) = hill_climb(
        stitch_start,
        stitch_peak,
        &cand,
        topo,
        bounds,
        intervals,
        activity,
        config,
        &mut rng,
    );

    let utilization = compute(&best);
    AssignPathsOutcome {
        assignment: best,
        utilization,
        baseline_peak: baseline_effective,
        restarts: restarts + stitch_restarts,
    }
}

/// The restart loop shared by [`assign_paths_pooled`] and
/// [`assign_paths_partial`]: polish `start` with [`improve`], then explore
/// random restarts over `candidates`, keeping the best peak seen. Returns
/// `(best assignment, restarts performed)`.
#[allow(clippy::too_many_arguments)]
fn hill_climb(
    start: PathAssignment,
    start_peak: f64,
    candidates: &[&[Path]],
    topo: &dyn Topology,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    config: &AssignPathsConfig,
    rng: &mut StdRng,
) -> (PathAssignment, usize) {
    let num_links = topo.num_links();
    let compute =
        |pa: &PathAssignment| UtilizationMap::compute(pa, bounds, activity, intervals, num_links);

    // A peak below this is impossible: each message needs at least
    // duration/active-time of whichever links it ends up on.
    let lower_bound = (0..candidates.len())
        .filter(|&i| !candidates[i].is_empty() && candidates[i][0].hops() > 0)
        .map(|i| {
            let m = MessageId(i);
            let at = activity.active_time(m, intervals);
            if at > 0.0 {
                bounds.window(m).duration() / at
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0f64, f64::max);

    // Start from the deterministic start point (so we can never end up
    // worse), then explore random restarts.
    let mut best = start.clone();
    let mut best_peak = start_peak;
    let mut restarts = 0;

    let mut current = start;
    loop {
        improve(
            &mut current,
            candidates,
            topo,
            bounds,
            intervals,
            activity,
            config.max_inner,
        );
        let peak = compute(&current).effective_peak();
        if peak < best_peak - EPS {
            best = current.clone();
            best_peak = peak;
        }
        restarts += 1;
        if restarts >= config.max_restarts.max(1) || best_peak <= lower_bound + EPS {
            break;
        }
        current = random_assignment(candidates, topo, rng);
    }

    (best, restarts)
}

fn random_assignment(
    candidates: &[&[Path]],
    topo: &dyn Topology,
    rng: &mut StdRng,
) -> PathAssignment {
    let paths = candidates
        .iter()
        .map(|alts| alts[rng.gen_range(0..alts.len())].clone())
        .collect();
    PathAssignment::new(paths, topo)
}

/// The inner do-while of Fig. 4: repeatedly attack the peak with the best
/// reducing reroute, falling back to peak-repositioning reroutes, until no
/// reroute changes anything (or the step cap is hit).
///
/// Trials run against an incrementally maintained [`UtilEval`] — apply the
/// candidate path, read the peak, apply the original path back — instead of
/// cloning the assignment and recomputing every link per trial. The
/// evaluator's figures are bitwise identical to a full
/// [`UtilizationMap::compute`], so every accept/reposition decision (and
/// hence the heuristic's output) is unchanged.
#[allow(clippy::too_many_arguments)]
fn improve(
    current: &mut PathAssignment,
    candidates: &[&[Path]],
    topo: &dyn Topology,
    bounds: &TimeBounds,
    intervals: &Intervals,
    activity: &ActivityMatrix,
    max_inner: usize,
) {
    let mut eval = UtilEval::new(current, bounds, activity, intervals, topo.num_links());
    let mut seen_positions: Vec<(u64, Option<Hotspot>)> = Vec::new();
    for _ in 0..max_inner {
        let peak = eval.effective_peak();
        if peak <= EPS {
            return; // nothing on the network
        }
        let Some(location) = eval.effective_location() else {
            return;
        };
        // Cycle guard for reposition-only progress.
        let key = (peak.to_bits(), Some(location));
        if seen_positions.contains(&key) {
            return;
        }
        seen_positions.push(key);

        // Messages crossing the peak link (restricted to the hot interval
        // for a spot peak).
        let reroutable: Vec<MessageId> = match location {
            Hotspot::Link(l) | Hotspot::Spot(l, _) | Hotspot::Group(l) => current.messages_on(l),
        }
        .into_iter()
        .filter(|&m| candidates[m.index()].len() > 1)
        .collect();

        let mut best_reduce: Option<(MessageId, usize, f64)> = None;
        let mut reposition: Option<(MessageId, usize)> = None;
        for &m in &reroutable {
            let original = current.path(m).clone();
            let mut moved = false;
            for (pi, alt) in candidates[m.index()].iter().enumerate() {
                if *alt == original {
                    continue;
                }
                // Chain trials without undoing in between: the evaluator's
                // state is a pure function of the assignment, so applying
                // alt_i+1 over alt_i equals undo-then-apply, at half the
                // link recomputations.
                eval.set_path(current, m, alt.clone(), topo);
                moved = true;
                let tp = eval.effective_peak();
                if tp < peak - EPS {
                    if best_reduce.is_none_or(|(_, _, bp)| tp < bp - EPS) {
                        best_reduce = Some((m, pi, tp));
                    }
                } else if reposition.is_none()
                    && (tp - peak).abs() <= EPS
                    && eval.effective_location() != Some(location)
                {
                    reposition = Some((m, pi));
                }
            }
            if moved {
                eval.set_path(current, m, original, topo);
            }
        }

        if let Some((m, pi, _)) = best_reduce {
            let p = candidates[m.index()][pi].clone();
            eval.set_path(current, m, p, topo);
        } else if let Some((m, pi)) = reposition {
            let p = candidates[m.index()][pi].clone();
            eval.set_path(current, m, p, topo);
        } else {
            return; // converged: no reroute changes the peak at all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, LinkId, NodeId};

    struct Setup {
        topo: GeneralizedHypercube,
        tfg: TaskFlowGraph,
        alloc: Allocation,
        bounds: TimeBounds,
        intervals: Intervals,
        activity: ActivityMatrix,
    }

    /// Two messages between antipodal corners that dimension-order routing
    /// funnels over the same first link.
    fn contended_setup() -> Setup {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let mut b = TfgBuilder::new();
        let s = b.task("s", 500);
        let a = b.task("a", 500);
        let c = b.task("c", 500);
        b.message("m0", s, a, 1280).unwrap(); // 20 µs
        b.message("m1", s, c, 1280).unwrap(); // 20 µs
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // exec 50
                                              // Both destinations reachable from N0 with LSD-first hop N0->N1.
        let alloc =
            Allocation::new(vec![NodeId(0), NodeId(0b011), NodeId(0b101)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 50.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        Setup {
            topo,
            tfg,
            alloc,
            bounds,
            intervals,
            activity,
        }
    }

    #[test]
    fn beats_lsd_baseline_on_funnel() {
        let s = contended_setup();
        let out = assign_paths(
            &s.tfg,
            &s.topo,
            &s.alloc,
            &s.bounds,
            &s.intervals,
            &s.activity,
            &AssignPathsConfig::default(),
        );
        // Baseline: both 20 µs messages share link N0-N1 active over the
        // whole 50 µs frame -> U = 0.8. Disjoint paths give 0.4.
        assert!(
            (out.baseline_peak - 0.8).abs() < 1e-6,
            "baseline {}",
            out.baseline_peak
        );
        assert!(
            out.utilization.peak() <= 0.4 + 1e-6,
            "expected disjoint paths, got U={}",
            out.utilization.peak()
        );
        // Paths are still valid shortest paths.
        for (i, m) in s.tfg.messages().iter().enumerate() {
            let p = out.assignment.path(MessageId(i));
            assert_eq!(p.source(), s.alloc.node_of(m.src()));
            assert_eq!(p.destination(), s.alloc.node_of(m.dst()));
            assert_eq!(
                p.hops(),
                s.topo.distance(p.source(), p.destination()),
                "non-shortest path assigned"
            );
        }
    }

    #[test]
    fn never_worse_than_baseline() {
        let s = contended_setup();
        for seed in [0u64, 1, 2, 99] {
            let out = assign_paths(
                &s.tfg,
                &s.topo,
                &s.alloc,
                &s.bounds,
                &s.intervals,
                &s.activity,
                &AssignPathsConfig {
                    seed,
                    max_restarts: 2,
                    ..AssignPathsConfig::default()
                },
            );
            assert!(out.utilization.peak() <= out.baseline_peak + 1e-9);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let s = contended_setup();
        let cfg = AssignPathsConfig::default();
        let a = assign_paths(
            &s.tfg,
            &s.topo,
            &s.alloc,
            &s.bounds,
            &s.intervals,
            &s.activity,
            &cfg,
        );
        let b = assign_paths(
            &s.tfg,
            &s.topo,
            &s.alloc,
            &s.bounds,
            &s.intervals,
            &s.activity,
            &cfg,
        );
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn pool_matches_direct_enumeration_and_pooled_run_is_identical() {
        let s = contended_setup();
        let cfg = AssignPathsConfig::default();
        let pool = PathPool::new(&s.topo, cfg.path_cap);
        for src in 0..s.topo.num_nodes() {
            for dst in [0usize, 3, 5] {
                let direct = s
                    .topo
                    .shortest_paths(NodeId(src), NodeId(dst), cfg.path_cap);
                assert_eq!(pool.paths(NodeId(src), NodeId(dst)), &direct[..]);
                // Second lookup hits the cache and agrees.
                assert_eq!(pool.paths(NodeId(src), NodeId(dst)), &direct[..]);
            }
        }
        // Each pair was looked up twice: one miss then one hit.
        let (hits, misses) = pool.stats();
        assert_eq!(misses, (s.topo.num_nodes() * 3) as u64);
        assert_eq!(hits, misses);
        let direct = assign_paths(
            &s.tfg,
            &s.topo,
            &s.alloc,
            &s.bounds,
            &s.intervals,
            &s.activity,
            &cfg,
        );
        let pooled = assign_paths_pooled(
            &s.tfg,
            &s.topo,
            &s.alloc,
            &s.bounds,
            &s.intervals,
            &s.activity,
            &cfg,
            &pool,
        );
        assert_eq!(direct.assignment, pooled.assignment);
        assert_eq!(direct.restarts, pooled.restarts);
    }

    #[test]
    fn band_partition_covers_and_balances() {
        let p = band_partition(16, 4);
        assert_eq!(p.len(), 16);
        assert!(
            p.windows(2).all(|w| w[1] >= w[0]),
            "bands must be contiguous"
        );
        for part in 0..4 {
            assert_eq!(p.iter().filter(|&&x| x == part).count(), 4);
        }
        assert_eq!(band_partition(5, 0), vec![0; 5]); // clamped up to 1 part
        assert_eq!(band_partition(3, 7), vec![0, 1, 2]); // clamped down to n
        assert!(band_partition(0, 4).is_empty());
    }

    /// Forwards everything but hides the coordinate hint, forcing
    /// [`band_partition_topo`] onto its BFS-layer fallback.
    struct NoHint<T: Topology>(T);

    impl<T: Topology> Topology for NoHint<T> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn num_nodes(&self) -> usize {
            self.0.num_nodes()
        }
        fn num_links(&self) -> usize {
            self.0.num_links()
        }
        fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
            self.0.link_endpoints(link)
        }
        fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
            self.0.link_between(a, b)
        }
        fn neighbors(&self, node: NodeId) -> &[NodeId] {
            self.0.neighbors(node)
        }
        fn distance(&self, a: NodeId, b: NodeId) -> usize {
            self.0.distance(a, b)
        }
        fn dimension_order_path(&self, src: NodeId, dst: NodeId) -> sr_topology::Path {
            self.0.dimension_order_path(src, dst)
        }
        fn shortest_paths(&self, src: NodeId, dst: NodeId, cap: usize) -> Vec<sr_topology::Path> {
            self.0.shortest_paths(src, dst, cap)
        }
    }

    #[test]
    fn band_partition_topo_matches_index_bands_on_torus() {
        // On an N×N torus with parts | N both partitioners cut along whole
        // rows, so the generic path must reproduce the historical index
        // bands exactly (this keeps gated scale workloads bit-stable).
        for (n, parts) in [(8usize, 2usize), (8, 4), (12, 3)] {
            let topo = sr_topology::Torus::new(&[n, n]).unwrap();
            assert_eq!(
                band_partition_topo(&topo, parts),
                band_partition(n * n, parts),
                "torus {n}×{n}, {parts} parts"
            );
        }
    }

    #[test]
    fn band_partition_topo_cuts_ghc_msd_slabs() {
        // GHC(4,4,4) with 4 parts: the coarsest cut with ≥ 4 slices is the
        // most significant digit (weight 16), so each band is one GHC(4,4)
        // sub-cube.
        let topo = GeneralizedHypercube::new(&[4, 4, 4]).unwrap();
        let bands = band_partition_topo(&topo, 4);
        for (node, &band) in bands.iter().enumerate() {
            assert_eq!(band, node / 16, "node {node}");
        }
        // 8 parts: the coarsest qualifying cut is weight 4 (16 slices), so
        // bands pair up adjacent middle-digit slabs within an MSD slab.
        let bands = band_partition_topo(&topo, 8);
        for (node, &band) in bands.iter().enumerate() {
            assert_eq!(band, (node / 4) * 8 / 16, "node {node}");
        }
    }

    #[test]
    fn band_partition_topo_bfs_fallback_covers_and_balances() {
        let topo = NoHint(sr_topology::Torus::new(&[4, 4]).unwrap());
        let bands = band_partition_topo(&topo, 4);
        assert_eq!(bands.len(), 16);
        for part in 0..4 {
            assert_eq!(bands.iter().filter(|&&x| x == part).count(), 4);
        }
        // Deterministic: same input, same cut.
        assert_eq!(bands, band_partition_topo(&topo, 4));
        // Node 0's BFS layer 0 is node 0 itself; it always lands in band 0.
        assert_eq!(bands[0], 0);
    }

    #[test]
    fn partitioned_never_worse_than_baseline_and_thread_independent() {
        let topo = sr_topology::Torus::new(&[4, 4]).unwrap();
        let tfg = sr_tfg::dvb_uniform(4);
        let timing = Timing::calibrated_dvb(128.0);
        let alloc = sr_mapping::random_distinct(&tfg, &topo, 7).unwrap();
        let period = timing.longest_task(&tfg) * 2.0;
        let bounds = assign_time_bounds(&tfg, &timing, period, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let cfg = AssignPathsConfig::default();
        let pool = PathPool::new(&topo, cfg.path_cap);
        let part_of = band_partition(sr_topology::Topology::num_nodes(&topo), 4);

        let serial = assign_paths_partitioned(
            &tfg, &topo, &alloc, &bounds, &intervals, &activity, &cfg, &pool, &part_of, 1,
        );
        assert!(serial.utilization.effective_peak() <= serial.baseline_peak + 1e-9);
        let parallel = assign_paths_partitioned(
            &tfg, &topo, &alloc, &bounds, &intervals, &activity, &cfg, &pool, &part_of, 4,
        );
        assert_eq!(serial.assignment, parallel.assignment);
        assert_eq!(serial.restarts, parallel.restarts);
    }

    #[test]
    fn single_path_messages_are_left_alone() {
        // Adjacent nodes: only one shortest path; heuristic must keep it.
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let mut b = TfgBuilder::new();
        let s = b.task("s", 500);
        let d = b.task("d", 500);
        b.message("m", s, d, 640).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 50.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let out = assign_paths(
            &tfg,
            &topo,
            &alloc,
            &bounds,
            &intervals,
            &activity,
            &AssignPathsConfig::default(),
        );
        assert_eq!(out.assignment.path(MessageId(0)).hops(), 1);
        assert!((out.utilization.peak() - out.baseline_peak).abs() < 1e-9);
    }
}
