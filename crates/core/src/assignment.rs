use sr_mapping::Allocation;
use sr_tfg::{MessageId, TaskFlowGraph};
use sr_topology::{LinkId, Path, Topology};

/// A path assignment `B = [b_ij]`: one route per message (paper §5.1).
///
/// Messages between co-located tasks get the trivial (zero-hop) path and
/// never touch the network. The assignment stores both the node path and the
/// derived link set, since the utilization machinery works on links.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAssignment {
    paths: Vec<Path>,
    links: Vec<Vec<LinkId>>,
}

impl PathAssignment {
    /// Builds an assignment from explicit per-message paths.
    ///
    /// # Panics
    ///
    /// Panics if a path is not a valid walk in `topo` (use validated paths
    /// from the topology's routing functions).
    pub fn new(paths: Vec<Path>, topo: &dyn Topology) -> Self {
        let links = paths.iter().map(|p| p.links(topo)).collect();
        PathAssignment { paths, links }
    }

    /// The deterministic LSD-to-MSD baseline: every message follows the
    /// dimension-order path between its allocated endpoints.
    ///
    /// This is both the paper's wormhole routing function and the starting
    /// point its Figs. 5–6 compare `AssignPaths` against.
    pub fn lsd_to_msd(tfg: &TaskFlowGraph, topo: &dyn Topology, alloc: &Allocation) -> Self {
        let paths: Vec<Path> = tfg
            .messages()
            .iter()
            .map(|m| topo.dimension_order_path(alloc.node_of(m.src()), alloc.node_of(m.dst())))
            .collect();
        Self::new(paths, topo)
    }

    /// Number of messages covered.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` when there are no messages.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The path of a message.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn path(&self, m: MessageId) -> &Path {
        &self.paths[m.index()]
    }

    /// All paths, indexable by [`MessageId`].
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The links of a message's path (`b_ij = 1` entries of row `i`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn links(&self, m: MessageId) -> &[LinkId] {
        &self.links[m.index()]
    }

    /// `true` iff `m`'s path uses `link`.
    pub fn uses(&self, m: MessageId, link: LinkId) -> bool {
        self.links[m.index()].contains(&link)
    }

    /// Replaces the path of message `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range or the path is invalid in `topo`.
    pub fn set_path(&mut self, m: MessageId, path: Path, topo: &dyn Topology) {
        self.links[m.index()] = path.links(topo);
        self.paths[m.index()] = path;
    }

    /// Messages whose assigned path uses `link`, ascending.
    pub fn messages_on(&self, link: LinkId) -> Vec<MessageId> {
        (0..self.links.len())
            .filter(|&i| self.links[i].contains(&link))
            .map(MessageId)
            .collect()
    }

    /// Total hop count across all messages (a crude balance metric).
    pub fn total_hops(&self) -> usize {
        self.links.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::generators;
    use sr_topology::{GeneralizedHypercube, NodeId};

    fn setup() -> (GeneralizedHypercube, TaskFlowGraph, Allocation) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 100, 64);
        let alloc = Allocation::new(vec![NodeId(0), NodeId(3), NodeId(3)], &tfg, &topo).unwrap();
        (topo, tfg, alloc)
    }

    #[test]
    fn lsd_to_msd_matches_dimension_order() {
        let (topo, tfg, alloc) = setup();
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        assert_eq!(pa.len(), 2);
        assert_eq!(
            pa.path(MessageId(0)),
            &topo.dimension_order_path(NodeId(0), NodeId(3))
        );
        // Second message is local: trivial path, no links.
        assert_eq!(pa.links(MessageId(1)), &[] as &[LinkId]);
        assert!(!pa.is_empty());
    }

    #[test]
    fn uses_and_messages_on_agree() {
        let (topo, tfg, alloc) = setup();
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        for l in 0..topo.num_links() {
            let on = pa.messages_on(LinkId(l));
            for m in 0..pa.len() {
                assert_eq!(on.contains(&MessageId(m)), pa.uses(MessageId(m), LinkId(l)));
            }
        }
    }

    #[test]
    fn set_path_reroutes() {
        let (topo, tfg, alloc) = setup();
        let mut pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let before = pa.links(MessageId(0)).to_vec();
        let alts = topo.shortest_paths(NodeId(0), NodeId(3), 10);
        let alt = alts.iter().find(|p| p.links(&topo) != before).unwrap();
        pa.set_path(MessageId(0), alt.clone(), &topo);
        assert_ne!(pa.links(MessageId(0)), &before[..]);
        assert_eq!(pa.total_hops(), 2);
    }
}
