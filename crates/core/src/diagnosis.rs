//! Decision-level diagnostics: *why* a compile failed (or where a feasible
//! schedule is tight), as structured data instead of a bare error.
//!
//! The compile pipeline rejects a load with a single [`CompileError`], which
//! names the failing stage but discards everything the solvers learned on
//! the way down: which links saturated, which intervals were contested,
//! which subset of messages is mutually incompatible, and how far down the
//! `(seed, capacity-scale)` ladder each candidate got. This module keeps
//! that evidence:
//!
//! * [`Diagnosis`] — the full record of one diagnosed compile: one
//!   [`CandidateRecord`] per `(seed, scale)` candidate the deterministic
//!   walk consumed, an optional [`SubsetDiagnosis`] when a candidate died
//!   of allocation infeasibility, and the top [`Bottleneck`] rows when the
//!   compile succeeded anyway.
//! * [`diagnose_infeasible_subset`] — re-builds the failing subset's
//!   allocation LP (identical row layout) and runs
//!   [`sr_lp::Problem::solve_diagnosed`]: the phase-1 Farkas certificate's
//!   support names the **blocking messages** (equality rows) and the
//!   **saturated (link, interval) capacity rows** behind the verdict. The
//!   flow engine accepts and rejects exactly the same instances as the
//!   simplex engine, so its failures are diagnosed through the same LP.
//!
//! Diagnostics run only on the explain path ([`crate::compile_diagnosed`])
//! — a plain [`crate::compile`] never builds them, so the hot path pays
//! nothing.

use std::fmt::Write as _;

use sr_lp::DiagnosedOutcome;
use sr_tfg::{MessageId, TaskFlowGraph, TimeBounds};
use sr_topology::{LinkId, Topology};

use crate::allocation_lp::build_subset_lp;
use crate::{ActivityMatrix, Intervals, PathAssignment, Schedule, EPS};

/// How one consumed `(seed, scale)` candidate of the compile walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// The candidate produced the winning schedule.
    Scheduled,
    /// The seed's path assignment exceeded the utilization gate; its
    /// capacity-scale ladder was never entered.
    UtilizationExceeded,
    /// Allocation succeeded but some interval could not be packed into
    /// link-feasible sets; the walk descended to the next capacity rung.
    IntervalUnschedulable,
    /// The message–interval allocation LP (or flow network) was infeasible
    /// at this rung — terminal for the seed.
    AllocInfeasible,
    /// A non-schedulability error (solver trouble) aborted the walk.
    HardError,
    /// Compilation failed before any candidate ran (bad time bounds,
    /// overloaded node, arity mismatch).
    PrecheckFailed,
}

impl CandidateOutcome {
    /// Stable lowercase label, used by the text rendering.
    pub fn label(self) -> &'static str {
        match self {
            CandidateOutcome::Scheduled => "scheduled",
            CandidateOutcome::UtilizationExceeded => "utilization exceeded",
            CandidateOutcome::IntervalUnschedulable => "interval unschedulable",
            CandidateOutcome::AllocInfeasible => "allocation infeasible",
            CandidateOutcome::HardError => "hard error",
            CandidateOutcome::PrecheckFailed => "precheck failed",
        }
    }
}

/// One consumed candidate of the `(seed, scale)` walk: at which capacity
/// rung it died (or won), and why.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateRecord {
    /// Path-assignment retry index (seed-major walk order).
    pub seed: usize,
    /// Nominal capacity scale of the rung; `None` for per-seed failures
    /// that precede the ladder (utilization gate, prechecks).
    pub scale: Option<f64>,
    /// How the candidate ended.
    pub outcome: CandidateOutcome,
    /// Human-readable detail (the error's display form, or the winning
    /// candidate's rank).
    pub detail: String,
}

/// One saturated capacity row of an infeasible subset LP: constraint (4)
/// for `(link, interval)`, carrying nonzero Farkas-certificate weight.
#[derive(Debug, Clone)]
pub struct SaturatedRow {
    /// The saturated link.
    pub link: LinkId,
    /// The contested interval index.
    pub interval: usize,
    /// The capacity the LP offered, µs (already scaled by the failing
    /// rung's effective capacity scale).
    pub capacity: f64,
    /// The row's certificate weight (magnitude orders rows by how hard
    /// they bind).
    pub dual: f64,
    /// Subset members routed over the link and active in the interval.
    pub contenders: Vec<MessageId>,
}

/// Structured explanation of one infeasible message–interval allocation
/// subset, derived from the phase-1 Farkas certificate of the subset LP.
#[derive(Debug, Clone)]
pub struct SubsetDiagnosis {
    /// Path-assignment seed whose candidate died here.
    pub seed: usize,
    /// Effective capacity scale the LP ran at (nominal rung scale times
    /// `1 − spare_capacity`).
    pub capacity_scale: f64,
    /// The failing maximal related subset.
    pub subset: Vec<MessageId>,
    /// Members whose demand rows (constraint (3)) carry certificate
    /// weight — the blocking message subset.
    pub blocking: Vec<MessageId>,
    /// Saturated capacity rows in ascending (link, interval) order.
    pub saturated: Vec<SaturatedRow>,
}

/// One tight capacity row of a *feasible* schedule: how close
/// `(link, interval)` came to its allocation bound.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// The link.
    pub link: LinkId,
    /// The interval index.
    pub interval: usize,
    /// Time allocated across all messages on the link in the interval, µs.
    pub used: f64,
    /// The capacity the winning rung offered, µs.
    pub capacity: f64,
    /// Messages contributing allocation to the row.
    pub messages: Vec<MessageId>,
}

/// Everything [`crate::compile_diagnosed`] learned about one compile.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The input period `τ_in`, µs.
    pub period: f64,
    /// Consumed candidates in deterministic walk order.
    pub candidates: Vec<CandidateRecord>,
    /// Allocation-infeasibility explanation for the first candidate that
    /// died of it (the walk's reported subset).
    pub subset: Option<SubsetDiagnosis>,
    /// On success: the tightest capacity rows of the winning schedule,
    /// most-utilized first.
    pub bottlenecks: Vec<Bottleneck>,
}

impl Diagnosis {
    pub(crate) fn new(period: f64) -> Self {
        Diagnosis {
            period,
            candidates: Vec::new(),
            subset: None,
            bottlenecks: Vec::new(),
        }
    }

    /// Whether the diagnosed compile produced a schedule.
    pub fn scheduled(&self) -> bool {
        self.candidates
            .iter()
            .any(|c| c.outcome == CandidateOutcome::Scheduled)
    }

    /// Renders the diagnosis as stable, human-readable text (the `explain`
    /// subcommand's output; structure is golden-tested).
    pub fn render_text(&self, topo: &dyn Topology, tfg: &TaskFlowGraph) -> String {
        let name = |m: MessageId| tfg.message(m).name().to_string();
        let names = |ms: &[MessageId]| ms.iter().map(|&m| name(m)).collect::<Vec<_>>().join(", ");
        let link_label = |l: LinkId| {
            let (a, b) = topo.link_endpoints(l);
            format!("{l} ({a}-{b})")
        };
        let mut out = String::new();
        let _ = writeln!(out, "explain: period {:.3} µs", self.period);
        let verdict = self
            .candidates
            .iter()
            .find(|c| c.outcome == CandidateOutcome::Scheduled)
            .map(|c| format!("scheduled — {}", c.detail))
            .unwrap_or_else(|| {
                self.candidates
                    .last()
                    .map(|c| format!("infeasible — {}", c.detail))
                    .unwrap_or_else(|| "infeasible — no candidate ran".to_string())
            });
        let _ = writeln!(out, "verdict: {verdict}");

        let _ = writeln!(out, "\ncandidate walk (seed-major, scale-minor):");
        for c in &self.candidates {
            let scale = c
                .scale
                .map(|s| format!("scale {s:.3}"))
                .unwrap_or_else(|| "pre-ladder".to_string());
            let _ = writeln!(
                out,
                "  seed {}  {}  {}: {}",
                c.seed,
                scale,
                c.outcome.label(),
                c.detail
            );
        }

        if let Some(d) = &self.subset {
            let _ = writeln!(
                out,
                "\nallocation infeasibility (seed {}, effective capacity scale {:.3}):",
                d.seed, d.capacity_scale
            );
            let _ = writeln!(
                out,
                "  subset ({} messages): {}",
                d.subset.len(),
                names(&d.subset)
            );
            let _ = writeln!(out, "  blocking demand rows: {}", names(&d.blocking));
            let _ = writeln!(out, "  saturated links (Farkas certificate support):");
            // Group rows by link so the binding interval set reads as one
            // line per saturated link.
            let mut by_link: Vec<(LinkId, Vec<&SaturatedRow>)> = Vec::new();
            for row in &d.saturated {
                match by_link.last_mut() {
                    Some((l, rows)) if *l == row.link => rows.push(row),
                    _ => by_link.push((row.link, vec![row])),
                }
            }
            for (link, rows) in &by_link {
                let ks: Vec<String> = rows.iter().map(|r| r.interval.to_string()).collect();
                let _ = writeln!(
                    out,
                    "    saturated link {}: binding intervals {{{}}}",
                    link_label(*link),
                    ks.join(", ")
                );
                for r in rows {
                    let _ = writeln!(
                        out,
                        "      interval {}: capacity {:.3} µs, weight {:.3}, contenders: {}",
                        r.interval,
                        r.capacity,
                        r.dual.abs(),
                        names(&r.contenders)
                    );
                }
            }
        }

        if !self.bottlenecks.is_empty() {
            let _ = writeln!(out, "\nbottlenecks (tightest capacity rows of the winner):");
            for b in &self.bottlenecks {
                let pct = if b.capacity > 0.0 {
                    100.0 * b.used / b.capacity
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  link {} interval {}: {:.1}% of {:.3} µs ({})",
                    link_label(b.link),
                    b.interval,
                    pct,
                    b.capacity,
                    names(&b.messages)
                );
            }
        }
        out
    }
}

/// Re-solves one failing subset's allocation LP with
/// [`sr_lp::Problem::solve_diagnosed`] and maps the Farkas certificate back
/// to schedule objects: equality-row support → blocking messages, capacity-
/// row support → saturated `(link, interval)` pairs with their contenders.
///
/// `capacity_scale` must be the *effective* scale the failing solve used
/// (nominal rung scale times `1 − spare_capacity`); the rebuilt LP is
/// row-for-row identical to the one [`crate::allocate_intervals`] solved
/// (`build_subset_lp` is the single construction site).
///
/// Returns `None` when the subset turns out feasible (not the failing
/// subset, or a solver error) — diagnosis is best-effort by design.
pub fn diagnose_infeasible_subset(
    assignment: &PathAssignment,
    bounds: &TimeBounds,
    activity: &ActivityMatrix,
    intervals: &Intervals,
    subset: &[MessageId],
    capacity_scale: f64,
) -> Option<SubsetDiagnosis> {
    let built = build_subset_lp(assignment, bounds, activity, subset, |_, k| {
        capacity_scale * intervals.length(k)
    });
    let DiagnosedOutcome::Infeasible(cert) = built.lp.solve_diagnosed(EPS).ok()? else {
        return None;
    };
    let blocking: Vec<MessageId> = subset
        .iter()
        .enumerate()
        .filter(|&(mi, _)| cert.binding[mi])
        .map(|(_, &m)| m)
        .collect();
    let mut saturated = Vec::new();
    for (ri, &(link, k)) in built.cap_rows.iter().enumerate() {
        let row = subset.len() + ri;
        if !cert.binding[row] {
            continue;
        }
        let contenders: Vec<MessageId> = subset
            .iter()
            .enumerate()
            .filter(|&(mi, &m)| {
                built.actives[mi].contains(&k) && assignment.links(m).contains(&link)
            })
            .map(|(_, &m)| m)
            .collect();
        saturated.push(SaturatedRow {
            link,
            interval: k,
            capacity: capacity_scale * intervals.length(k),
            dual: cert.duals[row],
            contenders,
        });
    }
    Some(SubsetDiagnosis {
        seed: 0,
        capacity_scale,
        subset: subset.to_vec(),
        blocking,
        saturated,
    })
}

/// The tightest `(link, interval)` capacity rows of a feasible schedule:
/// per-row utilization of the allocation bound the winning rung ran under
/// (`capacity_scale · (1 − spare) · |A_k|`), most-utilized first, ties
/// broken by ascending (link, interval).
pub fn bottlenecks(sched: &Schedule, spare_capacity: f64, top: usize) -> Vec<Bottleneck> {
    let intervals = sched.intervals();
    let alloc = sched.allocation();
    let mut used: std::collections::BTreeMap<LinkId, Vec<f64>> = std::collections::BTreeMap::new();
    for i in 0..alloc.num_messages() {
        let m = MessageId(i);
        for &l in sched.assignment().links(m) {
            let row = used.entry(l).or_insert_with(|| vec![0.0; intervals.len()]);
            for (k, u) in row.iter_mut().enumerate() {
                *u += alloc.allocated(m, k);
            }
        }
    }
    let mut rows: Vec<Bottleneck> = Vec::new();
    for (&link, row) in &used {
        for (k, &u) in row.iter().enumerate() {
            if u <= EPS {
                continue;
            }
            let capacity = sched.capacity_scale() * (1.0 - spare_capacity) * intervals.length(k);
            let messages: Vec<MessageId> = (0..alloc.num_messages())
                .map(MessageId)
                .filter(|&m| {
                    alloc.allocated(m, k) > EPS && sched.assignment().links(m).contains(&link)
                })
                .collect();
            rows.push(Bottleneck {
                link,
                interval: k,
                used: u,
                capacity,
                messages,
            });
        }
    }
    rows.sort_by(|a, b| {
        let ua = if a.capacity > 0.0 {
            a.used / a.capacity
        } else {
            0.0
        };
        let ub = if b.capacity > 0.0 {
            b.used / b.capacity
        } else {
            0.0
        };
        ub.total_cmp(&ua)
            .then(a.link.cmp(&b.link))
            .then(a.interval.cmp(&b.interval))
    });
    rows.truncate(top);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, compile_diagnosed, CompileConfig, CompileError};
    use sr_tfg::Timing;

    fn dvb_torus() -> (
        sr_topology::Torus,
        TaskFlowGraph,
        sr_mapping::Allocation,
        Timing,
        f64,
    ) {
        let topo = sr_topology::Torus::new(&[4, 4]).unwrap();
        let tfg = sr_tfg::dvb_uniform(4);
        let timing = Timing::calibrated_dvb(64.0);
        let alloc = sr_mapping::random_distinct(&tfg, &topo, 7).unwrap();
        let period = timing.longest_task(&tfg) * 2.0;
        (topo, tfg, alloc, timing, period)
    }

    /// The acceptance demo: DVB on a 4×4 torus at B=64 with the capacity
    /// scale pinned to 0.5 is allocation-infeasible, and the diagnosis
    /// names at least one saturated link with its binding interval set.
    #[test]
    fn infeasible_dvb_names_saturated_link_and_binding_intervals() {
        let (topo, tfg, alloc, timing, period) = dvb_torus();
        let config = CompileConfig {
            feedback_scales: vec![0.5],
            parallelism: 1,
            ..Default::default()
        };
        let (res, diag) =
            compile_diagnosed(&topo, &tfg, &alloc, &timing, period, &config, &sr_obs::NOOP);
        let err = res.expect_err("pinned half-capacity DVB load is infeasible");
        assert!(matches!(err, CompileError::AllocationInfeasible { .. }));
        assert!(!diag.scheduled());
        assert!(!diag.candidates.is_empty());
        assert!(diag
            .candidates
            .iter()
            .all(|c| c.outcome == CandidateOutcome::AllocInfeasible));

        let d = diag.subset.as_ref().expect("subset diagnosis present");
        assert_eq!(d.seed, 0);
        assert!((d.capacity_scale - 0.5).abs() < 1e-12);
        assert!(!d.blocking.is_empty(), "blocking demand rows named");
        assert!(!d.saturated.is_empty(), "at least one saturated link");
        for row in &d.saturated {
            assert!(!row.contenders.is_empty());
            assert!(row.capacity > 0.0);
            assert!(row.dual.abs() > 0.0);
            // Contenders are subset members by construction.
            for m in &row.contenders {
                assert!(d.subset.contains(m));
            }
        }
        for m in &d.blocking {
            assert!(d.subset.contains(m));
        }

        let text = diag.render_text(&topo, &tfg);
        assert!(text.contains("verdict: infeasible"));
        assert!(text.contains("saturated link "));
        assert!(text.contains("binding intervals {"));
        assert!(text.contains("blocking demand rows:"));
    }

    /// On a feasible load the diagnosis records the winner and the tight
    /// capacity rows, the returned schedule is identical to [`compile`]'s,
    /// and the candidate records are parallelism-invariant.
    #[test]
    fn feasible_dvb_reports_winner_and_bottlenecks() {
        let (topo, tfg, alloc, timing, period) = dvb_torus();
        let config = CompileConfig {
            parallelism: 1,
            ..Default::default()
        };
        let (res, diag) =
            compile_diagnosed(&topo, &tfg, &alloc, &timing, period, &config, &sr_obs::NOOP);
        let sched = res.expect("full-capacity DVB load compiles");
        assert!(diag.scheduled());
        assert!(!diag.bottlenecks.is_empty());
        // Bottlenecks are most-utilized-first and within the bound.
        let util = |b: &Bottleneck| b.used / b.capacity;
        for pair in diag.bottlenecks.windows(2) {
            assert!(util(&pair[0]) >= util(&pair[1]) - 1e-9);
        }
        for b in &diag.bottlenecks {
            assert!(b.used <= b.capacity + 1e-6);
            assert!(!b.messages.is_empty());
        }
        let text = diag.render_text(&topo, &tfg);
        assert!(text.contains("verdict: scheduled"));
        assert!(text.contains("bottlenecks (tightest capacity rows"));

        // Diagnosis only observes: same schedule as a plain compile, and
        // the records don't depend on the thread count.
        let plain = compile(&topo, &tfg, &alloc, &timing, period, &config).unwrap();
        assert_eq!(plain.capacity_scale(), sched.capacity_scale());
        assert_eq!(plain.assignment(), sched.assignment());
        let par = CompileConfig {
            parallelism: 4,
            ..config
        };
        let (_, diag_par) =
            compile_diagnosed(&topo, &tfg, &alloc, &timing, period, &par, &sr_obs::NOOP);
        assert_eq!(diag.candidates, diag_par.candidates);
    }

    /// A pre-walk rejection still yields a non-empty diagnosis.
    #[test]
    fn precheck_failure_yields_synthetic_record() {
        let (topo, tfg, alloc, timing, _) = dvb_torus();
        let config = CompileConfig {
            parallelism: 1,
            ..Default::default()
        };
        // Period shorter than the longest task: time-bound assignment fails.
        let (res, diag) =
            compile_diagnosed(&topo, &tfg, &alloc, &timing, 1.0, &config, &sr_obs::NOOP);
        assert!(res.is_err());
        assert_eq!(diag.candidates.len(), 1);
        assert_eq!(diag.candidates[0].outcome, CandidateOutcome::PrecheckFailed);
        let text = diag.render_text(&topo, &tfg);
        assert!(text.contains("precheck failed"));
    }
}
