use std::collections::HashMap;

use sr_tfg::{MessageId, TaskFlowGraph};
use sr_topology::{FaultSet, LinkId, Topology};

use crate::{Command, Connection, Port, Schedule, Segment, VerifyError, EPS};

/// Replays a compiled schedule and checks every property scheduled routing
/// promises:
///
/// 1. **Completeness** — each network-borne message's segments sum to its
///    transmission time (nothing is dropped or short-changed);
/// 2. **Window compliance** — every segment lies inside the message's
///    release/deadline spans, so the pipeline's precedence constraints hold
///    across invocations;
/// 3. **Contention-freedom** — no link carries two messages at overlapping
///    times (the property wormhole routing resolves with FCFS hardware and
///    scheduled routing resolves at compile time);
/// 4. **Switching consistency** — every segment is backed by the right
///    crossbar command at every node of its path, and no node's commands
///    require a link port to be in two states at once.
///
/// Because all messages repeat identically every period and every segment
/// lies inside `[0, τ_in]`, checking one frame proves all invocations — the
/// same single-frame argument the paper uses (§4).
///
/// # Errors
///
/// The first violation found, as a [`VerifyError`].
pub fn verify(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
) -> Result<(), VerifyError> {
    check_completeness(schedule, tfg)?;
    check_windows(schedule)?;
    check_link_contention(schedule)?;
    check_commands(schedule, topo)?;
    Ok(())
}

/// [`verify`] under a fault set: all four replay checks, plus a fifth —
/// no scheduled message's path touches a failed link or node.
///
/// This is the acceptance check for incrementally repaired schedules:
/// `topo` is the *healthy* topology (the id space the schedule is indexed
/// by), and `faults` marks what has since died. Messages whose path
/// assignment is trivial (zero hops) carry no network traffic and are
/// exempt, which is how the repair engine encodes dropped/demoted
/// messages.
///
/// # Errors
///
/// The first violation found; [`VerifyError::UsesFailedResource`] for the
/// fault check.
pub fn verify_with_faults(
    schedule: &Schedule,
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    faults: &FaultSet,
) -> Result<(), VerifyError> {
    verify(schedule, topo, tfg)?;
    for i in 0..tfg.num_messages() {
        let m = MessageId(i);
        let links = schedule.assignment.links(m);
        if links.is_empty() {
            continue;
        }
        let nodes_ok = schedule
            .assignment
            .path(m)
            .nodes()
            .iter()
            .all(|&v| !faults.is_node_failed(v));
        let links_ok = links.iter().all(|&l| !faults.is_link_failed(l));
        if !nodes_ok || !links_ok {
            return Err(VerifyError::UsesFailedResource { message: m });
        }
    }
    Ok(())
}

fn check_completeness(schedule: &Schedule, tfg: &TaskFlowGraph) -> Result<(), VerifyError> {
    for i in 0..tfg.num_messages() {
        let m = MessageId(i);
        if schedule.assignment.links(m).is_empty() {
            continue; // local message: no network time needed
        }
        let required = schedule.bounds.window(m).duration();
        let scheduled: f64 = schedule
            .segments
            .iter()
            .filter(|s| s.message == m)
            .map(Segment::duration)
            .sum();
        if (scheduled - required).abs() > EPS * required.max(1.0) {
            return Err(VerifyError::IncompleteTransmission {
                message: m,
                scheduled,
                required,
            });
        }
    }
    Ok(())
}

fn check_windows(schedule: &Schedule) -> Result<(), VerifyError> {
    for seg in &schedule.segments {
        let w = schedule.bounds.window(seg.message);
        let inside = w
            .spans()
            .iter()
            .any(|&(s, e)| seg.start >= s - EPS && seg.end <= e + EPS);
        if !inside {
            return Err(VerifyError::OutsideWindow {
                message: seg.message,
                start: seg.start,
                end: seg.end,
            });
        }
    }
    Ok(())
}

fn check_link_contention(schedule: &Schedule) -> Result<(), VerifyError> {
    // Expand segments onto their links and sweep each link's timeline.
    let mut per_link: HashMap<LinkId, Vec<(f64, f64, MessageId)>> = HashMap::new();
    for seg in &schedule.segments {
        for &l in schedule.assignment.links(seg.message) {
            per_link
                .entry(l)
                .or_default()
                .push((seg.start, seg.end, seg.message));
        }
    }
    // With a positive guard time, transmissions on a shared link must also
    // be separated by at least the guard (the CP-synchronization margin).
    let min_gap = if schedule.guard_time > 0.0 {
        schedule.guard_time - EPS
    } else {
        -EPS
    };
    for (link, mut spans) in per_link {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            let (s0, e0, m0) = w[0];
            let (s1, _e1, m1) = w[1];
            let _ = s0;
            if s1 - e0 < min_gap && m0 != m1 {
                return Err(VerifyError::LinkContention {
                    link,
                    messages: (m0, m1),
                    at: s1,
                });
            }
        }
    }
    Ok(())
}

fn check_commands(schedule: &Schedule, topo: &dyn Topology) -> Result<(), VerifyError> {
    // Index all commands by message for the per-segment path check.
    let mut by_message: HashMap<MessageId, Vec<(usize, Command)>> = HashMap::new();
    for ns in &schedule.node_schedules {
        for &c in ns.commands() {
            by_message
                .entry(c.message)
                .or_default()
                .push((ns.node().index(), c));
        }
    }

    // 4a: every segment is backed by the correct command at every hop.
    for seg in &schedule.segments {
        let path = schedule.assignment.path(seg.message);
        let nodes = path.nodes();
        let links = schedule.assignment.links(seg.message);
        let cmds = by_message.get(&seg.message).cloned().unwrap_or_default();
        for (i, &node) in nodes.iter().enumerate() {
            let want = Connection {
                from: if i == 0 {
                    Port::Processor
                } else {
                    Port::Link(links[i - 1])
                },
                to: if i == nodes.len() - 1 {
                    Port::Processor
                } else {
                    Port::Link(links[i])
                },
            };
            let found = cmds.iter().any(|(n, c)| {
                *n == node.index()
                    && c.connection == want
                    && (c.start - seg.start).abs() <= EPS
                    && (c.end - seg.end).abs() <= EPS
            });
            if !found {
                return Err(VerifyError::WrongPath {
                    message: seg.message,
                });
            }
        }
    }

    // 4b: no node needs a link port in two states at once.
    for ns in &schedule.node_schedules {
        let cmds = ns.commands();
        for i in 0..cmds.len() {
            for j in (i + 1)..cmds.len() {
                let (a, b) = (&cmds[i], &cmds[j]);
                let overlap = a.start.max(b.start) < a.end.min(b.end) - EPS;
                if !overlap {
                    continue;
                }
                let ports = |c: &Command| {
                    [c.connection.from, c.connection.to]
                        .into_iter()
                        .filter(|p| matches!(p, Port::Link(_)))
                        .collect::<Vec<_>>()
                };
                let shares_link = ports(a).iter().any(|p| ports(b).contains(p));
                if shares_link && a.message != b.message {
                    return Err(VerifyError::ConflictingCommands {
                        node: ns.node(),
                        at: a.start.max(b.start),
                    });
                }
            }
        }
    }

    let _ = topo;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> (GeneralizedHypercube, TaskFlowGraph, Schedule) {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            75.0,
            &CompileConfig::default(),
        )
        .expect("diamond compiles");
        (topo, tfg, sched)
    }

    #[test]
    fn valid_schedule_verifies() {
        let (topo, tfg, sched) = compiled();
        verify(&sched, &topo, &tfg).expect("clean schedule");
    }

    #[test]
    fn catches_deleted_segment() {
        let (topo, tfg, mut sched) = compiled();
        // Drop the first segment: its message is now short-changed.
        sched.segments.remove(0);
        let err = verify(&sched, &topo, &tfg).unwrap_err();
        assert!(matches!(err, VerifyError::IncompleteTransmission { .. }));
    }

    #[test]
    fn catches_contention_injection() {
        let (topo, tfg, mut sched) = compiled();
        // Duplicate a segment shifted to overlap itself on the same links
        // under a different message id with the same path? Simpler: take two
        // segments of different messages that share a link and force them to
        // overlap by stretching one across the other's span.
        // Fabricate: copy segment 0 and relabel it as a message that shares
        // a link if possible; otherwise stretch a segment.
        let seg0 = sched.segments[0];
        // Find another message sharing a link with seg0's message.
        let links0 = sched.assignment.links(seg0.message).to_vec();
        let other = (0..tfg.num_messages()).map(MessageId).find(|&m| {
            m != seg0.message && sched.assignment.links(m).iter().any(|l| links0.contains(l))
        });
        if let Some(other) = other {
            // Give `other` an extra segment exactly overlapping seg0. This
            // breaks completeness too, so check contention is reported by
            // bypassing the earlier check: lengthen instead. We simply
            // verify that *some* error is raised.
            sched.segments.push(Segment {
                message: other,
                start: seg0.start,
                end: seg0.end,
            });
            assert!(verify(&sched, &topo, &tfg).is_err());
        }
    }

    #[test]
    fn catches_out_of_window_segment() {
        let (topo, tfg, mut sched) = compiled();
        // Move a segment far outside its window (and fix nothing else).
        let m = sched.segments[0].message;
        let w = sched.bounds.window(m);
        // Find a time not inside any span.
        let gap = {
            let spans = w.spans();
            if spans.len() == 1 && w.covers_period() {
                None // cannot leave the window: skip
            } else {
                let (s0, _e0) = spans[spans.len() - 1];
                if s0 > 1.0 {
                    Some((s0 - 1.0, s0 - 0.5))
                } else {
                    None
                }
            }
        };
        if let Some((a, b)) = gap {
            sched.segments[0].start = a;
            sched.segments[0].end = b;
            let err = verify(&sched, &topo, &tfg).unwrap_err();
            assert!(
                matches!(
                    err,
                    VerifyError::OutsideWindow { .. }
                        | VerifyError::IncompleteTransmission { .. }
                        | VerifyError::WrongPath { .. }
                ),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn fault_check_flags_scheduled_path_over_dead_link() {
        let (topo, tfg, sched) = compiled();
        // No faults: identical to plain verify.
        verify_with_faults(&sched, &topo, &tfg, &FaultSet::new()).expect("clean without faults");
        // Fail a link some message actually uses.
        let used = sched.assignment.links(sched.segments[0].message)[0];
        let err = verify_with_faults(&sched, &topo, &tfg, &FaultSet::new().fail_link(used))
            .expect_err("dead link under a scheduled path");
        assert!(matches!(err, VerifyError::UsesFailedResource { .. }));
        // Fail a node on some message's path.
        let mid = sched.assignment.path(sched.segments[0].message).nodes()[0];
        let err = verify_with_faults(&sched, &topo, &tfg, &FaultSet::new().fail_node(mid))
            .expect_err("dead node under a scheduled path");
        assert!(matches!(err, VerifyError::UsesFailedResource { .. }));
    }

    #[test]
    fn catches_missing_commands() {
        let (topo, tfg, mut sched) = compiled();
        // Blank out every node schedule: segments lose their backing.
        for ns in &mut sched.node_schedules {
            *ns = crate::NodeSchedule::new(ns.node(), Vec::new());
        }
        let err = verify(&sched, &topo, &tfg).unwrap_err();
        assert!(matches!(err, VerifyError::WrongPath { .. }));
    }
}
