//! Shared **pinned re-allocation + idle-time packing** ladder.
//!
//! Two callers re-derive a few messages' rows against an otherwise frozen
//! schedule: `sr-fault::repair` (links disappeared, affected messages
//! re-routed) and `sr-serve` admission (messages arrived, every admitted
//! tenant's traffic frozen). Both walk the same capacity-scale ladder —
//! pinned allocation LP, then earliest-fit packing of the re-derived rows
//! into the idle time the frozen traffic leaves — so the ladder lives here,
//! in one place, and the callers cannot drift.
//!
//! The generalization over the original repair-only code is the
//! `external_busy` parameter: per-link spans occupied by traffic that is
//! *not* part of this allocation problem at all (other tenants' schedules).
//! Repair passes an empty map and gets the PR-3 behaviour bit-identically;
//! admission passes the daemon's link ledger.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sr_obs::Recorder;
use sr_tfg::MessageId;
use sr_topology::LinkId;

use crate::{
    allocate_intervals_pinned_reserved, allocate_intervals_pinned_reserved_flow, related_subsets,
    AllocBasisCache, AllocEngine, AllocationStats, CompileError, FlowAllocStats, FlowWorkspace,
    IntervalAllocation, IntervalSchedule, PathAssignment, Schedule, Slice, EPS,
};

/// How one scale rung of [`reallocate_pinned`] ended.
#[derive(Debug, Clone)]
pub enum ReallocAttemptOutcome {
    /// The pinned allocation solved and the affected traffic packed.
    Succeeded,
    /// The pinned allocation LP was infeasible at this scale.
    AllocInfeasible(CompileError),
    /// Allocation succeeded but the affected traffic did not fit into the
    /// available idle time at this scale.
    PackFailed,
}

/// One consumed rung of the [`reallocate_pinned`] scale ladder.
#[derive(Debug, Clone)]
pub struct ReallocAttempt {
    /// Capacity scale of this attempt.
    pub scale: f64,
    /// How the attempt ended.
    pub outcome: ReallocAttemptOutcome,
}

/// A successful [`reallocate_pinned`] result.
#[derive(Debug, Clone)]
pub struct Repacked {
    /// The full allocation matrix: pinned rows bit-identical, affected rows
    /// re-derived.
    pub allocation: IntervalAllocation,
    /// Interval schedules with the retained slices verbatim and the
    /// affected traffic packed into idle time.
    pub interval_schedules: Vec<IntervalSchedule>,
    /// The capacity scale that succeeded.
    pub scale: f64,
}

/// Walks the capacity-scale ladder for an incremental re-allocation: at
/// each scale, re-solve the `affected` messages' rows with every other row
/// of `schedule` pinned ([`allocate_intervals_pinned_reserved`]), then pack
/// the re-derived rows into the idle time left by the retained slices and
/// `external_busy` ([`pack_affected`]). The first packable scale wins.
///
/// `assignment` is the (possibly re-routed) path assignment the new rows
/// are derived for; `excluded` messages contribute neither retained slices
/// nor new traffic (dropped/demoted messages with trivial paths).
/// `external_busy` spans additionally reduce both the LP capacities (by
/// interval overlap) and the packable free time; an empty map reproduces
/// the fault-repair behaviour exactly.
///
/// Every attempt is appended to `attempts` (for diagnosis rendering), and
/// counters are emitted under `prefix`: `<prefix>.candidates` per rung,
/// `<prefix>.alloc_lp.{solves,pivots,warm_hits,warm_misses}`, and
/// `<prefix>.alloc_flow.{solves,augmentations,dijkstra_pops,`
/// `potential_reuse_hits,fallbacks}` (always emitted — zero under the
/// simplex engine — so the namespace is pinned for the metrics gates),
/// plus `<prefix>.alloc_infeasible`, `<prefix>.pack_failed`.
///
/// `engine` selects the pinned-allocation backend. Under
/// [`AllocEngine::Simplex`] the subset LPs warm-start from `cache` down
/// the ladder (structurally identical LPs, shrinking capacities), and
/// across calls when the assignment and subsets are unchanged — the serve
/// daemon's repeat-admission fast path. Under [`AllocEngine::Flow`] the
/// rows come from [`allocate_intervals_pinned_reserved_flow`] and
/// `flow_ws` is the workspace reused across rungs and calls (the flow-side
/// mirror of `cache`; `cache` then only serves fallback solves).
///
/// Returns `None` when no scale yields a packable allocation. An empty
/// `scales` tries `1.0` alone.
#[allow(clippy::too_many_arguments)]
pub fn reallocate_pinned(
    schedule: &Schedule,
    assignment: &PathAssignment,
    affected: &[MessageId],
    excluded: &BTreeSet<MessageId>,
    external_busy: &BTreeMap<LinkId, Vec<(f64, f64)>>,
    scales: &[f64],
    engine: AllocEngine,
    cache: &mut AllocBasisCache,
    flow_ws: &mut FlowWorkspace,
    prefix: &str,
    rec: &dyn Recorder,
    attempts: &mut Vec<ReallocAttempt>,
) -> Option<Repacked> {
    let intervals = schedule.intervals();
    let subsets = related_subsets(assignment, schedule.activity());
    let scales: &[f64] = if scales.is_empty() { &[1.0] } else { scales };

    // External spans folded onto this problem's interval grid: the overlap
    // of each span with each interval is capacity the LP must not hand out.
    // No guard is added here — the LP reservation is guidance, the packing
    // stage is the authoritative (guard-aware) feasibility check, and the
    // scale ladder absorbs the difference.
    let reserved: HashMap<LinkId, Vec<f64>> = external_busy
        .iter()
        .map(|(&l, spans)| {
            let row: Vec<f64> = (0..intervals.len())
                .map(|k| {
                    let (a, b) = intervals.bounds(k);
                    spans
                        .iter()
                        .map(|&(s, e)| (e.min(b) - s.max(a)).max(0.0))
                        .sum()
                })
                .collect();
            (l, row)
        })
        .collect();

    for &scale in scales {
        rec.add(&format!("{prefix}.candidates"), 1);
        let mut alloc_stats = AllocationStats::default();
        let mut flow_stats = FlowAllocStats::default();
        let allocated = match engine {
            AllocEngine::Simplex => allocate_intervals_pinned_reserved(
                assignment,
                schedule.bounds(),
                schedule.activity(),
                intervals,
                &subsets,
                affected,
                schedule.allocation(),
                &reserved,
                scale,
                Some(cache),
                &mut alloc_stats,
            ),
            AllocEngine::Flow => allocate_intervals_pinned_reserved_flow(
                assignment,
                schedule.bounds(),
                schedule.activity(),
                intervals,
                &subsets,
                affected,
                schedule.allocation(),
                &reserved,
                scale,
                flow_ws,
                &mut flow_stats,
                &mut alloc_stats,
            ),
        };
        rec.add(&format!("{prefix}.alloc_lp.solves"), alloc_stats.lp_solves);
        rec.add(&format!("{prefix}.alloc_lp.pivots"), alloc_stats.lp.pivots);
        rec.add(
            &format!("{prefix}.alloc_lp.warm_hits"),
            alloc_stats.lp.warm_hits,
        );
        rec.add(
            &format!("{prefix}.alloc_lp.warm_misses"),
            alloc_stats.lp.warm_misses,
        );
        // Flow-kernel work, emitted unconditionally (zeros under the
        // simplex engine) so the counter namespace is engine-independent
        // and the metrics gates pin it either way.
        rec.add(&format!("{prefix}.alloc_flow.solves"), flow_stats.solves);
        rec.add(
            &format!("{prefix}.alloc_flow.augmentations"),
            flow_stats.augmentations,
        );
        rec.add(
            &format!("{prefix}.alloc_flow.dijkstra_pops"),
            flow_stats.dijkstra_pops,
        );
        rec.add(
            &format!("{prefix}.alloc_flow.potential_reuse_hits"),
            flow_stats.potential_reuse_hits,
        );
        rec.add(
            &format!("{prefix}.alloc_flow.fallbacks"),
            flow_stats.fallbacks,
        );
        let allocation = match allocated {
            Ok(a) => a,
            Err(e) => {
                rec.add(&format!("{prefix}.alloc_infeasible"), 1);
                attempts.push(ReallocAttempt {
                    scale,
                    outcome: ReallocAttemptOutcome::AllocInfeasible(e),
                });
                continue;
            }
        };
        if let Some(interval_schedules) = pack_affected(
            schedule,
            assignment,
            &allocation,
            affected,
            excluded,
            external_busy,
        ) {
            attempts.push(ReallocAttempt {
                scale,
                outcome: ReallocAttemptOutcome::Succeeded,
            });
            return Some(Repacked {
                allocation,
                interval_schedules,
                scale,
            });
        }
        rec.add(&format!("{prefix}.pack_failed"), 1);
        attempts.push(ReallocAttempt {
            scale,
            outcome: ReallocAttemptOutcome::PackFailed,
        });
    }
    None
}

/// Packs the affected messages' allocations into the idle time the
/// retained slices and `external_busy` leave on their links, earliest-fit
/// with preemption.
///
/// Every slice of the original schedule survives verbatim with the
/// affected/excluded messages filtered out of its member set (so retained
/// messages' segments are bit-identical); the affected traffic is placed
/// into per-link free spans separated from existing traffic by the
/// schedule's guard time. `None` when some message's allocation does not
/// fit — the caller then tightens the allocation scale.
pub fn pack_affected(
    schedule: &Schedule,
    assignment: &PathAssignment,
    allocation: &IntervalAllocation,
    affected: &[MessageId],
    excluded: &BTreeSet<MessageId>,
    external_busy: &BTreeMap<LinkId, Vec<(f64, f64)>>,
) -> Option<Vec<IntervalSchedule>> {
    let intervals = schedule.intervals();
    let guard = schedule.guard_time();
    let moved: BTreeSet<MessageId> = affected
        .iter()
        .copied()
        .chain(excluded.iter().copied())
        .collect();

    // Retained slices per interval, with moved messages filtered out.
    let mut per_interval: Vec<Vec<Slice>> = vec![Vec::new(); intervals.len()];
    for is in schedule.interval_schedules() {
        for slice in &is.slices {
            let members: Vec<MessageId> = slice
                .messages
                .iter()
                .copied()
                .filter(|m| !moved.contains(m))
                .collect();
            if !members.is_empty() {
                per_interval[is.interval].push(Slice {
                    messages: members,
                    start: slice.start,
                    duration: slice.duration,
                });
            }
        }
    }

    // Busy spans per link: the external ledger, plus the retained slices.
    let mut busy: HashMap<LinkId, Vec<(f64, f64)>> = external_busy
        .iter()
        .map(|(&l, spans)| (l, spans.clone()))
        .collect();
    for slices in &per_interval {
        for slice in slices {
            for &m in &slice.messages {
                for &l in assignment.links(m) {
                    busy.entry(l).or_default().push((slice.start, slice.end()));
                }
            }
        }
    }

    let mut ordered = affected.to_vec();
    ordered.sort_unstable();
    for &m in &ordered {
        let links = assignment.links(m);
        for (k, interval_slices) in per_interval.iter_mut().enumerate() {
            let mut need = allocation.allocated(m, k);
            if need <= EPS {
                continue;
            }
            let (a, b) = intervals.bounds(k);
            let mut free = vec![(a, b)];
            for &l in links {
                let spans = busy.entry(l).or_default();
                free = intersect(&free, &free_within(spans, a, b, guard));
                if free.is_empty() {
                    break;
                }
            }
            let mut placed: Vec<Slice> = Vec::new();
            for &(s, e) in &free {
                if need <= EPS {
                    break;
                }
                let chunk = (e - s).min(need);
                if chunk <= EPS {
                    continue;
                }
                placed.push(Slice {
                    messages: vec![m],
                    start: s,
                    duration: chunk,
                });
                need -= chunk;
            }
            if need > EPS {
                return None; // does not fit at this allocation scale
            }
            for slice in placed {
                for &l in links {
                    busy.entry(l).or_default().push((slice.start, slice.end()));
                }
                interval_slices.push(slice);
            }
        }
    }

    Some(
        per_interval
            .into_iter()
            .enumerate()
            .filter(|(_, slices)| !slices.is_empty())
            .map(|(interval, mut slices)| {
                slices.sort_by(|x, y| {
                    x.start
                        .total_cmp(&y.start)
                        .then_with(|| x.messages.cmp(&y.messages))
                });
                IntervalSchedule { interval, slices }
            })
            .collect(),
    )
}

/// The sub-spans of `[a, b]` at least `guard` away from every busy span.
/// Sorts `busy` in place (by start) as a side effect.
pub fn free_within(busy: &mut [(f64, f64)], a: f64, b: f64, guard: f64) -> Vec<(f64, f64)> {
    busy.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut out = Vec::new();
    let mut cursor = a;
    for &(s, e) in busy.iter() {
        let (s, e) = (s - guard, e + guard);
        if e <= cursor + EPS {
            continue;
        }
        if s >= b - EPS {
            break;
        }
        if s - cursor > EPS {
            out.push((cursor, s));
        }
        cursor = cursor.max(e);
        if cursor >= b - EPS {
            break;
        }
    }
    if b - cursor > EPS {
        out.push((cursor, b));
    }
    out
}

/// Intersects two ascending disjoint span lists.
pub fn intersect(a: &[(f64, f64)], b: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e - s > EPS {
            out.push((s, e));
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_within_respects_guard() {
        let mut busy = vec![(40.0, 50.0), (10.0, 20.0)];
        let free = free_within(&mut busy, 0.0, 100.0, 2.0);
        assert_eq!(free, vec![(0.0, 8.0), (22.0, 38.0), (52.0, 100.0)]);
    }

    #[test]
    fn free_within_empty_busy_is_whole_window() {
        let free = free_within(&mut [], 5.0, 30.0, 1.0);
        assert_eq!(free, vec![(5.0, 30.0)]);
    }

    #[test]
    fn intersect_two_pointer_walk() {
        let a = [(0.0, 10.0), (20.0, 30.0)];
        let b = [(5.0, 25.0)];
        assert_eq!(intersect(&a, &b), vec![(5.0, 10.0), (20.0, 25.0)]);
    }
}
