use sr_tfg::MessageId;

use crate::{ActivityMatrix, PathAssignment};

/// Partitions the network-borne messages into **maximal related subsets**
/// (paper Defs. 5.3/5.4).
///
/// Two messages are *related* when they share a link **and** are active in a
/// common interval (directly, or transitively through other messages). The
/// relation's transitive closure partitions `S_M`; message–interval
/// allocation and interval scheduling are then solved independently per
/// subset, which keeps the LPs small.
///
/// Messages with a trivial path (co-located endpoints) never use the network
/// and are omitted entirely.
///
/// The returned subsets are each sorted ascending and ordered by their
/// smallest member.
pub fn related_subsets(
    assignment: &PathAssignment,
    activity: &ActivityMatrix,
) -> Vec<Vec<MessageId>> {
    let n = assignment.len();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for i in 0..n {
        if assignment.links(MessageId(i)).is_empty() {
            continue;
        }
        for j in (i + 1)..n {
            if assignment.links(MessageId(j)).is_empty() {
                continue;
            }
            let share_link = assignment
                .links(MessageId(i))
                .iter()
                .any(|l| assignment.links(MessageId(j)).contains(l));
            if !share_link {
                continue;
            }
            let share_interval = activity
                .active_intervals(MessageId(i))
                .iter()
                .any(|&k| activity.is_active(MessageId(j), k));
            if share_interval {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }

    let mut groups: std::collections::BTreeMap<usize, Vec<MessageId>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        if assignment.links(MessageId(i)).is_empty() {
            continue;
        }
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(MessageId(i));
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Intervals;
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, TfgBuilder, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId};

    /// Four messages: two sharing a link & time, one sharing a link but not
    /// time, one local.
    #[test]
    fn partition_respects_link_and_time_sharing() {
        let topo = GeneralizedHypercube::binary(1).unwrap(); // one link
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 100); // exec 10
        let t1 = b.task("t1", 100);
        let t2 = b.task("t2", 100);
        let t3 = b.task("t3", 100);
        // m0: t0->t1 crosses the link, released at 10.
        b.message("m0", t0, t1, 64).unwrap();
        // m1: t0->t2 (t2 co-located with t1 on N1) also crosses, same time.
        let _ = t2;
        b.message("m1", t0, t2, 64).unwrap();
        // m2: t1->t3 crosses back much later (separate interval).
        b.message("m2", t1, t3, 64).unwrap();
        // m3: local on N0.
        b.message("m3", t0, t3, 64).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // exec 10, tx 1
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(1), NodeId(0)],
            &tfg,
            &topo,
        )
        .unwrap();
        // Tight windows keep the early and late messages in disjoint
        // intervals.
        let bounds = assign_time_bounds(&tfg, &timing, 40.0, WindowPolicy::Tight).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);

        let subsets = related_subsets(&pa, &activity);
        // m3 is local -> excluded. m0 & m1 share link+interval -> together.
        // m2 shares the link but no interval -> alone.
        assert_eq!(subsets.len(), 2);
        assert_eq!(subsets[0], vec![MessageId(0), MessageId(1)]);
        assert_eq!(subsets[1], vec![MessageId(2)]);
    }

    #[test]
    fn disjoint_links_are_separate() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let mut b = TfgBuilder::new();
        let a = b.task("a", 100);
        let c = b.task("c", 100);
        let d = b.task("d", 100);
        let e = b.task("e", 100);
        b.message("m0", a, c, 64).unwrap();
        b.message("m1", d, e, 64).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        // a->c on link 0-1; d->e on link 2-3: disjoint.
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            &tfg,
            &topo,
        )
        .unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 10.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let subsets = related_subsets(&pa, &activity);
        assert_eq!(subsets.len(), 2);
        assert_eq!(subsets[0], vec![MessageId(0)]);
        assert_eq!(subsets[1], vec![MessageId(1)]);
    }

    #[test]
    fn transitivity_merges_chains() {
        // m0 shares a link with m1, m1 with m2, but m0 and m2 are disjoint:
        // all three must land in one subset.
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let mut b = TfgBuilder::new();
        let n0 = b.task("n0", 100);
        let n1 = b.task("n1", 100);
        let n3 = b.task("n3", 100);
        let n1b = b.task("n1b", 100);
        b.message("m0", n0, n1, 64).unwrap(); // link 0-1
        b.message("m1", n0, n3, 64).unwrap(); // links 0-1, 1-3 (dim order)
        b.message("m2", n1b, n3, 64).unwrap(); // link 1-3
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(1)],
            &tfg,
            &topo,
        )
        .unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 10.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        // All tasks complete at 10; all windows cover the whole frame.
        let subsets = related_subsets(&pa, &activity);
        assert_eq!(subsets.len(), 1);
        assert_eq!(subsets[0], vec![MessageId(0), MessageId(1), MessageId(2)]);
    }
}
