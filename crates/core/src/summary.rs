//! Aggregate statistics of a compiled schedule — the numbers a deployment
//! report or regression dashboard wants at a glance.

use sr_topology::{LinkId, Topology};

use crate::Schedule;

/// One-struct summary of a compiled schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Invocation period `τ_in`, µs.
    pub period: f64,
    /// Compile-time latency bound, µs.
    pub latency: f64,
    /// Peak (effective) utilization of the final path assignment.
    pub peak_utilization: f64,
    /// Number of transmission segments in one frame.
    pub segments: usize,
    /// Number of crossbar commands across all nodes.
    pub commands: usize,
    /// Nodes whose CP actually switches (non-idle).
    pub active_nodes: usize,
    /// Links that carry at least one message.
    pub busy_links: usize,
    /// The busiest link and its busy fraction of the frame.
    pub busiest_link: Option<(LinkId, f64)>,
    /// Mean busy fraction over links that carry traffic (0 when none do).
    pub mean_busy_fraction: f64,
    /// Largest number of segments any single message was split into.
    pub max_preemptions: usize,
}

impl Schedule {
    /// Computes the summary against the topology the schedule was compiled
    /// for.
    pub fn summary(&self, topo: &dyn Topology) -> ScheduleSummary {
        let commands = self
            .node_schedules()
            .iter()
            .map(|n| n.commands().len())
            .sum();
        let active_nodes = self
            .node_schedules()
            .iter()
            .filter(|n| !n.is_idle())
            .count();

        let mut busiest: Option<(LinkId, f64)> = None;
        let mut busy_links = 0;
        let mut busy_total = 0.0;
        for l in 0..topo.num_links() {
            let link = LinkId(l);
            let busy: f64 = self.link_busy_spans(link).iter().map(|(a, b)| b - a).sum();
            if busy <= 0.0 {
                continue;
            }
            busy_links += 1;
            let fraction = busy / self.period();
            busy_total += fraction;
            if busiest.is_none_or(|(_, f)| fraction > f) {
                busiest = Some((link, fraction));
            }
        }

        let mut per_message = std::collections::HashMap::new();
        for seg in self.segments() {
            *per_message.entry(seg.message).or_insert(0usize) += 1;
        }
        let max_preemptions = per_message.values().copied().max().unwrap_or(0);

        ScheduleSummary {
            period: self.period(),
            latency: self.latency(),
            peak_utilization: self.peak_utilization(),
            segments: self.segments().len(),
            commands,
            active_nodes,
            busy_links,
            busiest_link: busiest,
            mean_busy_fraction: if busy_links > 0 {
                busy_total / busy_links as f64
            } else {
                0.0
            },
            max_preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    #[test]
    fn summary_is_internally_consistent() {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(4, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let s = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            80.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        let sum = s.summary(&topo);

        assert_eq!(sum.period, 80.0);
        assert_eq!(sum.segments, s.segments().len());
        assert!(
            sum.commands >= sum.segments,
            "every segment needs ≥1 command"
        );
        assert!(sum.active_nodes >= 2, "at least source and sink CPs switch");
        assert!(sum.busy_links >= 1);
        let (busiest, frac) = sum.busiest_link.expect("network traffic exists");
        assert!((0.0..=1.0 + 1e-9).contains(&frac));
        assert!(frac >= sum.mean_busy_fraction - 1e-12);
        assert!(!s.link_busy_spans(busiest).is_empty());
        assert!(sum.max_preemptions >= 1);
    }

    #[test]
    fn local_only_workload_has_empty_network_summary() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(2, 100, 64);
        let timing = Timing::new(64.0, 10.0);
        // Both tasks on one node; the single message never enters the net…
        // but AP capacity must still fit: 2 × 10 µs per 25 µs period.
        let alloc =
            sr_mapping::Allocation::new(vec![sr_topology::NodeId(1); 2], &tfg, &topo).unwrap();
        let s = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            25.0,
            &CompileConfig::default(),
        )
        .expect("local-only compiles");
        let sum = s.summary(&topo);
        assert_eq!(sum.segments, 0);
        assert_eq!(sum.busy_links, 0);
        assert_eq!(sum.busiest_link, None);
        assert_eq!(sum.mean_busy_fraction, 0.0);
        assert_eq!(sum.max_preemptions, 0);
    }
}
