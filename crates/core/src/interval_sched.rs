use sr_lp::{Problem, Relation, SolveStats, VarId};
use sr_tfg::MessageId;

use crate::{CompileError, IntervalAllocation, Intervals, PathAssignment, EPS};

/// Work counters for one interval-scheduling pass (paper §5.3), aggregated
/// over every (interval, related-subset) LP the pass solved. Deterministic
/// for a fixed problem: independent of thread count and wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSchedStats {
    /// Merged simplex counters across all subset-interval LPs.
    pub lp: SolveStats,
    /// Number of subset-interval LPs solved (singleton fast paths excluded).
    pub lp_solves: u64,
    /// Link-feasible sets enumerated across all LPs (LP variables).
    pub feasible_sets: u64,
    /// Flat-arena cells written by the independent-set enumeration
    /// (`set_data` traffic): total membership entries across all sets.
    pub arena_cells: u64,
    /// Subset-intervals with exactly one active message, scheduled without
    /// enumeration or an LP.
    pub singleton_fast_paths: u64,
}

/// A timed transmission of one **link-feasible set**: every listed message
/// transmits simultaneously for `[start, start + duration]` (paper Def. 5.5
/// — no two members share a link, so all paths are simultaneously clear).
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// The link-feasible set, ascending message ids.
    pub messages: Vec<MessageId>,
    /// Absolute start within the period frame, µs.
    pub start: f64,
    /// Transmission time, µs.
    pub duration: f64,
}

impl Slice {
    /// Absolute end of the slice, µs.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// The schedule of one interval: slices laid end to end from the interval
/// start (per related subset; slices of link-disjoint subsets may overlap in
/// time).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSchedule {
    /// Interval index into [`Intervals`].
    pub interval: usize,
    /// Timed link-feasible-set transmissions.
    pub slices: Vec<Slice>,
}

/// Solves **interval scheduling** (paper §5.3) for every interval: preemptive
/// scheduling of messages that each require *all* their links simultaneously,
/// following the \[BDW86\] formulation.
///
/// Per interval and related subset, the messages with positive allocation
/// form a conflict graph (edge = shared link). Every independent set is a
/// *link-feasible set* `Q^f_j`; a variable `y_j` gives the time the whole
/// set transmits simultaneously, and the LP minimizes `Σ y_j` subject to
/// each message receiving exactly its allocated time. If the minimum exceeds
/// the interval length the interval is unschedulable.
///
/// # Errors
///
/// * [`CompileError::IntervalUnschedulable`] — minimal schedule longer than
///   the interval;
/// * [`CompileError::TooManyFeasibleSets`] — independent-set enumeration
///   exceeded `max_sets`;
/// * [`CompileError::Lp`] — solver trouble.
pub fn schedule_intervals(
    assignment: &PathAssignment,
    allocation: &IntervalAllocation,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    max_sets: usize,
) -> Result<Vec<IntervalSchedule>, CompileError> {
    schedule_intervals_guarded(assignment, allocation, intervals, subsets, max_sets, 0.0)
}

/// [`schedule_intervals`] with a **guard time** before every slice: the
/// paper's §7 clock-skew margin ("a time interval equal to or greater than
/// twice the maximum difference between two clocks could be allowed to
/// elapse before starting transmission"). Each slice is preceded by
/// `guard` µs of reserved idle time on its links so every CP along the path
/// has provably switched before data flows.
///
/// # Errors
///
/// As [`schedule_intervals`]; guards count toward the interval-length
/// budget, so a positive guard can make an otherwise schedulable interval
/// fail.
pub fn schedule_intervals_guarded(
    assignment: &PathAssignment,
    allocation: &IntervalAllocation,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    max_sets: usize,
    guard: f64,
) -> Result<Vec<IntervalSchedule>, CompileError> {
    let mut stats = IntervalSchedStats::default();
    schedule_intervals_guarded_stats(
        assignment, allocation, intervals, subsets, max_sets, guard, &mut stats,
    )
}

/// [`schedule_intervals_guarded`] that additionally accumulates work
/// counters into `stats`. On error, `stats` reflects the work done up to
/// the failure.
///
/// # Errors
///
/// As [`schedule_intervals_guarded`].
#[allow(clippy::too_many_arguments)]
pub fn schedule_intervals_guarded_stats(
    assignment: &PathAssignment,
    allocation: &IntervalAllocation,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    max_sets: usize,
    guard: f64,
    stats: &mut IntervalSchedStats,
) -> Result<Vec<IntervalSchedule>, CompileError> {
    // The conflict structure of a subset depends only on the path
    // assignment, so densify each subset's link-conflict matrix once here
    // instead of per (interval, subset) pair.
    let conflicts: Vec<ConflictMatrix> = subsets
        .iter()
        .map(|s| ConflictMatrix::new(assignment, s))
        .collect();
    let mut scratch = SubsetScratch::default();

    // One row-major sweep over the allocation replaces the dense
    // K × subsets × members probing: collect, per interval, the active
    // positions of each subset. Allocation rows are zero outside a
    // message's few active intervals, so the per-interval lists stay
    // sparse, and (interval, subset) pairs without traffic are never
    // visited below. Subset and position order within each interval match
    // the dense scan's ascending iteration exactly.
    let mut active_at: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); intervals.len()];
    for (si, subset) in subsets.iter().enumerate() {
        for (p, &m) in subset.iter().enumerate() {
            for (k, &a) in allocation.row(m).iter().enumerate() {
                if a > EPS {
                    match active_at[k].last_mut() {
                        Some((s, positions)) if *s == si => positions.push(p),
                        _ => active_at[k].push((si, vec![p])),
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (k, active_subsets) in active_at.iter().enumerate() {
        let mut slices = Vec::new();
        for (si, positions) in active_subsets {
            scratch.active.clear();
            scratch.active.extend_from_slice(positions);
            schedule_subset_interval(
                allocation,
                intervals,
                &subsets[*si],
                &conflicts[*si],
                &mut scratch,
                k,
                max_sets,
                guard,
                &mut slices,
                stats,
            )?;
        }
        if !slices.is_empty() {
            slices.sort_by(|a, b| {
                a.start
                    .total_cmp(&b.start)
                    .then_with(|| a.messages.cmp(&b.messages))
            });
            out.push(IntervalSchedule {
                interval: k,
                slices,
            });
        }
    }
    Ok(out)
}

/// Pairwise link-conflict matrix over one related subset's positions,
/// stored as packed `u64` bitset rows: bit `j` of row `i` is set when
/// messages `i` and `j` share a link. The row layout lets the independent-
/// set DFS keep one *forbidden* mask per depth (the union of the stack
/// members' rows) and test a candidate with a single bit probe instead of
/// scanning the stack.
struct ConflictMatrix {
    /// `u64` words per row (`⌈n/64⌉`).
    words: usize,
    rows: Vec<u64>,
}

impl ConflictMatrix {
    fn new(assignment: &PathAssignment, subset: &[MessageId]) -> Self {
        let n = subset.len();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        for i in 0..n {
            for j in i + 1..n {
                let clash = assignment
                    .links(subset[i])
                    .iter()
                    .any(|l| assignment.links(subset[j]).contains(l));
                if clash {
                    rows[i * words + j / 64] |= 1u64 << (j % 64);
                    rows[j * words + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        ConflictMatrix { words, rows }
    }

    /// Bitset row of position `i`.
    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words..(i + 1) * self.words]
    }
}

/// Reusable buffers for one subset-interval scheduling call: the active
/// position list, the DFS stack, the flat set arena (member positions +
/// per-set end offsets — one growing allocation instead of a `Vec` clone
/// per enumerated set), and the per-message set-membership lists the LP
/// constraints are built from.
#[derive(Default)]
struct SubsetScratch {
    /// Subset positions with positive allocation in the current interval.
    active: Vec<usize>,
    stack: Vec<usize>,
    /// Per-depth forbidden masks for the DFS: level `d` holds the union of
    /// the conflict rows of the first `d` stack members, `words` `u64`s per
    /// level.
    forbidden: Vec<u64>,
    set_data: Vec<usize>,
    set_ends: Vec<usize>,
    member_sets: Vec<Vec<usize>>,
}

impl SubsetScratch {
    fn clear_sets(&mut self) {
        self.stack.clear();
        self.set_data.clear();
        self.set_ends.clear();
        for m in &mut self.member_sets {
            m.clear();
        }
    }

    fn num_sets(&self) -> usize {
        self.set_ends.len()
    }

    /// Members (as `active` indices) of set `j`.
    fn set(&self, j: usize) -> &[usize] {
        let start = if j == 0 { 0 } else { self.set_ends[j - 1] };
        &self.set_data[start..self.set_ends[j]]
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_subset_interval(
    allocation: &IntervalAllocation,
    intervals: &Intervals,
    subset: &[MessageId],
    conflict: &ConflictMatrix,
    scratch: &mut SubsetScratch,
    k: usize,
    max_sets: usize,
    guard: f64,
    slices: &mut Vec<Slice>,
    stats: &mut IntervalSchedStats,
) -> Result<(), CompileError> {
    let (start, _) = intervals.bounds(k);
    let available = intervals.length(k);
    let n = scratch.active.len();

    // Fast path: one message.
    if n == 1 {
        stats.singleton_fast_paths += 1;
        let m = subset[scratch.active[0]];
        let need = allocation.allocated(m, k) + guard;
        if need > available + EPS {
            return Err(CompileError::IntervalUnschedulable {
                interval: k,
                required: need,
                available,
            });
        }
        slices.push(Slice {
            messages: vec![m],
            start: start + guard,
            duration: need - guard,
        });
        return Ok(());
    }

    // Enumerate all non-empty independent sets (the link-feasible sets)
    // into the flat arena, recording set membership per message as we go.
    scratch.clear_sets();
    if scratch.member_sets.len() < n {
        scratch.member_sets.resize_with(n, Vec::new);
    }
    let full = enumerate_independent(conflict, scratch, max_sets);
    if !full {
        return Err(CompileError::TooManyFeasibleSets {
            interval: k,
            cap: max_sets,
        });
    }

    // LP: minimize Σ y_j with per-message coverage equalities.
    let num_sets = scratch.num_sets();
    stats.feasible_sets += num_sets as u64;
    stats.arena_cells += scratch.set_data.len() as u64;
    let mut lp = Problem::minimize();
    let ys: Vec<VarId> = (0..num_sets).map(|_| lp.add_var(1.0)).collect();
    let mut terms: Vec<(VarId, f64)> = Vec::new();
    for (ai, &pos) in scratch.active.iter().enumerate() {
        terms.clear();
        terms.extend(scratch.member_sets[ai].iter().map(|&j| (ys[j], 1.0)));
        lp.add_constraint(&terms, Relation::Eq, allocation.allocated(subset[pos], k))
            .expect("variables are registered");
    }
    stats.lp_solves += 1;
    let sol = {
        let (sol, solve_stats) = lp.solve_with_stats().map_err(CompileError::Lp)?;
        stats.lp.merge(&solve_stats);
        sol
    };
    let used_slices = (0..num_sets).filter(|&j| sol.value(ys[j]) > EPS).count();
    let required = sol.objective() + guard * used_slices as f64;
    if required > available + EPS {
        return Err(CompileError::IntervalUnschedulable {
            interval: k,
            required,
            available,
        });
    }

    // Materialize slices back-to-back from the interval start, each
    // preceded by its guard gap.
    let mut cursor = start;
    for (j, &yv) in ys.iter().enumerate() {
        let y = sol.value(yv);
        if y > EPS {
            cursor += guard;
            slices.push(Slice {
                messages: scratch
                    .set(j)
                    .iter()
                    .map(|&ai| subset[scratch.active[ai]])
                    .collect(),
                start: cursor,
                duration: y,
            });
            cursor += y;
        }
    }
    Ok(())
}

/// Greedy alternative to the \[BDW86\] LP: repeatedly transmit a maximal
/// link-compatible set of the messages with remaining allocation, longest
/// remaining first, until every allocation is exhausted.
///
/// Always *correct* (slices realize the allocation, no set shares a link)
/// but not always *optimal*: the LP can finish an interval the greedy
/// packing cannot. The compile pipeline uses it when
/// [`crate::CompileConfig::greedy_interval_scheduling`] is set — an
/// ablation of the paper's choice of an exact formulation.
///
/// # Errors
///
/// [`CompileError::IntervalUnschedulable`] when the greedy packing exceeds
/// an interval's length.
pub fn schedule_intervals_greedy(
    assignment: &PathAssignment,
    allocation: &IntervalAllocation,
    intervals: &Intervals,
    subsets: &[Vec<MessageId>],
    guard: f64,
) -> Result<Vec<IntervalSchedule>, CompileError> {
    let mut out = Vec::new();
    for k in 0..intervals.len() {
        let mut slices = Vec::new();
        for subset in subsets {
            let mut remaining: Vec<(MessageId, f64)> = subset
                .iter()
                .copied()
                .filter_map(|m| {
                    let a = allocation.allocated(m, k);
                    (a > EPS).then_some((m, a))
                })
                .collect();
            if remaining.is_empty() {
                continue;
            }
            let (start, _) = intervals.bounds(k);
            let available = intervals.length(k);
            let mut cursor = start;
            while !remaining.is_empty() {
                // Longest-remaining-first maximal compatible set.
                remaining.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                let mut set: Vec<usize> = Vec::new();
                for i in 0..remaining.len() {
                    let conflicts = set.iter().any(|&j| {
                        assignment
                            .links(remaining[i].0)
                            .iter()
                            .any(|l| assignment.links(remaining[j].0).contains(l))
                    });
                    if !conflicts {
                        set.push(i);
                    }
                }
                // Run the set until its shortest member exhausts.
                let quantum = set
                    .iter()
                    .map(|&i| remaining[i].1)
                    .fold(f64::INFINITY, f64::min);
                cursor += guard;
                slices.push(Slice {
                    messages: {
                        let mut m: Vec<MessageId> = set.iter().map(|&i| remaining[i].0).collect();
                        m.sort();
                        m
                    },
                    start: cursor,
                    duration: quantum,
                });
                cursor += quantum;
                if cursor - start > available + EPS {
                    return Err(CompileError::IntervalUnschedulable {
                        interval: k,
                        required: cursor - start,
                        available,
                    });
                }
                for &i in &set {
                    remaining[i].1 -= quantum;
                }
                remaining.retain(|&(_, r)| r > EPS);
            }
        }
        if !slices.is_empty() {
            slices.sort_by(|a, b| {
                a.start
                    .total_cmp(&b.start)
                    .then_with(|| a.messages.cmp(&b.messages))
            });
            out.push(IntervalSchedule {
                interval: k,
                slices,
            });
        }
    }
    Ok(out)
}

/// Depth-first enumeration of the independent sets of the active messages,
/// in lexicographic order of member positions, into the flat arena in
/// `scratch` (no per-set allocation). Returns `false` as soon as the set
/// count reaches `cap` — the enumeration aborts immediately rather than
/// unwinding through every level.
fn enumerate_independent(
    conflict: &ConflictMatrix,
    scratch: &mut SubsetScratch,
    cap: usize,
) -> bool {
    let words = conflict.words;
    scratch.forbidden.clear();
    scratch
        .forbidden
        .resize((scratch.active.len() + 1) * words, 0);
    enumerate_rec(conflict, scratch, 0, cap)
}

fn enumerate_rec(
    conflict: &ConflictMatrix,
    scratch: &mut SubsetScratch,
    from: usize,
    cap: usize,
) -> bool {
    let words = conflict.words;
    let depth = scratch.stack.len();
    for vi in from..scratch.active.len() {
        let v = scratch.active[vi];
        if scratch.forbidden[depth * words + v / 64] >> (v % 64) & 1 != 0 {
            continue;
        }
        // Extend the forbidden mask into the next level: everything the
        // stack forbids plus everything `v` conflicts with.
        let (cur_levels, next_level) = scratch.forbidden.split_at_mut((depth + 1) * words);
        let cur = &cur_levels[depth * words..];
        let row = conflict.row(v);
        for w in 0..words {
            next_level[w] = cur[w] | row[w];
        }
        scratch.stack.push(vi);
        let set_id = scratch.set_ends.len();
        for si in 0..scratch.stack.len() {
            let ai = scratch.stack[si];
            scratch.set_data.push(ai);
            scratch.member_sets[ai].push(set_id);
        }
        scratch.set_ends.push(scratch.set_data.len());
        if scratch.num_sets() >= cap || !enumerate_rec(conflict, scratch, vi + 1, cap) {
            return false;
        }
        scratch.stack.pop();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_topology::{NodeId, Path};

    /// Builds a PathAssignment over a 4-node ring with hand-picked paths.
    fn ring_assignment(paths: Vec<Vec<usize>>) -> (sr_topology::Torus, PathAssignment) {
        let topo = sr_topology::Torus::new(&[4]).unwrap();
        let paths = paths
            .into_iter()
            .map(|ns| Path::new(ns.into_iter().map(NodeId).collect()))
            .collect();
        let pa = PathAssignment::new(paths, &topo);
        (topo, pa)
    }

    fn uniform_alloc(n: usize, k_count: usize, k: usize, amount: f64) -> IntervalAllocation {
        let mut p = vec![vec![0.0; k_count]; n];
        for row in &mut p {
            row[k] = amount;
        }
        IntervalAllocation::from_matrix(p)
    }

    fn one_interval(len: f64) -> Intervals {
        // A single interval [0, len].
        Intervals::from_endpoints(vec![0.0, len])
    }

    #[test]
    fn conflicting_messages_serialize() {
        // Two messages over the same link 0-1.
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![1, 0]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(2, 1, 0, 4.0);
        let subsets = vec![vec![MessageId(0), MessageId(1)]];
        let scheds = schedule_intervals(&pa, &alloc, &intervals, &subsets, 10_000).unwrap();
        assert_eq!(scheds.len(), 1);
        let slices = &scheds[0].slices;
        // Total time 8 (serialized), no slice containing both.
        let total: f64 = slices.iter().map(|s| s.duration).sum();
        assert!((total - 8.0).abs() < 1e-6, "slices {slices:?}");
        assert!(slices.iter().all(|s| s.messages.len() == 1));
        // Slices are disjoint in time.
        for w in slices.windows(2) {
            assert!(w[1].start >= w[0].end() - 1e-9);
        }
    }

    #[test]
    fn disjoint_messages_overlap() {
        // Messages on opposite sides of the ring: links 0-1 and 2-3.
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![2, 3]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(2, 1, 0, 6.0);
        let subsets = vec![vec![MessageId(0), MessageId(1)]];
        let scheds = schedule_intervals(&pa, &alloc, &intervals, &subsets, 10_000).unwrap();
        let slices = &scheds[0].slices;
        // 6+6 fits in 10 only by transmitting together: minimal length 6.
        let makespan = slices.iter().map(Slice::end).fold(0.0f64, f64::max);
        assert!(makespan <= 6.0 + 1e-6, "slices {slices:?}");
        assert!(slices.iter().any(|s| s.messages.len() == 2));
    }

    #[test]
    fn unschedulable_interval_detected() {
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![1, 2]]);
        // Both messages share node 1?? Links 0-1 and 1-2 are different
        // links; conflict only when sharing a LINK. Use same link instead.
        let (_topo, pa2) = ring_assignment(vec![vec![0, 1], vec![0, 1]]);
        let _ = pa;
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(2, 1, 0, 6.0); // 12 serialized > 10
        let subsets = vec![vec![MessageId(0), MessageId(1)]];
        let err = schedule_intervals(&pa2, &alloc, &intervals, &subsets, 10_000).unwrap_err();
        match err {
            CompileError::IntervalUnschedulable {
                required,
                available,
                ..
            } => {
                assert!((required - 12.0).abs() < 1e-6);
                assert!((available - 10.0).abs() < 1e-6);
            }
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn three_messages_pairwise_structure() {
        // m0 uses links {0-1}, m1 uses {1-2}, m2 uses {0-1, 1-2}: m0 and m1
        // are compatible; m2 conflicts with both.
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(3, 1, 0, 4.0);
        let subsets = vec![vec![MessageId(0), MessageId(1), MessageId(2)]];
        let scheds = schedule_intervals(&pa, &alloc, &intervals, &subsets, 10_000).unwrap();
        let slices = &scheds[0].slices;
        // Optimal: {m0,m1} together 4, then m2 alone 4 -> makespan 8.
        let makespan = slices.iter().map(Slice::end).fold(0.0f64, f64::max);
        assert!(makespan <= 8.0 + 1e-6, "slices {slices:?}");
        // m2 never scheduled with m0 or m1.
        for s in slices {
            if s.messages.contains(&MessageId(2)) {
                assert_eq!(s.messages.len(), 1);
            }
        }
    }

    #[test]
    fn greedy_realizes_allocation_and_never_beats_lp() {
        // m0 {L01}, m1 {L12}, m2 {L01, L12}: LP optimum interleaves.
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(3, 1, 0, 3.0);
        let subsets = vec![vec![MessageId(0), MessageId(1), MessageId(2)]];
        let lp = schedule_intervals(&pa, &alloc, &intervals, &subsets, 10_000).unwrap();
        let greedy = schedule_intervals_greedy(&pa, &alloc, &intervals, &subsets, 0.0).unwrap();
        let makespan = |s: &[IntervalSchedule]| {
            s.iter()
                .flat_map(|is| is.slices.iter())
                .map(Slice::end)
                .fold(0.0f64, f64::max)
        };
        assert!(makespan(&greedy) >= makespan(&lp) - 1e-9);
        // Both realize exactly 3.0 per message.
        for sched in [&lp, &greedy] {
            let mut sums = [0.0f64; 3];
            for is in sched.iter() {
                for sl in &is.slices {
                    for m in &sl.messages {
                        sums[m.index()] += sl.duration;
                    }
                }
            }
            for s in sums {
                assert!((s - 3.0).abs() < 1e-6, "{sums:?}");
            }
        }
        // Greedy slices never co-schedule conflicting messages.
        for is in &greedy {
            for sl in &is.slices {
                for (a, &ma) in sl.messages.iter().enumerate() {
                    for &mb in sl.messages.iter().skip(a + 1) {
                        assert!(pa.links(ma).iter().all(|l| !pa.links(mb).contains(l)));
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_detects_overflow() {
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![0, 1]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(2, 1, 0, 6.0); // 12 serialized > 10
        let subsets = vec![vec![MessageId(0), MessageId(1)]];
        let err = schedule_intervals_greedy(&pa, &alloc, &intervals, &subsets, 0.0).unwrap_err();
        assert!(matches!(err, CompileError::IntervalUnschedulable { .. }));
    }

    #[test]
    fn set_cap_triggers_error() {
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![2, 3], vec![1, 2]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(3, 1, 0, 1.0);
        let subsets = vec![vec![MessageId(0), MessageId(1), MessageId(2)]];
        let err = schedule_intervals(&pa, &alloc, &intervals, &subsets, 3).unwrap_err();
        assert!(matches!(err, CompileError::TooManyFeasibleSets { .. }));
    }

    #[test]
    fn stats_count_sets_and_fast_paths() {
        // Two conflicting messages -> one LP over 2 singleton feasible sets;
        // plus one lone message in its own subset -> singleton fast path.
        let (_topo, pa) = ring_assignment(vec![vec![0, 1], vec![1, 0], vec![2, 3]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(3, 1, 0, 2.0);
        let subsets = vec![vec![MessageId(0), MessageId(1)], vec![MessageId(2)]];
        let mut stats = IntervalSchedStats::default();
        let scheds = schedule_intervals_guarded_stats(
            &pa, &alloc, &intervals, &subsets, 10_000, 0.0, &mut stats,
        )
        .unwrap();
        assert_eq!(scheds.len(), 1);
        assert_eq!(stats.singleton_fast_paths, 1);
        assert_eq!(stats.lp_solves, 1);
        // Sets over {m0, m1} (mutually conflicting): {m0}, {m1}.
        assert_eq!(stats.feasible_sets, 2);
        assert_eq!(stats.arena_cells, 2);
        assert!(stats.lp.pivots > 0);
    }

    #[test]
    fn empty_allocation_produces_no_schedules() {
        let (_topo, pa) = ring_assignment(vec![vec![0, 1]]);
        let intervals = one_interval(10.0);
        let alloc = uniform_alloc(1, 1, 0, 0.0);
        let subsets = vec![vec![MessageId(0)]];
        let scheds = schedule_intervals(&pa, &alloc, &intervals, &subsets, 100).unwrap();
        assert!(scheds.is_empty());
    }
}
