use sr_tfg::{MessageId, TimeBounds};
use sr_topology::LinkId;

use crate::{ActivityMatrix, Intervals, PathAssignment};

/// Where the peak utilization sits: an overloaded link over the whole frame,
/// or a *hot-spot* — a (link, interval) pair crowded by no-slack messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hotspot {
    /// Peak is a link's net utilization `U^l_j` (paper Def. 5.1).
    Link(LinkId),
    /// Peak is a spot utilization `U^s_jk` (paper Def. 5.2).
    Spot(LinkId, usize),
    /// Peak is a Hall-bound group overload on a link (see
    /// [`UtilizationMap::hall_peak`]).
    Group(LinkId),
}

/// Link and spot utilizations for one path assignment (paper §5.1).
///
/// * **Link utilization** `U^l_j`: total transmission time of messages
///   routed over `L_j`, divided by the total length of intervals in which at
///   least one of them is active. `U^l_j ≤ 1` is necessary for the link to
///   carry its traffic.
/// * **Spot utilization** `U^s_jk`: the number of *no-slack* messages using
///   `L_j` during `A_k`. Two no-slack messages on one link in one interval
///   is an unresolvable hot-spot, so `U^s_jk ≤ 1` is also necessary.
///
/// The **peak** `U` is the maximum over both families; `AssignPaths`
/// minimizes it, and scheduled routing can only be attempted when `U ≤ 1`.
#[derive(Debug, Clone)]
pub struct UtilizationMap {
    link_util: Vec<f64>,
    /// `(link, interval) -> no-slack count`, only entries > 0.
    spots: Vec<(LinkId, usize, usize)>,
    peak_value: f64,
    peak_at: Option<Hotspot>,
    hall_peak: f64,
    hall_at: Option<LinkId>,
}

impl UtilizationMap {
    /// Computes all utilizations for `assignment` under the given time
    /// bounds.
    pub fn compute(
        assignment: &PathAssignment,
        bounds: &TimeBounds,
        activity: &ActivityMatrix,
        intervals: &Intervals,
        num_links: usize,
    ) -> Self {
        let k_count = intervals.len();
        let mut tx_sum = vec![0.0f64; num_links];
        let mut interval_used = vec![vec![false; k_count]; num_links];
        let mut spot_count = vec![vec![0usize; k_count]; num_links];
        let mut per_link_msgs: Vec<Vec<usize>> = vec![Vec::new(); num_links];

        for i in 0..assignment.len() {
            let m = MessageId(i);
            let w = bounds.window(m);
            let no_slack = w.is_no_slack();
            let actives = activity.active_intervals(m);
            for &l in assignment.links(m) {
                tx_sum[l.index()] += w.duration();
                per_link_msgs[l.index()].push(i);
                for &k in &actives {
                    interval_used[l.index()][k] = true;
                    if no_slack {
                        spot_count[l.index()][k] += 1;
                    }
                }
            }
        }

        let mut link_util = vec![0.0f64; num_links];
        let mut peak_value = 0.0f64;
        let mut peak_at = None;
        let mut spots = Vec::new();

        for l in 0..num_links {
            if tx_sum[l] <= 0.0 {
                continue;
            }
            let denom: f64 = (0..k_count)
                .filter(|&k| interval_used[l][k])
                .map(|k| intervals.length(k))
                .sum();
            let u = if denom > 0.0 {
                tx_sum[l] / denom
            } else {
                f64::INFINITY
            };
            link_util[l] = u;
            if u > peak_value {
                peak_value = u;
                peak_at = Some(Hotspot::Link(LinkId(l)));
            }
            #[allow(clippy::needless_range_loop)] // `k` is also the interval index
            for k in 0..k_count {
                let c = spot_count[l][k];
                if c > 0 {
                    spots.push((LinkId(l), k, c));
                    if c as f64 > peak_value {
                        peak_value = c as f64;
                        peak_at = Some(Hotspot::Spot(LinkId(l), k));
                    }
                }
            }
        }

        // Hall-type group bound: for each link, for small unions S of the
        // distinct activity signatures found on it, the messages active only
        // inside S demand at most |S| of link time. Def. 5.1's union
        // denominator cannot see such sub-window overloads (the paper notes
        // its conditions are only necessary); this bound catches the common
        // case of same-release messages funneling into one link.
        let mut hall_peak = 0.0f64;
        let mut hall_at = None;
        for (l, msgs) in per_link_msgs.iter().enumerate() {
            if msgs.len() < 2 {
                continue;
            }
            let sigs: Vec<Vec<usize>> = {
                let mut s: Vec<Vec<usize>> = msgs
                    .iter()
                    .map(|&i| activity.active_intervals(MessageId(i)))
                    .collect();
                s.sort();
                s.dedup();
                s
            };
            let mut candidates: Vec<Vec<usize>> = sigs.clone();
            for a in 0..sigs.len() {
                for b in (a + 1)..sigs.len() {
                    let mut u = sigs[a].clone();
                    u.extend_from_slice(&sigs[b]);
                    u.sort_unstable();
                    u.dedup();
                    candidates.push(u);
                }
            }
            for s in candidates {
                let len: f64 = s.iter().map(|&k| intervals.length(k)).sum();
                if len <= 0.0 {
                    continue;
                }
                let demand: f64 = msgs
                    .iter()
                    .filter(|&&i| {
                        activity
                            .active_intervals(MessageId(i))
                            .iter()
                            .all(|k| s.contains(k))
                    })
                    .map(|&i| bounds.window(MessageId(i)).duration())
                    .sum();
                let ratio = demand / len;
                if ratio > hall_peak {
                    hall_peak = ratio;
                    hall_at = Some(LinkId(l));
                }
            }
        }

        UtilizationMap {
            link_util,
            spots,
            peak_value,
            peak_at,
            hall_peak,
            hall_at,
        }
    }

    /// The sharpest Hall-type group bound found (≥ every `U^l_j`): the
    /// maximum, over links and small unions `S` of activity signatures, of
    /// the demand of messages confined to `S` divided by `|S|`.
    ///
    /// A value above 1 proves message–interval allocation will fail even
    /// when the paper's `U ≤ 1`; `AssignPaths` therefore minimizes
    /// [`UtilizationMap::effective_peak`] while figures report the paper's
    /// [`UtilizationMap::peak`].
    pub fn hall_peak(&self) -> f64 {
        self.hall_peak
    }

    /// `max(peak, hall_peak)` — the quantity the path-assignment heuristic
    /// actually minimizes.
    pub fn effective_peak(&self) -> f64 {
        self.peak_value.max(self.hall_peak)
    }

    /// Where the effective peak occurs.
    pub fn effective_location(&self) -> Option<Hotspot> {
        if self.hall_peak > self.peak_value {
            self.hall_at.map(Hotspot::Group)
        } else {
            self.peak_at
        }
    }

    /// `U^l_j` for a link (0 for unused links).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> f64 {
        self.link_util[link.index()]
    }

    /// `U^s_jk` for a (link, interval) pair.
    pub fn spot(&self, link: LinkId, k: usize) -> usize {
        self.spots
            .iter()
            .find(|&&(l, kk, _)| l == link && kk == k)
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    }

    /// All hot-spot entries `(link, interval, no-slack count)` with count
    /// ≥ 1.
    pub fn spots(&self) -> &[(LinkId, usize, usize)] {
        &self.spots
    }

    /// The peak utilization `U` (0 when no message uses any link).
    pub fn peak(&self) -> f64 {
        self.peak_value
    }

    /// Where the peak occurs (`None` when the network is unused).
    pub fn peak_location(&self) -> Option<Hotspot> {
        self.peak_at
    }

    /// `true` when scheduled routing may be attempted (`U ≤ 1 + tol`).
    pub fn is_schedulable(&self, tol: f64) -> bool {
        self.peak_value <= 1.0 + tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId, Topology};

    /// Two messages forced over the same single link.
    fn shared_link_setup(
        period: f64,
        policy: WindowPolicy,
    ) -> (GeneralizedHypercube, UtilizationMap, Intervals) {
        let topo = GeneralizedHypercube::binary(1).unwrap(); // 2 nodes, 1 link
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("a", 500);
        let t1 = b.task("b", 500);
        let t2 = b.task("c", 500);
        b.message("m0", t0, t1, 640).unwrap(); // 10 µs at B=64
        b.message("m1", t1, t2, 640).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // exec 50 = τ_c
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, period, policy).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = crate::PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let u = UtilizationMap::compute(&pa, &bounds, &activity, &intervals, topo.num_links());
        (topo, u, intervals)
    }

    #[test]
    fn max_load_shared_link_utilization() {
        // Period 50 = τ_c: both windows cover the frame; the one link carries
        // 20 µs of traffic over a 50 µs frame -> U = 0.4.
        let (_, u, _) = shared_link_setup(50.0, WindowPolicy::LongestTask);
        assert!(
            (u.link(LinkId(0)) - 0.4).abs() < 1e-9,
            "got {}",
            u.link(LinkId(0))
        );
        assert!((u.peak() - 0.4).abs() < 1e-9);
        assert_eq!(u.peak_location(), Some(Hotspot::Link(LinkId(0))));
        assert!(u.is_schedulable(0.0));
    }

    #[test]
    fn tight_windows_create_hotspots() {
        // Tight policy: windows have zero slack. With period 100, the two
        // messages' windows are [50,60] and [110->10, 20]; they do not
        // overlap, so each spot has exactly one no-slack message.
        let (_, u, _) = shared_link_setup(100.0, WindowPolicy::Tight);
        assert!(!u.spots().is_empty());
        assert!(u.spots().iter().all(|&(_, _, c)| c == 1));
        assert!((u.peak() - 1.0).abs() < 1e-9);
        assert!(u.is_schedulable(1e-9));
    }

    #[test]
    fn overlapping_no_slack_messages_exceed_capacity() {
        // Force both tight windows to overlap by pinning the period so the
        // second release folds onto the first window: releases at 50 and
        // 110; period 60 folds them to 50 and 50.
        let (_, u, _) = shared_link_setup(60.0, WindowPolicy::Tight);
        // Both no-slack windows are [50,60]: spot count 2, and the link
        // ratio over that 10 µs interval is also 20/10 = 2 -> unschedulable
        // whichever location is reported.
        assert!(u.peak() >= 2.0 - 1e-9, "peak {}", u.peak());
        assert!(u.peak_location().is_some());
        assert_eq!(u.spot(LinkId(0), u.spots()[0].1), 2);
        assert!(!u.is_schedulable(1e-6));
    }

    #[test]
    fn unused_network_has_zero_peak() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("a", 100);
        let t1 = b.task("b", 100);
        b.message("m", t0, t1, 64).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        // Co-located: message never enters the network.
        let alloc = Allocation::new(vec![NodeId(3), NodeId(3)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 20.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = crate::PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let u = UtilizationMap::compute(&pa, &bounds, &activity, &intervals, topo.num_links());
        assert_eq!(u.peak(), 0.0);
        assert_eq!(u.peak_location(), None);
        assert!(u.is_schedulable(0.0));
    }
}
