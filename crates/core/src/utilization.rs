use sr_tfg::{MessageId, TimeBounds};
use sr_topology::LinkId;

use crate::{ActivityMatrix, Intervals, PathAssignment};

/// Where the peak utilization sits: an overloaded link over the whole frame,
/// or a *hot-spot* — a (link, interval) pair crowded by no-slack messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hotspot {
    /// Peak is a link's net utilization `U^l_j` (paper Def. 5.1).
    Link(LinkId),
    /// Peak is a spot utilization `U^s_jk` (paper Def. 5.2).
    Spot(LinkId, usize),
    /// Peak is a Hall-bound group overload on a link (see
    /// [`UtilizationMap::hall_peak`]).
    Group(LinkId),
}

/// Link and spot utilizations for one path assignment (paper §5.1).
///
/// * **Link utilization** `U^l_j`: total transmission time of messages
///   routed over `L_j`, divided by the total length of intervals in which at
///   least one of them is active. `U^l_j ≤ 1` is necessary for the link to
///   carry its traffic.
/// * **Spot utilization** `U^s_jk`: the number of *no-slack* messages using
///   `L_j` during `A_k`. Two no-slack messages on one link in one interval
///   is an unresolvable hot-spot, so `U^s_jk ≤ 1` is also necessary.
///
/// The **peak** `U` is the maximum over both families; `AssignPaths`
/// minimizes it, and scheduled routing can only be attempted when `U ≤ 1`.
#[derive(Debug, Clone)]
pub struct UtilizationMap {
    link_util: Vec<f64>,
    /// `(link, interval) -> no-slack count`, only entries > 0.
    spots: Vec<(LinkId, usize, usize)>,
    peak_value: f64,
    peak_at: Option<Hotspot>,
    hall_peak: f64,
    hall_at: Option<LinkId>,
}

/// Per-message inputs of the utilization computation, gathered once so the
/// per-link passes (full and incremental alike) read plain arrays.
struct MsgInputs {
    durations: Vec<f64>,
    no_slack: Vec<bool>,
    actives: Vec<Vec<usize>>,
    /// Activity signatures as interval bitmasks — populated only when the
    /// frame has at most 64 intervals (the common case), enabling the
    /// word-parallel Hall-bound path.
    masks: Option<Vec<u64>>,
}

impl MsgInputs {
    fn new(n: usize, bounds: &TimeBounds, activity: &ActivityMatrix, k_count: usize) -> Self {
        let mut durations = Vec::with_capacity(n);
        let mut no_slack = Vec::with_capacity(n);
        let mut actives = Vec::with_capacity(n);
        for i in 0..n {
            let m = MessageId(i);
            let w = bounds.window(m);
            durations.push(w.duration());
            no_slack.push(w.is_no_slack());
            actives.push(activity.active_intervals(m));
        }
        let masks = (k_count <= 64).then(|| {
            actives
                .iter()
                .map(|ks| ks.iter().fold(0u64, |acc, &k| acc | (1u64 << k)))
                .collect()
        });
        MsgInputs {
            durations,
            no_slack,
            actives,
            masks,
        }
    }
}

/// Reusable per-link work buffers (one interval slot each).
struct LinkScratch {
    used: Vec<bool>,
    spots: Vec<usize>,
    /// Intervals marked by the current call, ascending after
    /// [`link_figures`] returns. Cleared lazily at the next call, so one
    /// link costs O(its active entries) rather than O(K) — and links with
    /// no traffic are free.
    marked: Vec<usize>,
}

impl LinkScratch {
    fn new(k_count: usize) -> Self {
        LinkScratch {
            used: vec![false; k_count],
            spots: vec![0; k_count],
            marked: Vec::new(),
        }
    }
}

/// One link's derived quantities. `spots` lives in the caller's scratch.
struct LinkFigures {
    tx: f64,
    util: f64,
    hall: f64,
}

/// Computes one link's utilization figures from its (ascending) message
/// list. This is the single source of truth for per-link arithmetic: the
/// full [`UtilizationMap::compute`] and the incremental [`UtilEval`] both
/// call it, so their floating-point results are bitwise identical by
/// construction (contributions always accumulate in ascending message
/// order).
fn link_figures(
    msgs: &[usize],
    inputs: &MsgInputs,
    intervals: &Intervals,
    scratch: &mut LinkScratch,
) -> LinkFigures {
    for &k in &scratch.marked {
        scratch.used[k] = false;
        scratch.spots[k] = 0;
    }
    scratch.marked.clear();
    let mut tx = 0.0f64;
    for &i in msgs {
        tx += inputs.durations[i];
        let no_slack = inputs.no_slack[i];
        for &k in &inputs.actives[i] {
            if !scratch.used[k] {
                scratch.used[k] = true;
                scratch.marked.push(k);
            }
            if no_slack {
                scratch.spots[k] += 1;
            }
        }
    }
    scratch.marked.sort_unstable();
    let util = if tx <= 0.0 {
        0.0
    } else {
        // Ascending-interval summation, exactly as a dense 0..K filter
        // scan would accumulate it.
        let denom: f64 = scratch.marked.iter().map(|&k| intervals.length(k)).sum();
        if denom > 0.0 {
            tx / denom
        } else {
            f64::INFINITY
        }
    };
    LinkFigures {
        tx,
        util,
        hall: hall_bound(msgs, inputs, intervals),
    }
}

/// Hall-type group bound for one link: for small unions `S` of the distinct
/// activity signatures found on it, the messages active only inside `S`
/// demand at most `|S|` of link time. Def. 5.1's union denominator cannot
/// see such sub-window overloads (the paper notes its conditions are only
/// necessary); this bound catches the common case of same-release messages
/// funneling into one link.
fn hall_bound(msgs: &[usize], inputs: &MsgInputs, intervals: &Intervals) -> f64 {
    if msgs.len() < 2 {
        return 0.0;
    }
    if let Some(masks) = &inputs.masks {
        return hall_bound_masked(msgs, inputs, masks, intervals);
    }
    let sigs: Vec<Vec<usize>> = {
        let mut s: Vec<Vec<usize>> = msgs.iter().map(|&i| inputs.actives[i].clone()).collect();
        s.sort();
        s.dedup();
        s
    };
    let mut candidates: Vec<Vec<usize>> = sigs.clone();
    for a in 0..sigs.len() {
        for b in (a + 1)..sigs.len() {
            let mut u = sigs[a].clone();
            u.extend_from_slice(&sigs[b]);
            u.sort_unstable();
            u.dedup();
            candidates.push(u);
        }
    }
    let mut hall = 0.0f64;
    for s in candidates {
        let len: f64 = s.iter().map(|&k| intervals.length(k)).sum();
        if len <= 0.0 {
            continue;
        }
        let demand: f64 = msgs
            .iter()
            .filter(|&&i| inputs.actives[i].iter().all(|k| s.contains(k)))
            .map(|&i| inputs.durations[i])
            .sum();
        let ratio = demand / len;
        if ratio > hall {
            hall = ratio;
        }
    }
    hall
}

/// Word-parallel [`hall_bound`] for frames with at most 64 intervals. The
/// candidate set (distinct signatures plus pairwise unions) is identical to
/// the list path's, and each candidate's length and demand are summed in
/// ascending interval / ascending message order, so the returned maximum is
/// bitwise identical — only the order candidates are *visited* in differs,
/// which a max over identical values cannot observe.
fn hall_bound_masked(
    msgs: &[usize],
    inputs: &MsgInputs,
    masks: &[u64],
    intervals: &Intervals,
) -> f64 {
    let mut sigs: Vec<u64> = msgs.iter().map(|&i| masks[i]).collect();
    sigs.sort_unstable();
    sigs.dedup();
    let mut hall = 0.0f64;
    let mut consider = |s: u64| {
        let mut len = 0.0f64;
        let mut t = s;
        while t != 0 {
            len += intervals.length(t.trailing_zeros() as usize);
            t &= t - 1;
        }
        if len <= 0.0 {
            return;
        }
        let demand: f64 = msgs
            .iter()
            .filter(|&&i| masks[i] & !s == 0)
            .map(|&i| inputs.durations[i])
            .sum();
        let ratio = demand / len;
        if ratio > hall {
            hall = ratio;
        }
    };
    for &s in &sigs {
        consider(s);
    }
    for a in 0..sigs.len() {
        for b in (a + 1)..sigs.len() {
            consider(sigs[a] | sigs[b]);
        }
    }
    hall
}

/// The ascending message list of every link.
fn per_link_messages(assignment: &PathAssignment, num_links: usize) -> Vec<Vec<usize>> {
    let mut per_link: Vec<Vec<usize>> = vec![Vec::new(); num_links];
    for i in 0..assignment.len() {
        for &l in assignment.links(MessageId(i)) {
            per_link[l.index()].push(i);
        }
    }
    per_link
}

impl UtilizationMap {
    /// Computes all utilizations for `assignment` under the given time
    /// bounds.
    pub fn compute(
        assignment: &PathAssignment,
        bounds: &TimeBounds,
        activity: &ActivityMatrix,
        intervals: &Intervals,
        num_links: usize,
    ) -> Self {
        let k_count = intervals.len();
        let inputs = MsgInputs::new(assignment.len(), bounds, activity, k_count);
        let per_link_msgs = per_link_messages(assignment, num_links);
        let mut scratch = LinkScratch::new(k_count);

        let mut link_util = vec![0.0f64; num_links];
        let mut peak_value = 0.0f64;
        let mut peak_at = None;
        let mut spots = Vec::new();
        let mut hall_peak = 0.0f64;
        let mut hall_at = None;

        for (l, msgs) in per_link_msgs.iter().enumerate() {
            let fig = link_figures(msgs, &inputs, intervals, &mut scratch);
            if fig.tx > 0.0 {
                link_util[l] = fig.util;
                if fig.util > peak_value {
                    peak_value = fig.util;
                    peak_at = Some(Hotspot::Link(LinkId(l)));
                }
                for &k in &scratch.marked {
                    let c = scratch.spots[k];
                    if c > 0 {
                        spots.push((LinkId(l), k, c));
                        if c as f64 > peak_value {
                            peak_value = c as f64;
                            peak_at = Some(Hotspot::Spot(LinkId(l), k));
                        }
                    }
                }
            }
            if fig.hall > hall_peak {
                hall_peak = fig.hall;
                hall_at = Some(LinkId(l));
            }
        }

        UtilizationMap {
            link_util,
            spots,
            peak_value,
            peak_at,
            hall_peak,
            hall_at,
        }
    }

    /// The sharpest Hall-type group bound found (≥ every `U^l_j`): the
    /// maximum, over links and small unions `S` of activity signatures, of
    /// the demand of messages confined to `S` divided by `|S|`.
    ///
    /// A value above 1 proves message–interval allocation will fail even
    /// when the paper's `U ≤ 1`; `AssignPaths` therefore minimizes
    /// [`UtilizationMap::effective_peak`] while figures report the paper's
    /// [`UtilizationMap::peak`].
    pub fn hall_peak(&self) -> f64 {
        self.hall_peak
    }

    /// `max(peak, hall_peak)` — the quantity the path-assignment heuristic
    /// actually minimizes.
    pub fn effective_peak(&self) -> f64 {
        self.peak_value.max(self.hall_peak)
    }

    /// Where the effective peak occurs.
    pub fn effective_location(&self) -> Option<Hotspot> {
        if self.hall_peak > self.peak_value {
            self.hall_at.map(Hotspot::Group)
        } else {
            self.peak_at
        }
    }

    /// `U^l_j` for a link (0 for unused links).
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link(&self, link: LinkId) -> f64 {
        self.link_util[link.index()]
    }

    /// `U^s_jk` for a (link, interval) pair.
    pub fn spot(&self, link: LinkId, k: usize) -> usize {
        self.spots
            .iter()
            .find(|&&(l, kk, _)| l == link && kk == k)
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    }

    /// All hot-spot entries `(link, interval, no-slack count)` with count
    /// ≥ 1.
    pub fn spots(&self) -> &[(LinkId, usize, usize)] {
        &self.spots
    }

    /// The peak utilization `U` (0 when no message uses any link).
    pub fn peak(&self) -> f64 {
        self.peak_value
    }

    /// Where the peak occurs (`None` when the network is unused).
    pub fn peak_location(&self) -> Option<Hotspot> {
        self.peak_at
    }

    /// `true` when scheduled routing may be attempted (`U ≤ 1 + tol`).
    pub fn is_schedulable(&self, tol: f64) -> bool {
        self.peak_value <= 1.0 + tol
    }
}

/// Incrementally maintained effective-peak evaluator for the `AssignPaths`
/// hill climb.
///
/// [`UtilizationMap::compute`] is a pure per-link reduction, so rerouting
/// one message can only change the figures of links on its old and new
/// paths. This evaluator caches every link's figures and, on
/// [`UtilEval::set_path`], recomputes just the touched links (via the same
/// [`link_figures`] the full computation uses, over the same
/// ascending-message lists) and rescans the cached per-link values for the
/// peak. The result is **bitwise identical** to a fresh
/// `UtilizationMap::compute` of the updated assignment — same peak, same
/// location, same tie-breaks — while a reroute trial costs `O(touched
/// links + num_links)` instead of `O(messages × links)`.
///
/// Undo is just another `set_path`: every cached figure is a pure function
/// of the assignment, so restoring a path restores the evaluator's state
/// exactly.
pub(crate) struct UtilEval<'a> {
    intervals: &'a Intervals,
    inputs: MsgInputs,
    per_link_msgs: Vec<Vec<usize>>,
    tx_sum: Vec<f64>,
    link_util: Vec<f64>,
    /// Per link: the row maximum of the no-slack spot counts and the first
    /// interval achieving it. The full computation's running `c > peak`
    /// scan always lands on the first occurrence of the row maximum, so
    /// this pair is enough to reproduce its selection exactly.
    spot_max: Vec<usize>,
    spot_arg: Vec<usize>,
    hall_link: Vec<f64>,
    scratch: LinkScratch,
    touched: Vec<usize>,
    peak_value: f64,
    peak_at: Option<Hotspot>,
    hall_peak: f64,
    hall_at: Option<LinkId>,
}

impl<'a> UtilEval<'a> {
    pub(crate) fn new(
        assignment: &PathAssignment,
        bounds: &TimeBounds,
        activity: &ActivityMatrix,
        intervals: &'a Intervals,
        num_links: usize,
    ) -> Self {
        let mut eval = UtilEval {
            intervals,
            inputs: MsgInputs::new(assignment.len(), bounds, activity, intervals.len()),
            per_link_msgs: per_link_messages(assignment, num_links),
            tx_sum: vec![0.0; num_links],
            link_util: vec![0.0; num_links],
            spot_max: vec![0; num_links],
            spot_arg: vec![0; num_links],
            hall_link: vec![0.0; num_links],
            scratch: LinkScratch::new(intervals.len()),
            touched: Vec::new(),
            peak_value: 0.0,
            peak_at: None,
            hall_peak: 0.0,
            hall_at: None,
        };
        for l in 0..num_links {
            eval.recompute_link(l);
        }
        eval.rescan();
        eval
    }

    /// Applies a reroute to `assignment` and brings the evaluator up to
    /// date with it.
    pub(crate) fn set_path(
        &mut self,
        assignment: &mut PathAssignment,
        m: MessageId,
        path: sr_topology::Path,
        topo: &dyn sr_topology::Topology,
    ) {
        let i = m.index();
        self.touched.clear();
        for &l in assignment.links(m) {
            let v = &mut self.per_link_msgs[l.index()];
            if let Ok(pos) = v.binary_search(&i) {
                v.remove(pos);
            }
            self.touched.push(l.index());
        }
        assignment.set_path(m, path, topo);
        for &l in assignment.links(m) {
            let v = &mut self.per_link_msgs[l.index()];
            if let Err(pos) = v.binary_search(&i) {
                v.insert(pos, i);
            }
            self.touched.push(l.index());
        }
        self.touched.sort_unstable();
        self.touched.dedup();
        let touched = std::mem::take(&mut self.touched);
        for &l in &touched {
            self.recompute_link(l);
        }
        self.touched = touched;
        self.rescan();
    }

    /// `max(peak, hall_peak)`, equal to
    /// [`UtilizationMap::effective_peak`] of the current assignment.
    pub(crate) fn effective_peak(&self) -> f64 {
        self.peak_value.max(self.hall_peak)
    }

    /// Where the effective peak occurs, equal to
    /// [`UtilizationMap::effective_location`] of the current assignment.
    pub(crate) fn effective_location(&self) -> Option<Hotspot> {
        if self.hall_peak > self.peak_value {
            self.hall_at.map(Hotspot::Group)
        } else {
            self.peak_at
        }
    }

    fn recompute_link(&mut self, l: usize) {
        let fig = link_figures(
            &self.per_link_msgs[l],
            &self.inputs,
            self.intervals,
            &mut self.scratch,
        );
        self.tx_sum[l] = fig.tx;
        self.link_util[l] = if fig.tx > 0.0 { fig.util } else { 0.0 };
        self.hall_link[l] = fig.hall;
        let mut smax = 0usize;
        let mut sarg = 0usize;
        // `marked` is ascending, so the strict `>` lands on the first
        // interval achieving the row maximum — the dense scan's selection.
        for &k in &self.scratch.marked {
            let c = self.scratch.spots[k];
            if c > smax {
                smax = c;
                sarg = k;
            }
        }
        self.spot_max[l] = smax;
        self.spot_arg[l] = sarg;
    }

    /// Re-derives the global peak from the cached per-link figures with the
    /// exact selection order of [`UtilizationMap::compute`]: links in
    /// ascending index, each link's net utilization before its spot counts,
    /// strict `>` everywhere.
    fn rescan(&mut self) {
        let mut peak_value = 0.0f64;
        let mut peak_at = None;
        let mut hall_peak = 0.0f64;
        let mut hall_at = None;
        for l in 0..self.tx_sum.len() {
            if self.tx_sum[l] > 0.0 {
                let u = self.link_util[l];
                if u > peak_value {
                    peak_value = u;
                    peak_at = Some(Hotspot::Link(LinkId(l)));
                }
                let c = self.spot_max[l];
                if c > 0 && c as f64 > peak_value {
                    peak_value = c as f64;
                    peak_at = Some(Hotspot::Spot(LinkId(l), self.spot_arg[l]));
                }
            }
            if self.hall_link[l] > hall_peak {
                hall_peak = self.hall_link[l];
                hall_at = Some(LinkId(l));
            }
        }
        self.peak_value = peak_value;
        self.peak_at = peak_at;
        self.hall_peak = hall_peak;
        self.hall_at = hall_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::{assign_time_bounds, Timing, WindowPolicy};
    use sr_topology::{GeneralizedHypercube, NodeId, Topology};

    /// Two messages forced over the same single link.
    fn shared_link_setup(
        period: f64,
        policy: WindowPolicy,
    ) -> (GeneralizedHypercube, UtilizationMap, Intervals) {
        let topo = GeneralizedHypercube::binary(1).unwrap(); // 2 nodes, 1 link
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("a", 500);
        let t1 = b.task("b", 500);
        let t2 = b.task("c", 500);
        b.message("m0", t0, t1, 640).unwrap(); // 10 µs at B=64
        b.message("m1", t1, t2, 640).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // exec 50 = τ_c
        let alloc = Allocation::new(vec![NodeId(0), NodeId(1), NodeId(0)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, period, policy).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = crate::PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let u = UtilizationMap::compute(&pa, &bounds, &activity, &intervals, topo.num_links());
        (topo, u, intervals)
    }

    #[test]
    fn max_load_shared_link_utilization() {
        // Period 50 = τ_c: both windows cover the frame; the one link carries
        // 20 µs of traffic over a 50 µs frame -> U = 0.4.
        let (_, u, _) = shared_link_setup(50.0, WindowPolicy::LongestTask);
        assert!(
            (u.link(LinkId(0)) - 0.4).abs() < 1e-9,
            "got {}",
            u.link(LinkId(0))
        );
        assert!((u.peak() - 0.4).abs() < 1e-9);
        assert_eq!(u.peak_location(), Some(Hotspot::Link(LinkId(0))));
        assert!(u.is_schedulable(0.0));
    }

    #[test]
    fn tight_windows_create_hotspots() {
        // Tight policy: windows have zero slack. With period 100, the two
        // messages' windows are [50,60] and [110->10, 20]; they do not
        // overlap, so each spot has exactly one no-slack message.
        let (_, u, _) = shared_link_setup(100.0, WindowPolicy::Tight);
        assert!(!u.spots().is_empty());
        assert!(u.spots().iter().all(|&(_, _, c)| c == 1));
        assert!((u.peak() - 1.0).abs() < 1e-9);
        assert!(u.is_schedulable(1e-9));
    }

    #[test]
    fn overlapping_no_slack_messages_exceed_capacity() {
        // Force both tight windows to overlap by pinning the period so the
        // second release folds onto the first window: releases at 50 and
        // 110; period 60 folds them to 50 and 50.
        let (_, u, _) = shared_link_setup(60.0, WindowPolicy::Tight);
        // Both no-slack windows are [50,60]: spot count 2, and the link
        // ratio over that 10 µs interval is also 20/10 = 2 -> unschedulable
        // whichever location is reported.
        assert!(u.peak() >= 2.0 - 1e-9, "peak {}", u.peak());
        assert!(u.peak_location().is_some());
        assert_eq!(u.spot(LinkId(0), u.spots()[0].1), 2);
        assert!(!u.is_schedulable(1e-6));
    }

    /// The incremental evaluator's contract is *bitwise* agreement with a
    /// fresh full computation after any sequence of reroutes — that is what
    /// lets the hill climb swap one in for the other without changing a
    /// single accept/reject decision.
    #[test]
    fn incremental_eval_matches_full_compute_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sr_topology::Topology;

        for policy in [WindowPolicy::LongestTask, WindowPolicy::Tight] {
            let topo = GeneralizedHypercube::binary(3).unwrap();
            let tfg = sr_tfg::generators::diamond(3, 500, 1280);
            let timing = Timing::new(64.0, 10.0);
            let alloc = sr_mapping::greedy(&tfg, &topo);
            let bounds = assign_time_bounds(&tfg, &timing, 100.0, policy).unwrap();
            let intervals = Intervals::from_bounds(&bounds);
            let activity = ActivityMatrix::new(&bounds, &intervals);
            let num_links = topo.num_links();

            let candidates: Vec<Vec<sr_topology::Path>> = tfg
                .messages()
                .iter()
                .map(|m| topo.shortest_paths(alloc.node_of(m.src()), alloc.node_of(m.dst()), 8))
                .collect();
            let mut pa = crate::PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
            let mut eval = UtilEval::new(&pa, &bounds, &activity, &intervals, num_links);

            let mut rng = StdRng::seed_from_u64(7);
            for step in 0..200 {
                let i = rng.gen_range(0..candidates.len());
                let alts = &candidates[i];
                let p = alts[rng.gen_range(0..alts.len())].clone();
                eval.set_path(&mut pa, MessageId(i), p, &topo);

                let full = UtilizationMap::compute(&pa, &bounds, &activity, &intervals, num_links);
                assert_eq!(
                    eval.effective_peak().to_bits(),
                    full.effective_peak().to_bits(),
                    "{policy:?} step {step}: peak diverged ({} vs {})",
                    eval.effective_peak(),
                    full.effective_peak()
                );
                assert_eq!(
                    eval.effective_location(),
                    full.effective_location(),
                    "{policy:?} step {step}: location diverged"
                );
            }
        }
    }

    #[test]
    fn unused_network_has_zero_peak() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let mut b = sr_tfg::TfgBuilder::new();
        let t0 = b.task("a", 100);
        let t1 = b.task("b", 100);
        b.message("m", t0, t1, 64).unwrap();
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        // Co-located: message never enters the network.
        let alloc = Allocation::new(vec![NodeId(3), NodeId(3)], &tfg, &topo).unwrap();
        let bounds = assign_time_bounds(&tfg, &timing, 20.0, WindowPolicy::LongestTask).unwrap();
        let intervals = Intervals::from_bounds(&bounds);
        let activity = ActivityMatrix::new(&bounds, &intervals);
        let pa = crate::PathAssignment::lsd_to_msd(&tfg, &topo, &alloc);
        let u = UtilizationMap::compute(&pa, &bounds, &activity, &intervals, topo.num_links());
        assert_eq!(u.peak(), 0.0);
        assert_eq!(u.peak_location(), None);
        assert!(u.is_schedulable(0.0));
    }
}
