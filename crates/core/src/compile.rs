use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sr_mapping::Allocation;
use sr_obs::{span_with, Recorder, NOOP};
use sr_tfg::{MessageId, TaskFlowGraph, TimeBounds, Timing, WindowPolicy};
use sr_topology::{NodeId, Topology};

use crate::diagnosis::{CandidateOutcome, CandidateRecord, Diagnosis};
use crate::interval_sched::{schedule_intervals_greedy, schedule_intervals_guarded_stats};
use crate::{
    allocate_intervals_flow, allocate_intervals_partitioned, allocate_intervals_stats,
    allocate_intervals_warm, assign_paths_pooled, build_node_schedules, related_subsets,
    ActivityMatrix, AllocBasisCache, AllocationStats, AssignPathsConfig, CompileError,
    FlowAllocStats, FlowWorkspace, IntervalAllocation, IntervalSchedStats, IntervalSchedule,
    Intervals, NodeSchedule, PathAssignment, PathPool, Segment, UtilizationMap,
};

/// Backend for the message–interval allocation stage.
///
/// Both engines accept and reject exactly the same instances and every
/// emitted schedule satisfies constraints (3) and (4); they differ in the
/// machinery (and therefore the work counters) used per maximal related
/// subset. The simplex engine is the reference oracle, exactly as
/// [`sr_lp::LpEngine::Dense`] was kept beside the sparse rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AllocEngine {
    /// One LP per subset, solved by the sparse revised simplex (with
    /// warm-started bases along capacity-scale ladders). The default.
    #[default]
    Simplex,
    /// One time-expanded min-cost-flow network per subset, solved by
    /// successive shortest paths; the rare subset where the relaxation is
    /// loose falls back to the simplex
    /// ([`crate::allocate_intervals_flow`]).
    Flow,
}

/// Configuration of the end-to-end scheduled-routing compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileConfig {
    /// Message window policy (paper default: one longest-task length).
    pub window_policy: WindowPolicy,
    /// Path-assignment heuristic knobs.
    pub assign_paths: AssignPathsConfig,
    /// Cap on link-feasible sets enumerated per interval.
    pub max_feasible_sets: usize,
    /// Slack allowed on the `U ≤ 1` schedulability test.
    pub utilization_tolerance: f64,
    /// Capacity scales tried for message–interval allocation. The first
    /// entry should be 1.0; later (smaller) entries implement the paper's
    /// suggested *feedback*: if interval scheduling fails, re-allocate with
    /// tighter per-interval link capacities, which spreads messages across
    /// more intervals and usually makes the intervals schedulable.
    pub feedback_scales: Vec<f64>,
    /// Additional `AssignPaths` seeds tried when allocation or interval
    /// scheduling fails (a second feedback loop from §7: the path
    /// assignment constrains everything downstream, so a different
    /// same-peak assignment often compiles).
    pub path_retry_seeds: usize,
    /// Use the greedy list scheduler instead of the \[BDW86\] LP for
    /// interval scheduling (an ablation: faster, occasionally fails where
    /// the LP succeeds).
    pub greedy_interval_scheduling: bool,
    /// Clock-skew guard time (µs) reserved before every transmission slice
    /// — the paper's §7 margin for CP synchronization ("twice the maximum
    /// difference between two clocks"). Zero assumes perfectly synchronized
    /// communication processors.
    pub guard_time: f64,
    /// Worker threads for the feedback search over `(path seed, capacity
    /// scale)` candidates: `0` = one worker per hardware thread, `1` =
    /// fully serial, `n` = at most `n` workers. Any setting returns the
    /// exact schedule the serial search would: candidates are ranked by
    /// `(seed, scale)` and the lowest-ranked success wins.
    pub parallelism: usize,
    /// Warm-start the allocation subset LPs along each seed's capacity-scale
    /// ladder (default `true`).
    ///
    /// Scales after the first re-solve structurally identical LPs with
    /// tighter capacities, so each subset LP is seeded from the previous
    /// scale's optimal basis ([`crate::AllocBasisCache`]) — for these
    /// zero-objective feasibility systems a warm hit skips the entire solve.
    /// Feasibility *verdicts* are unaffected, and any warm-influenced
    /// candidate that wins the walk is re-derived cold before the schedule
    /// is emitted, so the accepted candidate and final schedule match a
    /// `warm_start: false` compile; ladders are evaluated whole per seed,
    /// so results stay bit-identical at any [`CompileConfig::parallelism`].
    pub warm_start: bool,
    /// Fraction `ε ∈ [0, 1)` of link capacity held back at compile time as
    /// repair headroom: the schedulability test tightens to `U ≤ 1 − ε`
    /// and every capacity scale is multiplied by `1 − ε` during
    /// message–interval allocation. A schedule compiled with spare capacity
    /// leaves every link at most `(1 − ε)`-full in every interval, so
    /// incremental repair after a fault is more likely to find room for the
    /// re-routed messages. Zero (the default) reproduces the paper's
    /// pipeline exactly.
    pub spare_capacity: f64,
    /// Message–interval allocation backend (see [`AllocEngine`]). The flow
    /// engine sidesteps the subset LPs entirely on large fabrics; warm-start
    /// bases are a simplex concept and are not used under it.
    pub alloc_engine: AllocEngine,
    /// Partition the platform into this many contiguous node bands
    /// ([`crate::band_partition`]) and compile hierarchically: `AssignPaths`
    /// hill-climbs each band's interior traffic in parallel and stitches
    /// boundary messages afterwards
    /// ([`crate::assign_paths_partitioned`]), and the simplex allocation
    /// solves interior subsets concurrently with a pinned-row boundary pass
    /// ([`crate::allocate_intervals_partitioned`]). `0` or `1` (the
    /// default) keeps the flat pipeline. Partitioned compiles remain
    /// deterministic for a fixed config — including across
    /// [`CompileConfig::parallelism`] settings — but trade assignment
    /// quality for wall-clock scaling, so leave this off below a few
    /// thousand nodes.
    pub partition: usize,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            window_policy: WindowPolicy::LongestTask,
            assign_paths: AssignPathsConfig::default(),
            max_feasible_sets: 50_000,
            utilization_tolerance: 1e-6,
            feedback_scales: vec![1.0, 0.9, 0.8, 0.7],
            path_retry_seeds: 3,
            greedy_interval_scheduling: false,
            guard_time: 0.0,
            parallelism: 0,
            warm_start: true,
            spare_capacity: 0.0,
            alloc_engine: AllocEngine::default(),
            partition: 0,
        }
    }
}

/// A compiled communication schedule `Ω` and every artifact that produced
/// it.
///
/// Produced by [`compile`]; replayable/checkable with [`crate::verify`].
/// When compilation succeeds, the multicomputer sustains exactly one TFG
/// invocation per period — constant throughput with latency
/// [`Schedule::latency`] — with zero run-time flow-control.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub(crate) period: f64,
    pub(crate) bounds: TimeBounds,
    pub(crate) assignment: PathAssignment,
    pub(crate) intervals: Intervals,
    pub(crate) activity: ActivityMatrix,
    pub(crate) allocation: IntervalAllocation,
    pub(crate) interval_schedules: Vec<IntervalSchedule>,
    pub(crate) segments: Vec<Segment>,
    pub(crate) node_schedules: Vec<NodeSchedule>,
    pub(crate) peak_utilization: f64,
    pub(crate) baseline_peak: f64,
    pub(crate) capacity_scale: f64,
    pub(crate) guard_time: f64,
}

impl Schedule {
    /// The invocation period `τ_in` the schedule sustains, in µs.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Invocation latency implied by the time bounds, in µs (the paper's
    /// "critical path length obtained after assigning time bounds").
    pub fn latency(&self) -> f64 {
        self.bounds.latency()
    }

    /// Peak utilization `U` of the final path assignment.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_utilization
    }

    /// Peak utilization of the LSD-to-MSD baseline assignment (what Figs.
    /// 5–6 compare against).
    pub fn baseline_peak_utilization(&self) -> f64 {
        self.baseline_peak
    }

    /// The message time bounds.
    pub fn bounds(&self) -> &TimeBounds {
        &self.bounds
    }

    /// The final path assignment.
    pub fn assignment(&self) -> &PathAssignment {
        &self.assignment
    }

    /// The interval partition of the period frame.
    pub fn intervals(&self) -> &Intervals {
        &self.intervals
    }

    /// The message activity matrix.
    pub fn activity(&self) -> &ActivityMatrix {
        &self.activity
    }

    /// The message–interval allocation matrix `P`.
    pub fn allocation(&self) -> &IntervalAllocation {
        &self.allocation
    }

    /// The per-interval link-feasible-set schedules.
    pub fn interval_schedules(&self) -> &[IntervalSchedule] {
        &self.interval_schedules
    }

    /// Every message transmission segment, sorted by start time.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All node switching schedules, indexable by node.
    pub fn node_schedules(&self) -> &[NodeSchedule] {
        &self.node_schedules
    }

    /// The switching schedule `ω_i` of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_schedule(&self, node: NodeId) -> &NodeSchedule {
        &self.node_schedules[node.index()]
    }

    /// The message–interval allocation capacity scale that succeeded (1.0
    /// unless the feedback loop had to tighten).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// The clock-skew guard time the schedule was compiled with, µs.
    pub fn guard_time(&self) -> f64 {
        self.guard_time
    }

    /// Rebuilds a schedule around replacement routing artifacts, carrying
    /// over this schedule's period, time bounds, intervals, activity,
    /// capacity scale, and guard time.
    ///
    /// This is the assembly step of incremental repair: after the affected
    /// messages have been re-routed (`assignment`), re-allocated
    /// (`allocation`), and re-packed (`interval_schedules`), the segments
    /// and node switching schedules `Ω` are re-derived and the peak
    /// utilization recomputed. Slices that were kept verbatim produce
    /// bit-identical segments and commands, so unaffected messages' Ω
    /// entries do not move.
    ///
    /// The caller is responsible for the artifacts' mutual consistency;
    /// run [`crate::verify`] (or [`crate::verify_with_faults`]) on the
    /// result.
    pub fn patched(
        &self,
        assignment: PathAssignment,
        allocation: IntervalAllocation,
        interval_schedules: Vec<IntervalSchedule>,
        topo: &dyn Topology,
    ) -> Schedule {
        let (segments, node_schedules) =
            build_node_schedules(&assignment, &interval_schedules, topo);
        let peak_utilization = UtilizationMap::compute(
            &assignment,
            &self.bounds,
            &self.activity,
            &self.intervals,
            topo.num_links(),
        )
        .effective_peak();
        Schedule {
            period: self.period,
            bounds: self.bounds.clone(),
            assignment,
            intervals: self.intervals.clone(),
            activity: self.activity.clone(),
            allocation,
            interval_schedules,
            segments,
            node_schedules,
            peak_utilization,
            baseline_peak: self.baseline_peak,
            capacity_scale: self.capacity_scale,
            guard_time: self.guard_time,
        }
    }
}

/// Compiles a scheduled-routing communication schedule `Ω` for pipelining
/// `tfg` on `topo` with input period `period` (µs) — the full Fig. 3
/// pipeline (see the crate docs for the stage list).
///
/// # Errors
///
/// Every stage's failure is reported as the corresponding
/// [`CompileError`] variant: bad time bounds, peak utilization above 1,
/// infeasible message–interval allocation, or an unschedulable interval
/// (after exhausting the feedback scales).
pub fn compile(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    config: &CompileConfig,
) -> Result<Schedule, CompileError> {
    compile_with_recorder(topo, tfg, alloc, timing, period, config, &NOOP)
}

/// [`compile`] with an [`sr_obs::Recorder`] observing the pipeline: nested
/// spans around the four Fig. 3 phases and every `(seed, scale)` candidate,
/// plus work counters (LP pivots, feasible sets, path-pool traffic, …).
///
/// Counters outside the `par.` namespace are emitted only from the
/// deterministic candidate walk, so they are identical for any
/// [`CompileConfig::parallelism`] setting; `par.`-prefixed counters and all
/// span timings depend on thread scheduling. Passing [`sr_obs::NOOP`]
/// reduces this to [`compile`] — the instrumentation then costs one
/// non-inlined boolean query per span site and never allocates.
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with_recorder(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    config: &CompileConfig,
    rec: &dyn Recorder,
) -> Result<Schedule, CompileError> {
    compile_inner(topo, tfg, alloc, timing, period, config, rec, None)
}

/// [`compile_with_recorder`] plus a [`Diagnosis`]: the same deterministic
/// search, additionally recording why every consumed `(seed, scale)`
/// candidate died — and, for allocation-infeasible candidates, re-solving
/// the failing subset LP for its Farkas certificate
/// ([`crate::diagnose_infeasible_subset`]). On success the diagnosis
/// instead carries the winner's tightest capacity rows
/// ([`crate::bottlenecks`]).
///
/// The schedule (or error) returned is **identical** to [`compile`]'s for
/// the same inputs; diagnosis only observes the walk. The extra work (one
/// diagnosed LP solve per reported infeasibility, plus record keeping on
/// the serial walk) is only spent here — [`compile`] never builds a
/// diagnosis. Counters under `diag.` are emitted by this entry point only.
pub fn compile_diagnosed(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    config: &CompileConfig,
    rec: &dyn Recorder,
) -> (Result<Schedule, CompileError>, Diagnosis) {
    let sink = Mutex::new(Diagnosis::new(period));
    let result = compile_inner(topo, tfg, alloc, timing, period, config, rec, Some(&sink));
    let mut diag = sink.into_inner().unwrap_or_else(|p| p.into_inner());
    match &result {
        Ok(sched) => {
            diag.bottlenecks = crate::diagnosis::bottlenecks(sched, config.spare_capacity, 10);
        }
        Err(e) => {
            // Pre-walk rejections (bad time bounds, overloaded node, arity
            // mismatch) never reach the candidate walk; synthesize one
            // record so the diagnosis is never silently empty.
            if diag.candidates.is_empty() {
                diag.candidates.push(CandidateRecord {
                    seed: 0,
                    scale: None,
                    outcome: CandidateOutcome::PrecheckFailed,
                    detail: e.to_string(),
                });
            }
        }
    }
    rec.add("diag.candidates", diag.candidates.len() as u64);
    rec.add("diag.bottlenecks", diag.bottlenecks.len() as u64);
    if let Some(s) = &diag.subset {
        rec.add("diag.blocking_messages", s.blocking.len() as u64);
        rec.add("diag.saturated_rows", s.saturated.len() as u64);
    }
    (result, diag)
}

#[allow(clippy::too_many_arguments)]
fn compile_inner(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    config: &CompileConfig,
    rec: &dyn Recorder,
    diag: Option<&Mutex<Diagnosis>>,
) -> Result<Schedule, CompileError> {
    let root = span_with(rec, "compile", || {
        format!("period={period} messages={}", tfg.num_messages())
    });
    if alloc.placement().len() != tfg.num_tasks() {
        return Err(CompileError::AllocationMismatch {
            alloc_tasks: alloc.placement().len(),
            tfg_tasks: tfg.num_tasks(),
        });
    }
    let phase = sr_obs::span(rec, "phase.time_bounds");
    let bounds = sr_tfg::assign_time_bounds(tfg, timing, period, config.window_policy)?;
    // Application-processor capacity: co-located tasks share one AP, so
    // their total execution demand must fit the period (the paper assumes
    // one task per processor; this check makes the assumption explicit).
    // Dense per-node accumulation so the reported node is always the
    // lowest-indexed offender (a HashMap here made the error message
    // depend on iteration order).
    {
        let mut demand = vec![0.0f64; topo.num_nodes()];
        for (id, task) in tfg.iter_tasks() {
            demand[alloc.node_of(id).index()] += timing.exec_time(task);
        }
        for (node, &d) in demand.iter().enumerate() {
            if d > period + 1e-9 {
                return Err(CompileError::NodeOverloaded {
                    node: NodeId(node),
                    demand: d,
                    period,
                });
            }
        }
    }
    let intervals = Intervals::from_bounds(&bounds);
    let activity = ActivityMatrix::new(&bounds, &intervals);
    drop(phase);
    rec.add("compile.messages", tfg.num_messages() as u64);
    rec.add("compile.intervals", intervals.len() as u64);

    let ctx = SearchCtx {
        topo,
        tfg,
        alloc,
        bounds: &bounds,
        intervals: &intervals,
        activity: &activity,
        config,
        period,
        scales: if config.feedback_scales.is_empty() {
            vec![1.0]
        } else {
            config.feedback_scales.clone()
        },
        // Shared across every seed retry (and worker thread): candidate
        // paths depend on endpoints only, so each pair is enumerated once
        // per compile instead of once per retry. Seeded with exactly the
        // message endpoint pairs — the only pairs the search ever asks
        // for — so pool memory scales with the workload, not with
        // num_nodes² (a dense pool on a 16,384-node torus would cost
        // gigabytes before the first enumeration).
        pool: PathPool::seeded(
            topo,
            config.assign_paths.path_cap,
            tfg.messages()
                .iter()
                .map(|m| (alloc.node_of(m.src()), alloc.node_of(m.dst()))),
        ),
        rec,
        diag,
    };
    let result = ctx.search(sr_par::effective_threads(config.parallelism));
    drop(root);
    result
}

/// One seed's path-assignment stage: either the assignment is viable
/// (peak utilization within capacity) or the seed fails outright. Either
/// way the heuristic's restart count rides along so the deterministic walk
/// — not the (possibly parallel) evaluation — reports it.
enum SeedOutcome {
    Viable(SeedEval),
    Utilization { err: CompileError, restarts: u64 },
}

/// The artifacts every `(seed, scale)` candidate of one seed shares.
struct SeedEval {
    peak: f64,
    baseline_peak: f64,
    assignment: PathAssignment,
    subsets: Vec<Vec<MessageId>>,
    restarts: u64,
}

/// One `(seed, scale)` candidate's allocate-then-schedule stage.
enum ScaleOutcome {
    Scheduled {
        allocation: IntervalAllocation,
        interval_schedules: Vec<IntervalSchedule>,
    },
    Unschedulable(CompileError),
    AllocInfeasible(CompileError),
    Hard(CompileError),
}

/// Work counters of one `(seed, scale)` candidate, carried beside its
/// [`ScaleOutcome`] so only the deterministic walk turns them into recorder
/// counters (a speculatively evaluated candidate the walk never consumes is
/// never reported).
#[derive(Clone, Copy, Default)]
struct ScaleStats {
    alloc: AllocationStats,
    flow: FlowAllocStats,
    isched: IntervalSchedStats,
}

impl ScaleStats {
    /// Folds another candidate evaluation's work into this one — used when
    /// a warm-influenced winner is re-derived cold, so the walk reports the
    /// candidate's *total* work (warm probe plus cold confirmation).
    fn absorb(&mut self, other: &ScaleStats) {
        self.alloc.lp.merge(&other.alloc.lp);
        self.alloc.lp_solves += other.alloc.lp_solves;
        self.alloc.vars += other.alloc.vars;
        self.alloc.constraints += other.alloc.constraints;
        self.flow.solves += other.flow.solves;
        self.flow.nodes += other.flow.nodes;
        self.flow.arcs += other.flow.arcs;
        self.flow.augmentations += other.flow.augmentations;
        self.flow.dijkstra_pops += other.flow.dijkstra_pops;
        self.flow.potential_reuse_hits += other.flow.potential_reuse_hits;
        self.flow.fallbacks += other.flow.fallbacks;
        self.isched.lp.merge(&other.isched.lp);
        self.isched.lp_solves += other.isched.lp_solves;
        self.isched.feasible_sets += other.isched.feasible_sets;
        self.isched.arena_cells += other.isched.arena_cells;
        self.isched.singleton_fast_paths += other.isched.singleton_fast_paths;
    }
}

/// One seed's full evaluation: the path-assignment stage plus however much
/// of its capacity-scale ladder [`SearchCtx::eval_ladder`] walked. Ladders
/// are always produced whole-seed (never one scale at a time) because with
/// [`CompileConfig::warm_start`] each rung's warm basis cache depends on the
/// rungs before it — evaluating a seed's ladder serially inside one job
/// keeps every outcome a deterministic function of the seed alone, so the
/// search stays bit-identical at any parallelism.
struct SeedResult {
    seed_out: SeedOutcome,
    ladder: Vec<(ScaleOutcome, ScaleStats)>,
}

/// `candidate`-span outcome codes (the `outcome` arg in a Chrome trace).
const OUTCOME_SCHEDULED: f64 = 0.0;
const OUTCOME_UNSCHEDULABLE: f64 = 1.0;
const OUTCOME_ALLOC_INFEASIBLE: f64 = 2.0;
const OUTCOME_HARD_ERROR: f64 = 3.0;

/// Reports one merged [`sr_lp::SolveStats`] under `prefix.` counter names.
fn add_lp_counters(rec: &dyn Recorder, prefix: &str, lp: &sr_lp::SolveStats) {
    rec.add(&format!("{prefix}.pivots"), lp.pivots);
    rec.add(&format!("{prefix}.phase1_pivots"), lp.phase1_pivots);
    rec.add(&format!("{prefix}.degenerate_pivots"), lp.degenerate_pivots);
    rec.add(&format!("{prefix}.bland_switches"), lp.bland_switches);
    rec.add(&format!("{prefix}.price_recomputes"), lp.price_recomputes);
    // Sparse revised-simplex work (zero under the dense engine).
    rec.add(&format!("{prefix}.factorizations"), lp.factorizations);
    rec.add(&format!("{prefix}.refactorizations"), lp.refactorizations);
    rec.add(&format!("{prefix}.eta_vectors"), lp.eta_vectors);
    rec.add(&format!("{prefix}.eta_nonzeros"), lp.eta_nonzeros);
    rec.add(&format!("{prefix}.warm_hits"), lp.warm_hits);
    rec.add(&format!("{prefix}.warm_misses"), lp.warm_misses);
}

/// Shared inputs of the feedback search over `(seed, scale)` candidates.
struct SearchCtx<'a> {
    topo: &'a dyn Topology,
    tfg: &'a TaskFlowGraph,
    alloc: &'a Allocation,
    bounds: &'a TimeBounds,
    intervals: &'a Intervals,
    activity: &'a ActivityMatrix,
    config: &'a CompileConfig,
    period: f64,
    scales: Vec<f64>,
    pool: PathPool<'a>,
    rec: &'a dyn Recorder,
    /// Diagnosis sink ([`compile_diagnosed`] only). Behind a `Mutex` to
    /// keep `SearchCtx: Sync` for the speculative fill, but only the
    /// serial replay walk ever locks it, so recorded candidates are in
    /// deterministic walk order at any parallelism.
    diag: Option<&'a Mutex<Diagnosis>>,
}

impl SearchCtx<'_> {
    /// Runs `AssignPaths` for retry index `sidx` and prepares the
    /// downstream artifacts. Deterministic per `sidx`.
    fn eval_seed(&self, sidx: usize) -> SeedOutcome {
        let span = span_with(self.rec, "phase.assign_paths", || format!("seed={sidx}"));
        let ap_config = AssignPathsConfig {
            seed: self.config.assign_paths.seed.wrapping_add(sidx as u64),
            ..self.config.assign_paths
        };
        let outcome = if self.config.partition > 1 {
            crate::assign_paths_partitioned(
                self.tfg,
                self.topo,
                self.alloc,
                self.bounds,
                self.intervals,
                self.activity,
                &ap_config,
                &self.pool,
                &crate::band_partition_topo(self.topo, self.config.partition),
                sr_par::effective_threads(self.config.parallelism),
            )
        } else {
            assign_paths_pooled(
                self.tfg,
                self.topo,
                self.alloc,
                self.bounds,
                self.intervals,
                self.activity,
                &ap_config,
                &self.pool,
            )
        };
        let peak = outcome.utilization.effective_peak();
        span.annotate("peak_utilization", peak);
        span.annotate("restarts", outcome.restarts as f64);
        if peak > 1.0 - self.config.spare_capacity + self.config.utilization_tolerance {
            // The heuristic is deterministic-per-seed but the peak won't
            // drop below capacity by reseeding alone once it converged;
            // other seeds are still tried, keeping the first report.
            return SeedOutcome::Utilization {
                err: CompileError::UtilizationExceeded { utilization: peak },
                restarts: outcome.restarts as u64,
            };
        }
        let subsets = related_subsets(&outcome.assignment, self.activity);
        SeedOutcome::Viable(SeedEval {
            peak,
            baseline_peak: outcome.baseline_peak,
            assignment: outcome.assignment,
            subsets,
            restarts: outcome.restarts as u64,
        })
    }

    /// Allocates message–interval shares at `scale` capacity and schedules
    /// the intervals. Deterministic per `(seed artifacts, scale, cache
    /// state)`; the returned [`ScaleStats`] are likewise deterministic and
    /// left to the walk to report. With a basis `cache` the subset LPs are
    /// warm-started from (and update) the previous rung's optimal bases;
    /// `None` is the cold evaluation.
    fn eval_scale(
        &self,
        ev: &SeedEval,
        sidx: usize,
        si: usize,
        cache: Option<&mut AllocBasisCache>,
        flow_ws: &mut FlowWorkspace,
    ) -> (ScaleOutcome, ScaleStats) {
        let scale = self.scales[si];
        let mut stats = ScaleStats::default();
        let candidate = span_with(self.rec, "candidate", || {
            format!("seed={sidx} scale={scale}")
        });

        let alloc_span = sr_obs::span(self.rec, "phase.allocate_intervals");
        // Spare capacity shrinks what the allocation may hand out; the
        // stored `capacity_scale` stays the nominal ladder value.
        let effective = scale * (1.0 - self.config.spare_capacity);
        let allocated = match (self.config.alloc_engine, cache) {
            (AllocEngine::Flow, _) => allocate_intervals_flow(
                &ev.assignment,
                self.bounds,
                self.activity,
                self.intervals,
                &ev.subsets,
                effective,
                flow_ws,
                &mut stats.flow,
                &mut stats.alloc,
            ),
            (AllocEngine::Simplex, _) if self.config.partition > 1 => {
                allocate_intervals_partitioned(
                    &ev.assignment,
                    self.bounds,
                    self.activity,
                    self.intervals,
                    &ev.subsets,
                    effective,
                    &crate::band_partition_topo(self.topo, self.config.partition),
                    sr_par::effective_threads(self.config.parallelism),
                    &mut stats.alloc,
                )
            }
            (AllocEngine::Simplex, Some(cache)) => allocate_intervals_warm(
                &ev.assignment,
                self.bounds,
                self.activity,
                self.intervals,
                &ev.subsets,
                effective,
                cache,
                &mut stats.alloc,
            ),
            (AllocEngine::Simplex, None) => allocate_intervals_stats(
                &ev.assignment,
                self.bounds,
                self.activity,
                self.intervals,
                &ev.subsets,
                effective,
                &mut stats.alloc,
            ),
        };
        alloc_span.annotate("lp_pivots", stats.alloc.lp.pivots as f64);
        drop(alloc_span);
        let allocation = match allocated {
            Ok(a) => a,
            Err(e @ CompileError::AllocationInfeasible { .. }) => {
                candidate.annotate("outcome", OUTCOME_ALLOC_INFEASIBLE);
                return (ScaleOutcome::AllocInfeasible(e), stats);
            }
            Err(e) => {
                candidate.annotate("outcome", OUTCOME_HARD_ERROR);
                return (ScaleOutcome::Hard(e), stats);
            }
        };

        let sched_span = sr_obs::span(self.rec, "phase.schedule_intervals");
        let scheduled = if self.config.greedy_interval_scheduling {
            schedule_intervals_greedy(
                &ev.assignment,
                &allocation,
                self.intervals,
                &ev.subsets,
                self.config.guard_time,
            )
        } else {
            schedule_intervals_guarded_stats(
                &ev.assignment,
                &allocation,
                self.intervals,
                &ev.subsets,
                self.config.max_feasible_sets,
                self.config.guard_time,
                &mut stats.isched,
            )
        };
        sched_span.annotate("lp_pivots", stats.isched.lp.pivots as f64);
        drop(sched_span);
        let (outcome, code) = match scheduled {
            Ok(interval_schedules) => (
                ScaleOutcome::Scheduled {
                    allocation,
                    interval_schedules,
                },
                OUTCOME_SCHEDULED,
            ),
            Err(e @ CompileError::IntervalUnschedulable { .. }) => {
                (ScaleOutcome::Unschedulable(e), OUTCOME_UNSCHEDULABLE)
            }
            Err(e) => (ScaleOutcome::Hard(e), OUTCOME_HARD_ERROR),
        };
        candidate.annotate("outcome", code);
        (outcome, stats)
    }

    /// Walks one viable seed's capacity-scale ladder in rank order,
    /// threading the warm-basis cache from rung to rung when
    /// [`CompileConfig::warm_start`] is set. Stops at the first terminal
    /// rung (scheduled, allocation-infeasible, or hard error) or when the
    /// `best` watermark proves no remaining rung can win.
    ///
    /// A warm-influenced rung that schedules is immediately **re-derived
    /// cold** and the cold outcome replaces it (with both evaluations'
    /// stats merged): the warm solve may sit on a different optimal vertex
    /// of the same polytope, and the compile contract is that the emitted
    /// schedule equals the `warm_start: false` one. Rung 0 needs no
    /// confirmation — its cache is empty, so its solves are cold already.
    fn eval_ladder(
        &self,
        ev: &SeedEval,
        sidx: usize,
        best: &AtomicUsize,
    ) -> Vec<(ScaleOutcome, ScaleStats)> {
        let num_scales = self.scales.len();
        // Warm bases only exist under the flat simplex engine; with no
        // cache the flow and partitioned ladders also skip the cold
        // re-derivation of winners (their solves are cold by construction).
        let mut cache = (self.config.warm_start
            && self.config.alloc_engine == AllocEngine::Simplex
            && self.config.partition <= 1)
            .then(AllocBasisCache::new);
        // The flow kernel's scratch, reused across this ladder's rungs and
        // their per-subset solves (it mirrors the basis cache above, but
        // carries no semantic state, so it needs no cold confirmation).
        let mut flow_ws = FlowWorkspace::new();
        let mut ladder = Vec::new();
        for si in 0..num_scales {
            if sidx * num_scales + si > best.load(Ordering::Relaxed) {
                break;
            }
            let (mut out, mut stats) = self.eval_scale(ev, sidx, si, cache.as_mut(), &mut flow_ws);
            if matches!(out, ScaleOutcome::Scheduled { .. }) && si > 0 && cache.is_some() {
                let (cold_out, cold_stats) = self.eval_scale(ev, sidx, si, None, &mut flow_ws);
                stats.absorb(&cold_stats);
                out = cold_out;
            }
            if matches!(out, ScaleOutcome::Scheduled { .. }) {
                best.fetch_min(sidx * num_scales + si, Ordering::Relaxed);
            }
            let stop = !matches!(out, ScaleOutcome::Unschedulable(_));
            ladder.push((out, stats));
            if stop {
                break;
            }
        }
        ladder
    }

    /// [`Self::eval_seed`] plus [`Self::eval_ladder`]: everything one seed
    /// contributes to the search, computed as a single deterministic job.
    fn eval_seed_full(&self, sidx: usize, best: &AtomicUsize) -> SeedResult {
        let seed_out = self.eval_seed(sidx);
        let ladder = match &seed_out {
            SeedOutcome::Viable(ev) => self.eval_ladder(ev, sidx, best),
            SeedOutcome::Utilization { .. } => Vec::new(),
        };
        SeedResult { seed_out, ladder }
    }

    /// The feedback search over the `(seed, scale)` candidate grid.
    ///
    /// Selection is a serial replay of the paper's feedback loops over
    /// candidate ranks `(seed-major, scale-minor)`; any seed the walk
    /// needs that has no precomputed result is evaluated on the spot. With
    /// `threads > 1` the seeds are speculatively evaluated first by a
    /// worker pool — each job runs one seed's path assignment and then its
    /// whole capacity-scale ladder (so the ladder's warm-basis chain stays
    /// inside one job) — with an atomic rank watermark cancelling seeds and
    /// ladder tails that can no longer win. Either way the walk — and hence
    /// the returned schedule or error — is identical to a fully serial
    /// search, because every seed's result is a deterministic function of
    /// its inputs.
    fn search(&self, threads: usize) -> Result<Schedule, CompileError> {
        let result = self.search_walk(threads);
        // Path-pool traffic is inherently thread-dependent (see
        // [`PathPool::stats`]), hence the `par.` namespace; reported on
        // success and failure alike.
        let (hits, misses) = self.pool.stats();
        self.rec.add("par.pathpool.hits", hits);
        self.rec.add("par.pathpool.misses", misses);
        result
    }

    fn search_walk(&self, threads: usize) -> Result<Schedule, CompileError> {
        let num_seeds = self.config.path_retry_seeds + 1;
        let num_scales = self.scales.len();

        let mut results: Vec<Option<SeedResult>> = (0..num_seeds).map(|_| None).collect();

        if threads > 1 {
            // Speculative parallel fill, one job per seed. `best` is the
            // lowest candidate rank known to have scheduled; a seed whose
            // lowest possible rank exceeds it is skipped outright, and a
            // running ladder stops extending past it. The walk below never
            // consumes a skipped/truncated entry while a better winner
            // exists, and re-evaluates lazily in the rare case one still
            // matters.
            let best = AtomicUsize::new(usize::MAX);
            let jobs: Vec<usize> = (0..num_seeds).collect();
            let fill = sr_par::par_map(&jobs, threads, |&sidx| {
                if sidx * num_scales > best.load(Ordering::Relaxed) {
                    return None;
                }
                Some(self.eval_seed_full(sidx, &best))
            });
            let mut seed_evals = 0u64;
            let mut scale_evals = 0u64;
            for (slot, filled) in results.iter_mut().zip(fill) {
                if let Some(r) = filled {
                    seed_evals += 1;
                    scale_evals += r.ladder.len() as u64;
                    *slot = Some(r);
                }
            }
            // How much the speculative fill actually computed — depends on
            // worker timing, hence `par.`.
            self.rec.add("par.speculative.seed_evals", seed_evals);
            self.rec.add("par.speculative.scale_evals", scale_evals);
        }

        // Deterministic selection: replay the serial feedback loops. All
        // non-`par.` counters are emitted here, from the consumed outcomes
        // only, so their values are independent of the thread count.
        let rec = self.rec;
        let unbounded = AtomicUsize::new(usize::MAX);
        let mut first_err: Option<CompileError> = None;
        for (sidx, slot) in results.iter_mut().enumerate() {
            let seed_result = slot
                .take()
                .unwrap_or_else(|| self.eval_seed_full(sidx, &unbounded));
            rec.add("search.seeds_walked", 1);
            let ev = match seed_result.seed_out {
                SeedOutcome::Viable(ev) => ev,
                SeedOutcome::Utilization { err, restarts } => {
                    rec.add("assign_paths.restarts", restarts);
                    rec.add("search.outcome.utilization_exceeded", 1);
                    self.record_candidate(
                        sidx,
                        None,
                        CandidateOutcome::UtilizationExceeded,
                        err.to_string(),
                    );
                    first_err.get_or_insert(err);
                    continue;
                }
            };
            rec.add("assign_paths.restarts", ev.restarts);
            // A speculative ladder may have been truncated by the rank
            // watermark. The walk only reaches such a seed when every
            // lower-ranked candidate failed — in which case the watermark
            // that truncated it has since been proven stale — so re-derive
            // the whole ladder (the warm-basis chain must restart from rung
            // 0 to reproduce the serial result exactly).
            let terminal = seed_result
                .ladder
                .last()
                .is_some_and(|(out, _)| !matches!(out, ScaleOutcome::Unschedulable(_)));
            let ladder = if terminal || seed_result.ladder.len() == num_scales {
                seed_result.ladder
            } else {
                self.eval_ladder(&ev, sidx, &unbounded)
            };
            let mut last_err: Option<CompileError> = None;
            let mut seed_err: Option<CompileError> = None;
            for (si, (out, stats)) in ladder.into_iter().enumerate() {
                let rank = sidx * num_scales + si;
                rec.add("search.candidates_walked", 1);
                self.report_scale_stats(&stats);
                match out {
                    ScaleOutcome::Scheduled {
                        allocation,
                        interval_schedules,
                    } => {
                        rec.add("search.outcome.scheduled", 1);
                        rec.add("search.winner.rank", rank as u64);
                        rec.add("search.winner.seed", sidx as u64);
                        rec.add(
                            "search.winner.scale_permille",
                            (self.scales[si] * 1000.0).round() as u64,
                        );
                        rec.add(
                            "interval_sched.scheduled_intervals",
                            interval_schedules.len() as u64,
                        );
                        rec.add(
                            "interval_sched.slices",
                            interval_schedules
                                .iter()
                                .map(|is| is.slices.len() as u64)
                                .sum(),
                        );
                        self.record_candidate(
                            sidx,
                            Some(self.scales[si]),
                            CandidateOutcome::Scheduled,
                            format!("winner at rank {rank}, peak utilization {:.3}", ev.peak),
                        );
                        let span = sr_obs::span(rec, "phase.build_node_schedules");
                        let (segments, node_schedules) =
                            build_node_schedules(&ev.assignment, &interval_schedules, self.topo);
                        drop(span);
                        return Ok(Schedule {
                            period: self.period,
                            peak_utilization: ev.peak,
                            baseline_peak: ev.baseline_peak,
                            bounds: self.bounds.clone(),
                            assignment: ev.assignment,
                            intervals: self.intervals.clone(),
                            activity: self.activity.clone(),
                            allocation,
                            interval_schedules,
                            segments,
                            node_schedules,
                            capacity_scale: self.scales[si],
                            guard_time: self.config.guard_time,
                        });
                    }
                    ScaleOutcome::Unschedulable(e) => {
                        rec.add("search.outcome.interval_unschedulable", 1);
                        self.record_candidate(
                            sidx,
                            Some(self.scales[si]),
                            CandidateOutcome::IntervalUnschedulable,
                            e.to_string(),
                        );
                        last_err = Some(e);
                    }
                    ScaleOutcome::AllocInfeasible(e) => {
                        rec.add("search.outcome.alloc_infeasible", 1);
                        self.record_candidate(
                            sidx,
                            Some(self.scales[si]),
                            CandidateOutcome::AllocInfeasible,
                            e.to_string(),
                        );
                        self.record_infeasible_subset(sidx, si, &e, &ev);
                        // At full capacity the subset itself is infeasible:
                        // that is this seed's report. Deeper in the scale
                        // ladder, the tightened capacities caused it —
                        // report the interval-scheduling failure that sent
                        // us down the ladder instead.
                        seed_err = Some(if si == 0 {
                            e
                        } else {
                            last_err.take().expect("a scale ran before the break")
                        });
                        break;
                    }
                    ScaleOutcome::Hard(e) => {
                        rec.add("search.outcome.hard_error", 1);
                        self.record_candidate(
                            sidx,
                            Some(self.scales[si]),
                            CandidateOutcome::HardError,
                            e.to_string(),
                        );
                        return Err(e);
                    }
                }
            }
            let e = seed_err
                .or(last_err)
                .expect("at least one scale candidate ran");
            first_err.get_or_insert(e);
        }
        Err(first_err.expect("at least one seed ran"))
    }

    /// Appends one candidate record to the diagnosis sink (no-op unless
    /// compiled via [`compile_diagnosed`]). Called from the serial walk
    /// only, so record order is deterministic.
    fn record_candidate(
        &self,
        seed: usize,
        scale: Option<f64>,
        outcome: CandidateOutcome,
        detail: String,
    ) {
        if let Some(d) = self.diag {
            let mut d = d.lock().unwrap_or_else(|p| p.into_inner());
            d.candidates.push(CandidateRecord {
                seed,
                scale,
                outcome,
                detail,
            });
        }
    }

    /// On an allocation-infeasible candidate, re-solves the failing subset
    /// LP for its Farkas certificate and stores the first explanation in
    /// the diagnosis sink (later candidates dying of the same cause don't
    /// overwrite it — the walk's report is the first one, too).
    fn record_infeasible_subset(&self, sidx: usize, si: usize, e: &CompileError, ev: &SeedEval) {
        let Some(d) = self.diag else { return };
        let CompileError::AllocationInfeasible { subset } = e else {
            return;
        };
        if d.lock().unwrap_or_else(|p| p.into_inner()).subset.is_some() {
            return;
        }
        let effective = self.scales[si] * (1.0 - self.config.spare_capacity);
        if let Some(mut sd) = crate::diagnosis::diagnose_infeasible_subset(
            &ev.assignment,
            self.bounds,
            self.activity,
            self.intervals,
            subset,
            effective,
        ) {
            sd.seed = sidx;
            let mut g = d.lock().unwrap_or_else(|p| p.into_inner());
            if g.subset.is_none() {
                g.subset = Some(sd);
            }
        }
    }

    /// Turns one consumed candidate's [`ScaleStats`] into counters.
    fn report_scale_stats(&self, stats: &ScaleStats) {
        let rec = self.rec;
        if !rec.enabled() {
            return;
        }
        rec.add("alloc_lp.solves", stats.alloc.lp_solves);
        rec.add("alloc_lp.vars", stats.alloc.vars);
        rec.add("alloc_lp.constraints", stats.alloc.constraints);
        add_lp_counters(rec, "alloc_lp", &stats.alloc.lp);
        // Flow-engine work; under the simplex engine the namespace is
        // absent entirely so the default counter set is unchanged.
        if self.config.alloc_engine == AllocEngine::Flow {
            rec.add("alloc_flow.solves", stats.flow.solves);
            rec.add("alloc_flow.nodes", stats.flow.nodes);
            rec.add("alloc_flow.arcs", stats.flow.arcs);
            rec.add("alloc_flow.augmentations", stats.flow.augmentations);
            rec.add("alloc_flow.dijkstra_pops", stats.flow.dijkstra_pops);
            rec.add(
                "alloc_flow.potential_reuse_hits",
                stats.flow.potential_reuse_hits,
            );
            rec.add("alloc_flow.fallbacks", stats.flow.fallbacks);
        }
        rec.add("sched_lp.solves", stats.isched.lp_solves);
        add_lp_counters(rec, "sched_lp", &stats.isched.lp);
        rec.add("interval_sched.feasible_sets", stats.isched.feasible_sets);
        rec.add("interval_sched.arena_cells", stats.isched.arena_cells);
        rec.add(
            "interval_sched.singleton_fast_paths",
            stats.isched.singleton_fast_paths,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::{generators, TfgBuilder};
    use sr_topology::GeneralizedHypercube;

    #[test]
    fn compiles_simple_chain() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(4, 500, 640);
        let timing = Timing::new(64.0, 10.0); // exec 50, tx 10
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .expect("chain compiles");
        assert_eq!(sched.period(), 60.0);
        assert!(sched.peak_utilization() <= 1.0 + 1e-6);
        assert!(sched.latency() >= timing.critical_path(&tfg) - 1e-9);
        assert_eq!(sched.capacity_scale(), 1.0);
        assert!(!sched.segments().is_empty());
        // Every message's segments add to its duration.
        for (i, w) in sched.bounds().windows().iter().enumerate() {
            if sched.assignment().links(sr_tfg::MessageId(i)).is_empty() {
                continue;
            }
            let total: f64 = sched
                .segments()
                .iter()
                .filter(|s| s.message == sr_tfg::MessageId(i))
                .map(|s| s.duration())
                .sum();
            assert!((total - w.duration()).abs() < 1e-5, "message {i}: {total}");
        }
    }

    #[test]
    fn recorder_observes_phases_and_counters() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(4, 500, 640);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let rec = sr_obs::MetricsRecorder::new();
        let sched = compile_with_recorder(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
            &rec,
        )
        .expect("chain compiles under a recorder");
        // Identical to the uninstrumented compile (bit-identical artifacts).
        let plain = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .unwrap();
        assert_eq!(sched.assignment(), plain.assignment());
        assert_eq!(sched.capacity_scale(), plain.capacity_scale());

        let counters = rec.counters();
        assert_eq!(counters["compile.messages"], tfg.num_messages() as u64);
        assert_eq!(counters["search.outcome.scheduled"], 1);
        assert_eq!(counters["search.seeds_walked"], 1);
        assert!(counters["alloc_lp.solves"] > 0);
        assert!(counters["alloc_lp.pivots"] > 0);
        let names: Vec<String> = rec.spans().into_iter().map(|s| s.name).collect();
        for phase in [
            "compile",
            "phase.time_bounds",
            "phase.assign_paths",
            "candidate",
            "phase.allocate_intervals",
            "phase.schedule_intervals",
            "phase.build_node_schedules",
        ] {
            assert!(names.iter().any(|n| n == phase), "missing span {phase}");
        }
    }

    #[test]
    fn rejects_overloaded_network() {
        // One link, two fat messages that cannot fit in the frame.
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 200); // exec 20: AP demand stays feasible
        let t1 = b.task("t1", 200);
        let t2 = b.task("t2", 200);
        b.message("m0", t0, t1, 1920).unwrap(); // 30 µs
        b.message("m1", t1, t2, 1920).unwrap(); // 30 µs
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // τ_c = 20
        let alloc = Allocation::new(
            vec![
                sr_topology::NodeId(0),
                sr_topology::NodeId(1),
                sr_topology::NodeId(0),
            ],
            &tfg,
            &topo,
        )
        .unwrap();
        // 60 µs of traffic must cross the single link every 50 µs period.
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            50.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CompileError::UtilizationExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_period_below_longest_task() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(2, 500, 64);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            10.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TimeBounds(_)));
    }

    #[test]
    fn colocated_overload_rejected() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(3, 500, 64); // exec 50 each
        let timing = Timing::new(64.0, 10.0);
        // All three tasks on one node: 150 µs of work per 60 µs period.
        let alloc = Allocation::new(vec![sr_topology::NodeId(1); 3], &tfg, &topo).unwrap();
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CompileError::NodeOverloaded { .. }),
            "got {err:?}"
        );
        // A long-enough period admits the same placement.
        assert!(compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            160.0,
            &CompileConfig::default()
        )
        .is_ok());
    }

    #[test]
    fn allocation_arity_checked() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(2, 500, 64);
        let other = generators::chain(3, 500, 64);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&other, &topo);
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::AllocationMismatch { .. }));
    }

    #[test]
    fn greedy_scheduler_compiles_and_verifies() {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(4, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let config = CompileConfig {
            greedy_interval_scheduling: true,
            ..CompileConfig::default()
        };
        let sched = compile(&topo, &tfg, &alloc, &timing, 80.0, &config)
            .expect("greedy scheduler compiles the diamond");
        crate::verify(&sched, &topo, &tfg).expect("greedy schedules verify too");
    }

    #[test]
    fn guard_time_separates_and_costs_feasibility() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);

        // Moderate guard: compiles; every pair of segments on a shared link
        // is separated by >= guard.
        let config = CompileConfig {
            guard_time: 2.0,
            ..CompileConfig::default()
        };
        let sched =
            compile(&topo, &tfg, &alloc, &timing, 75.0, &config).expect("compiles with 2 µs guard");
        crate::verify(&sched, &topo, &tfg).expect("verifies with guard check");
        assert_eq!(sched.guard_time(), 2.0);
        // Directly inspect separations per link.
        for l in 0..sr_topology::Topology::num_links(&topo) {
            let link = sr_topology::LinkId(l);
            let mut spans: Vec<(f64, f64, sr_tfg::MessageId)> = sched
                .segments()
                .iter()
                .filter(|s| sched.assignment().links(s.message).contains(&link))
                .map(|s| (s.start, s.end, s.message))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                if w[0].2 != w[1].2 {
                    assert!(
                        w[1].0 - w[0].1 >= 2.0 - 1e-6,
                        "guard violated on {link}: {w:?}"
                    );
                }
            }
        }

        // Absurd guard: scheduling must fail, typed.
        let config = CompileConfig {
            guard_time: 100.0,
            ..CompileConfig::default()
        };
        let err = compile(&topo, &tfg, &alloc, &timing, 75.0, &config).unwrap_err();
        assert!(
            matches!(err, CompileError::IntervalUnschedulable { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn spare_capacity_tightens_both_gates() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);

        // Moderate headroom: still compiles, and every link stays at most
        // (1-ε)-full in every interval.
        let eps = 0.2;
        let config = CompileConfig {
            spare_capacity: eps,
            ..CompileConfig::default()
        };
        let sched =
            compile(&topo, &tfg, &alloc, &timing, 75.0, &config).expect("compiles with ε=0.2");
        assert!(sched.peak_utilization() <= 1.0 - eps + 1e-6);
        crate::verify(&sched, &topo, &tfg).expect("spare-capacity schedule verifies");
        for k in 0..sched.intervals().len() {
            let cap = (1.0 - eps) * sched.intervals().length(k);
            for l in 0..sr_topology::Topology::num_links(&topo) {
                let used: f64 = (0..tfg.num_messages())
                    .map(sr_tfg::MessageId)
                    .filter(|&m| sched.assignment().uses(m, sr_topology::LinkId(l)))
                    .map(|m| sched.allocation().allocated(m, k))
                    .sum();
                assert!(
                    used <= cap * sched.capacity_scale() + 1e-6,
                    "interval {k} link {l}: {used} > {cap}"
                );
            }
        }

        // Absurd headroom: the schedulability gate rejects the workload.
        let config = CompileConfig {
            spare_capacity: 0.95,
            ..CompileConfig::default()
        };
        let err = compile(&topo, &tfg, &alloc, &timing, 75.0, &config).unwrap_err();
        assert!(
            matches!(err, CompileError::UtilizationExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn patched_with_identical_artifacts_reproduces_the_schedule() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            75.0,
            &CompileConfig::default(),
        )
        .unwrap();
        let patched = sched.patched(
            sched.assignment.clone(),
            sched.allocation.clone(),
            sched.interval_schedules.clone(),
            &topo,
        );
        assert_eq!(patched.segments, sched.segments);
        assert_eq!(patched.node_schedules, sched.node_schedules);
        assert_eq!(patched.peak_utilization, sched.peak_utilization);
        assert_eq!(patched.period, sched.period);
        crate::verify(&patched, &topo, &tfg).expect("patched identity verifies");
    }

    #[test]
    fn flow_engine_agrees_with_simplex_oracle() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let timing = Timing::new(64.0, 10.0);
        for (tfg, period) in [
            (generators::chain(4, 500, 640), 60.0),
            (generators::diamond(3, 500, 1280), 75.0),
        ] {
            let alloc = sr_mapping::greedy(&tfg, &topo);
            let simplex = compile(
                &topo,
                &tfg,
                &alloc,
                &timing,
                period,
                &CompileConfig::default(),
            );
            let flow = compile(
                &topo,
                &tfg,
                &alloc,
                &timing,
                period,
                &CompileConfig {
                    alloc_engine: AllocEngine::Flow,
                    ..CompileConfig::default()
                },
            );
            // Same verdict; both schedules verify; same winning candidate.
            let (simplex, flow) = (simplex.unwrap(), flow.unwrap());
            crate::verify(&flow, &topo, &tfg).expect("flow schedule verifies");
            assert_eq!(flow.capacity_scale(), simplex.capacity_scale());
            assert_eq!(flow.assignment(), simplex.assignment());
            assert_eq!(flow.peak_utilization(), simplex.peak_utilization());
        }
    }

    #[test]
    fn flow_engine_rejects_what_simplex_rejects() {
        // The overloaded single-link workload from rejects_overloaded_network
        // trips the utilization gate before allocation; shrink it so the
        // allocation stage itself must produce the verdict.
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 200);
        let t1 = b.task("t1", 200);
        let t2 = b.task("t2", 200);
        b.message("m0", t0, t1, 1280).unwrap(); // 20 µs
        b.message("m1", t1, t2, 1280).unwrap(); // 20 µs
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0);
        let alloc = Allocation::new(
            vec![
                sr_topology::NodeId(0),
                sr_topology::NodeId(1),
                sr_topology::NodeId(0),
            ],
            &tfg,
            &topo,
        )
        .unwrap();
        for engine in [AllocEngine::Simplex, AllocEngine::Flow] {
            let config = CompileConfig {
                alloc_engine: engine,
                ..CompileConfig::default()
            };
            assert!(
                compile(&topo, &tfg, &alloc, &timing, 41.0, &config).is_err(),
                "{engine:?} must reject the overloaded link"
            );
            assert!(
                compile(&topo, &tfg, &alloc, &timing, 80.0, &config).is_ok(),
                "{engine:?} must accept the relaxed period"
            );
        }
    }

    #[test]
    fn flow_engine_reports_its_counter_namespace() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(4, 500, 640);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let rec = sr_obs::MetricsRecorder::new();
        compile_with_recorder(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig {
                alloc_engine: AllocEngine::Flow,
                ..CompileConfig::default()
            },
            &rec,
        )
        .expect("flow compile succeeds");
        let counters = rec.counters();
        assert!(counters["alloc_flow.solves"] > 0);
        assert!(counters["alloc_flow.arcs"] > 0);
        assert_eq!(counters["alloc_flow.fallbacks"], 0);
        // The subset LPs were never touched.
        assert_eq!(counters["alloc_lp.solves"], 0);
    }

    #[test]
    fn partitioned_compile_verifies_and_is_parallelism_invariant() {
        let topo = sr_topology::Torus::new(&[4, 4]).unwrap();
        let tfg = sr_tfg::dvb_uniform(4);
        let timing = Timing::calibrated_dvb(128.0);
        let alloc = sr_mapping::random_distinct(&tfg, &topo, 7).unwrap();
        let period = timing.longest_task(&tfg) * 2.0;
        let serial = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig {
                partition: 4,
                parallelism: 1,
                ..Default::default()
            },
        )
        .expect("partitioned compile succeeds");
        crate::verify(&serial, &topo, &tfg).expect("partitioned schedule verifies");
        let parallel = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            period,
            &CompileConfig {
                partition: 4,
                parallelism: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.assignment(), parallel.assignment());
        assert_eq!(serial.capacity_scale(), parallel.capacity_scale());
        assert_eq!(serial.peak_utilization(), parallel.peak_utilization());
    }

    #[test]
    fn compiles_dvb_on_cube_at_max_rate() {
        let topo = GeneralizedHypercube::binary(6).unwrap();
        let tfg = sr_tfg::dvb_uniform(6);
        let timing = Timing::calibrated_dvb(128.0); // lighter network load
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            50.0,
            &CompileConfig::default(),
        )
        .expect("DVB at B=128 compiles at max rate");
        assert!(sched.peak_utilization() <= 1.0 + 1e-6);
        crate::verify(&sched, &topo, &tfg).expect("schedule verifies");
    }
}
