use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use sr_mapping::Allocation;
use sr_tfg::{MessageId, TaskFlowGraph, TimeBounds, Timing, WindowPolicy};
use sr_topology::{NodeId, Topology};

use crate::interval_sched::{schedule_intervals_greedy, schedule_intervals_guarded};
use crate::{
    allocate_intervals, assign_paths_pooled, build_node_schedules, related_subsets, ActivityMatrix,
    AssignPathsConfig, CompileError, IntervalAllocation, IntervalSchedule, Intervals, NodeSchedule,
    PathAssignment, PathPool, Segment,
};

/// Configuration of the end-to-end scheduled-routing compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileConfig {
    /// Message window policy (paper default: one longest-task length).
    pub window_policy: WindowPolicy,
    /// Path-assignment heuristic knobs.
    pub assign_paths: AssignPathsConfig,
    /// Cap on link-feasible sets enumerated per interval.
    pub max_feasible_sets: usize,
    /// Slack allowed on the `U ≤ 1` schedulability test.
    pub utilization_tolerance: f64,
    /// Capacity scales tried for message–interval allocation. The first
    /// entry should be 1.0; later (smaller) entries implement the paper's
    /// suggested *feedback*: if interval scheduling fails, re-allocate with
    /// tighter per-interval link capacities, which spreads messages across
    /// more intervals and usually makes the intervals schedulable.
    pub feedback_scales: Vec<f64>,
    /// Additional `AssignPaths` seeds tried when allocation or interval
    /// scheduling fails (a second feedback loop from §7: the path
    /// assignment constrains everything downstream, so a different
    /// same-peak assignment often compiles).
    pub path_retry_seeds: usize,
    /// Use the greedy list scheduler instead of the \[BDW86\] LP for
    /// interval scheduling (an ablation: faster, occasionally fails where
    /// the LP succeeds).
    pub greedy_interval_scheduling: bool,
    /// Clock-skew guard time (µs) reserved before every transmission slice
    /// — the paper's §7 margin for CP synchronization ("twice the maximum
    /// difference between two clocks"). Zero assumes perfectly synchronized
    /// communication processors.
    pub guard_time: f64,
    /// Worker threads for the feedback search over `(path seed, capacity
    /// scale)` candidates: `0` = one worker per hardware thread, `1` =
    /// fully serial, `n` = at most `n` workers. Any setting returns the
    /// exact schedule the serial search would: candidates are ranked by
    /// `(seed, scale)` and the lowest-ranked success wins.
    pub parallelism: usize,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            window_policy: WindowPolicy::LongestTask,
            assign_paths: AssignPathsConfig::default(),
            max_feasible_sets: 50_000,
            utilization_tolerance: 1e-6,
            feedback_scales: vec![1.0, 0.9, 0.8, 0.7],
            path_retry_seeds: 3,
            greedy_interval_scheduling: false,
            guard_time: 0.0,
            parallelism: 0,
        }
    }
}

/// A compiled communication schedule `Ω` and every artifact that produced
/// it.
///
/// Produced by [`compile`]; replayable/checkable with [`crate::verify`].
/// When compilation succeeds, the multicomputer sustains exactly one TFG
/// invocation per period — constant throughput with latency
/// [`Schedule::latency`] — with zero run-time flow-control.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub(crate) period: f64,
    pub(crate) bounds: TimeBounds,
    pub(crate) assignment: PathAssignment,
    pub(crate) intervals: Intervals,
    pub(crate) activity: ActivityMatrix,
    pub(crate) allocation: IntervalAllocation,
    pub(crate) interval_schedules: Vec<IntervalSchedule>,
    pub(crate) segments: Vec<Segment>,
    pub(crate) node_schedules: Vec<NodeSchedule>,
    pub(crate) peak_utilization: f64,
    pub(crate) baseline_peak: f64,
    pub(crate) capacity_scale: f64,
    pub(crate) guard_time: f64,
}

impl Schedule {
    /// The invocation period `τ_in` the schedule sustains, in µs.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Invocation latency implied by the time bounds, in µs (the paper's
    /// "critical path length obtained after assigning time bounds").
    pub fn latency(&self) -> f64 {
        self.bounds.latency()
    }

    /// Peak utilization `U` of the final path assignment.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_utilization
    }

    /// Peak utilization of the LSD-to-MSD baseline assignment (what Figs.
    /// 5–6 compare against).
    pub fn baseline_peak_utilization(&self) -> f64 {
        self.baseline_peak
    }

    /// The message time bounds.
    pub fn bounds(&self) -> &TimeBounds {
        &self.bounds
    }

    /// The final path assignment.
    pub fn assignment(&self) -> &PathAssignment {
        &self.assignment
    }

    /// The interval partition of the period frame.
    pub fn intervals(&self) -> &Intervals {
        &self.intervals
    }

    /// The message activity matrix.
    pub fn activity(&self) -> &ActivityMatrix {
        &self.activity
    }

    /// The message–interval allocation matrix `P`.
    pub fn allocation(&self) -> &IntervalAllocation {
        &self.allocation
    }

    /// The per-interval link-feasible-set schedules.
    pub fn interval_schedules(&self) -> &[IntervalSchedule] {
        &self.interval_schedules
    }

    /// Every message transmission segment, sorted by start time.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All node switching schedules, indexable by node.
    pub fn node_schedules(&self) -> &[NodeSchedule] {
        &self.node_schedules
    }

    /// The switching schedule `ω_i` of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_schedule(&self, node: NodeId) -> &NodeSchedule {
        &self.node_schedules[node.index()]
    }

    /// The message–interval allocation capacity scale that succeeded (1.0
    /// unless the feedback loop had to tighten).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// The clock-skew guard time the schedule was compiled with, µs.
    pub fn guard_time(&self) -> f64 {
        self.guard_time
    }
}

/// Compiles a scheduled-routing communication schedule `Ω` for pipelining
/// `tfg` on `topo` with input period `period` (µs) — the full Fig. 3
/// pipeline (see the crate docs for the stage list).
///
/// # Errors
///
/// Every stage's failure is reported as the corresponding
/// [`CompileError`] variant: bad time bounds, peak utilization above 1,
/// infeasible message–interval allocation, or an unschedulable interval
/// (after exhausting the feedback scales).
pub fn compile(
    topo: &dyn Topology,
    tfg: &TaskFlowGraph,
    alloc: &Allocation,
    timing: &Timing,
    period: f64,
    config: &CompileConfig,
) -> Result<Schedule, CompileError> {
    if alloc.placement().len() != tfg.num_tasks() {
        return Err(CompileError::AllocationMismatch {
            alloc_tasks: alloc.placement().len(),
            tfg_tasks: tfg.num_tasks(),
        });
    }
    let bounds = sr_tfg::assign_time_bounds(tfg, timing, period, config.window_policy)?;
    // Application-processor capacity: co-located tasks share one AP, so
    // their total execution demand must fit the period (the paper assumes
    // one task per processor; this check makes the assumption explicit).
    // Dense per-node accumulation so the reported node is always the
    // lowest-indexed offender (a HashMap here made the error message
    // depend on iteration order).
    {
        let mut demand = vec![0.0f64; topo.num_nodes()];
        for (id, task) in tfg.iter_tasks() {
            demand[alloc.node_of(id).index()] += timing.exec_time(task);
        }
        for (node, &d) in demand.iter().enumerate() {
            if d > period + 1e-9 {
                return Err(CompileError::NodeOverloaded {
                    node: NodeId(node),
                    demand: d,
                    period,
                });
            }
        }
    }
    let intervals = Intervals::from_bounds(&bounds);
    let activity = ActivityMatrix::new(&bounds, &intervals);

    let ctx = SearchCtx {
        topo,
        tfg,
        alloc,
        bounds: &bounds,
        intervals: &intervals,
        activity: &activity,
        config,
        period,
        scales: if config.feedback_scales.is_empty() {
            vec![1.0]
        } else {
            config.feedback_scales.clone()
        },
        // Shared across every seed retry (and worker thread): candidate
        // paths depend on endpoints only, so each pair is enumerated once
        // per compile instead of once per retry.
        pool: PathPool::new(topo, config.assign_paths.path_cap),
    };
    ctx.search(sr_par::effective_threads(config.parallelism))
}

/// One seed's path-assignment stage: either the assignment is viable
/// (peak utilization within capacity) or the seed fails outright.
enum SeedOutcome {
    Viable(SeedEval),
    Utilization(CompileError),
}

/// The artifacts every `(seed, scale)` candidate of one seed shares.
struct SeedEval {
    peak: f64,
    baseline_peak: f64,
    assignment: PathAssignment,
    subsets: Vec<Vec<MessageId>>,
}

/// One `(seed, scale)` candidate's allocate-then-schedule stage.
enum ScaleOutcome {
    Scheduled {
        allocation: IntervalAllocation,
        interval_schedules: Vec<IntervalSchedule>,
    },
    Unschedulable(CompileError),
    AllocInfeasible(CompileError),
    Hard(CompileError),
}

/// Shared inputs of the feedback search over `(seed, scale)` candidates.
struct SearchCtx<'a> {
    topo: &'a dyn Topology,
    tfg: &'a TaskFlowGraph,
    alloc: &'a Allocation,
    bounds: &'a TimeBounds,
    intervals: &'a Intervals,
    activity: &'a ActivityMatrix,
    config: &'a CompileConfig,
    period: f64,
    scales: Vec<f64>,
    pool: PathPool<'a>,
}

impl SearchCtx<'_> {
    /// Runs `AssignPaths` for retry index `sidx` and prepares the
    /// downstream artifacts. Deterministic per `sidx`.
    fn eval_seed(&self, sidx: usize) -> SeedOutcome {
        let ap_config = AssignPathsConfig {
            seed: self.config.assign_paths.seed.wrapping_add(sidx as u64),
            ..self.config.assign_paths
        };
        let outcome = assign_paths_pooled(
            self.tfg,
            self.topo,
            self.alloc,
            self.bounds,
            self.intervals,
            self.activity,
            &ap_config,
            &self.pool,
        );
        let peak = outcome.utilization.effective_peak();
        if peak > 1.0 + self.config.utilization_tolerance {
            // The heuristic is deterministic-per-seed but the peak won't
            // drop below capacity by reseeding alone once it converged;
            // other seeds are still tried, keeping the first report.
            return SeedOutcome::Utilization(CompileError::UtilizationExceeded {
                utilization: peak,
            });
        }
        let subsets = related_subsets(&outcome.assignment, self.activity);
        SeedOutcome::Viable(SeedEval {
            peak,
            baseline_peak: outcome.baseline_peak,
            assignment: outcome.assignment,
            subsets,
        })
    }

    /// Allocates message–interval shares at `scale` capacity and schedules
    /// the intervals. Deterministic per `(seed artifacts, scale)`.
    fn eval_scale(&self, ev: &SeedEval, scale: f64) -> ScaleOutcome {
        let allocation = match allocate_intervals(
            &ev.assignment,
            self.bounds,
            self.activity,
            self.intervals,
            &ev.subsets,
            scale,
        ) {
            Ok(a) => a,
            Err(e @ CompileError::AllocationInfeasible { .. }) => {
                return ScaleOutcome::AllocInfeasible(e)
            }
            Err(e) => return ScaleOutcome::Hard(e),
        };
        let scheduled = if self.config.greedy_interval_scheduling {
            schedule_intervals_greedy(
                &ev.assignment,
                &allocation,
                self.intervals,
                &ev.subsets,
                self.config.guard_time,
            )
        } else {
            schedule_intervals_guarded(
                &ev.assignment,
                &allocation,
                self.intervals,
                &ev.subsets,
                self.config.max_feasible_sets,
                self.config.guard_time,
            )
        };
        match scheduled {
            Ok(interval_schedules) => ScaleOutcome::Scheduled {
                allocation,
                interval_schedules,
            },
            Err(e @ CompileError::IntervalUnschedulable { .. }) => ScaleOutcome::Unschedulable(e),
            Err(e) => ScaleOutcome::Hard(e),
        }
    }

    /// The feedback search over the `(seed, scale)` candidate grid.
    ///
    /// Selection is a serial replay of the paper's feedback loops over
    /// candidate ranks `(seed-major, scale-minor)`; any candidate the walk
    /// needs that has no precomputed result is evaluated on the spot. With
    /// `threads > 1` the grid is speculatively filled first by a worker
    /// pool (scale-major claim order, so every seed's first-choice
    /// candidate starts early), with an atomic rank watermark cancelling
    /// candidates that can no longer win. Either way the walk — and hence
    /// the returned schedule or error — is identical to a fully serial
    /// search, because every stage is a deterministic function of its
    /// inputs.
    fn search(&self, threads: usize) -> Result<Schedule, CompileError> {
        let num_seeds = self.config.path_retry_seeds + 1;
        let num_scales = self.scales.len();

        let mut seeds: Vec<Option<SeedOutcome>> = (0..num_seeds).map(|_| None).collect();
        let mut slots: Vec<Option<ScaleOutcome>> =
            (0..num_seeds * num_scales).map(|_| None).collect();

        if threads > 1 {
            // Speculative parallel fill. `best` is the lowest candidate
            // rank known to have scheduled; anything ranked above it is
            // skipped (the walk re-evaluates lazily in the rare case a
            // skipped candidate still matters).
            let seed_cells: Vec<OnceLock<SeedOutcome>> =
                (0..num_seeds).map(|_| OnceLock::new()).collect();
            let best = AtomicUsize::new(usize::MAX);
            let jobs: Vec<(usize, usize)> = (0..num_scales)
                .flat_map(|si| (0..num_seeds).map(move |sidx| (sidx, si)))
                .collect();
            let results = sr_par::par_map(&jobs, threads, |&(sidx, si)| {
                let rank = sidx * num_scales + si;
                if rank > best.load(Ordering::Relaxed) {
                    return None;
                }
                let seed_out = seed_cells[sidx].get_or_init(|| self.eval_seed(sidx));
                let SeedOutcome::Viable(ev) = seed_out else {
                    return None;
                };
                let out = self.eval_scale(ev, self.scales[si]);
                if matches!(out, ScaleOutcome::Scheduled { .. }) {
                    best.fetch_min(rank, Ordering::Relaxed);
                }
                Some((rank, out))
            });
            for (rank, out) in results.into_iter().flatten() {
                slots[rank] = Some(out);
            }
            for (cell, seed) in seed_cells.into_iter().zip(seeds.iter_mut()) {
                *seed = cell.into_inner();
            }
        }

        // Deterministic selection: replay the serial feedback loops.
        let mut first_err: Option<CompileError> = None;
        for (sidx, seed_cell) in seeds.iter_mut().enumerate() {
            let seed_out = seed_cell.take().unwrap_or_else(|| self.eval_seed(sidx));
            let ev = match seed_out {
                SeedOutcome::Viable(ev) => ev,
                SeedOutcome::Utilization(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            let mut last_err: Option<CompileError> = None;
            let mut seed_err: Option<CompileError> = None;
            for si in 0..num_scales {
                let rank = sidx * num_scales + si;
                let out = slots[rank]
                    .take()
                    .unwrap_or_else(|| self.eval_scale(&ev, self.scales[si]));
                match out {
                    ScaleOutcome::Scheduled {
                        allocation,
                        interval_schedules,
                    } => {
                        let (segments, node_schedules) =
                            build_node_schedules(&ev.assignment, &interval_schedules, self.topo);
                        return Ok(Schedule {
                            period: self.period,
                            peak_utilization: ev.peak,
                            baseline_peak: ev.baseline_peak,
                            bounds: self.bounds.clone(),
                            assignment: ev.assignment,
                            intervals: self.intervals.clone(),
                            activity: self.activity.clone(),
                            allocation,
                            interval_schedules,
                            segments,
                            node_schedules,
                            capacity_scale: self.scales[si],
                            guard_time: self.config.guard_time,
                        });
                    }
                    ScaleOutcome::Unschedulable(e) => {
                        last_err = Some(e);
                    }
                    ScaleOutcome::AllocInfeasible(e) => {
                        // At full capacity the subset itself is infeasible:
                        // that is this seed's report. Deeper in the scale
                        // ladder, the tightened capacities caused it —
                        // report the interval-scheduling failure that sent
                        // us down the ladder instead.
                        seed_err = Some(if si == 0 {
                            e
                        } else {
                            last_err.take().expect("a scale ran before the break")
                        });
                        break;
                    }
                    ScaleOutcome::Hard(e) => return Err(e),
                }
            }
            let e = seed_err
                .or(last_err)
                .expect("at least one scale candidate ran");
            first_err.get_or_insert(e);
        }
        Err(first_err.expect("at least one seed ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_mapping::Allocation;
    use sr_tfg::{generators, TfgBuilder};
    use sr_topology::GeneralizedHypercube;

    #[test]
    fn compiles_simple_chain() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(4, 500, 640);
        let timing = Timing::new(64.0, 10.0); // exec 50, tx 10
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .expect("chain compiles");
        assert_eq!(sched.period(), 60.0);
        assert!(sched.peak_utilization() <= 1.0 + 1e-6);
        assert!(sched.latency() >= timing.critical_path(&tfg) - 1e-9);
        assert_eq!(sched.capacity_scale(), 1.0);
        assert!(!sched.segments().is_empty());
        // Every message's segments add to its duration.
        for (i, w) in sched.bounds().windows().iter().enumerate() {
            if sched.assignment().links(sr_tfg::MessageId(i)).is_empty() {
                continue;
            }
            let total: f64 = sched
                .segments()
                .iter()
                .filter(|s| s.message == sr_tfg::MessageId(i))
                .map(|s| s.duration())
                .sum();
            assert!((total - w.duration()).abs() < 1e-5, "message {i}: {total}");
        }
    }

    #[test]
    fn rejects_overloaded_network() {
        // One link, two fat messages that cannot fit in the frame.
        let topo = GeneralizedHypercube::binary(1).unwrap();
        let mut b = TfgBuilder::new();
        let t0 = b.task("t0", 200); // exec 20: AP demand stays feasible
        let t1 = b.task("t1", 200);
        let t2 = b.task("t2", 200);
        b.message("m0", t0, t1, 1920).unwrap(); // 30 µs
        b.message("m1", t1, t2, 1920).unwrap(); // 30 µs
        let tfg = b.build().unwrap();
        let timing = Timing::new(64.0, 10.0); // τ_c = 20
        let alloc = Allocation::new(
            vec![
                sr_topology::NodeId(0),
                sr_topology::NodeId(1),
                sr_topology::NodeId(0),
            ],
            &tfg,
            &topo,
        )
        .unwrap();
        // 60 µs of traffic must cross the single link every 50 µs period.
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            50.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CompileError::UtilizationExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_period_below_longest_task() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(2, 500, 64);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            10.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TimeBounds(_)));
    }

    #[test]
    fn colocated_overload_rejected() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(3, 500, 64); // exec 50 each
        let timing = Timing::new(64.0, 10.0);
        // All three tasks on one node: 150 µs of work per 60 µs period.
        let alloc = Allocation::new(vec![sr_topology::NodeId(1); 3], &tfg, &topo).unwrap();
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CompileError::NodeOverloaded { .. }),
            "got {err:?}"
        );
        // A long-enough period admits the same placement.
        assert!(compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            160.0,
            &CompileConfig::default()
        )
        .is_ok());
    }

    #[test]
    fn allocation_arity_checked() {
        let topo = GeneralizedHypercube::binary(2).unwrap();
        let tfg = generators::chain(2, 500, 64);
        let other = generators::chain(3, 500, 64);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&other, &topo);
        let err = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            60.0,
            &CompileConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::AllocationMismatch { .. }));
    }

    #[test]
    fn greedy_scheduler_compiles_and_verifies() {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(4, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let config = CompileConfig {
            greedy_interval_scheduling: true,
            ..CompileConfig::default()
        };
        let sched = compile(&topo, &tfg, &alloc, &timing, 80.0, &config)
            .expect("greedy scheduler compiles the diamond");
        crate::verify(&sched, &topo, &tfg).expect("greedy schedules verify too");
    }

    #[test]
    fn guard_time_separates_and_costs_feasibility() {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::diamond(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);

        // Moderate guard: compiles; every pair of segments on a shared link
        // is separated by >= guard.
        let config = CompileConfig {
            guard_time: 2.0,
            ..CompileConfig::default()
        };
        let sched =
            compile(&topo, &tfg, &alloc, &timing, 75.0, &config).expect("compiles with 2 µs guard");
        crate::verify(&sched, &topo, &tfg).expect("verifies with guard check");
        assert_eq!(sched.guard_time(), 2.0);
        // Directly inspect separations per link.
        for l in 0..sr_topology::Topology::num_links(&topo) {
            let link = sr_topology::LinkId(l);
            let mut spans: Vec<(f64, f64, sr_tfg::MessageId)> = sched
                .segments()
                .iter()
                .filter(|s| sched.assignment().links(s.message).contains(&link))
                .map(|s| (s.start, s.end, s.message))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                if w[0].2 != w[1].2 {
                    assert!(
                        w[1].0 - w[0].1 >= 2.0 - 1e-6,
                        "guard violated on {link}: {w:?}"
                    );
                }
            }
        }

        // Absurd guard: scheduling must fail, typed.
        let config = CompileConfig {
            guard_time: 100.0,
            ..CompileConfig::default()
        };
        let err = compile(&topo, &tfg, &alloc, &timing, 75.0, &config).unwrap_err();
        assert!(
            matches!(err, CompileError::IntervalUnschedulable { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn compiles_dvb_on_cube_at_max_rate() {
        let topo = GeneralizedHypercube::binary(6).unwrap();
        let tfg = sr_tfg::dvb_uniform(6);
        let timing = Timing::calibrated_dvb(128.0); // lighter network load
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            50.0,
            &CompileConfig::default(),
        )
        .expect("DVB at B=128 compiles at max rate");
        assert!(sched.peak_utilization() <= 1.0 + 1e-6);
        crate::verify(&sched, &topo, &tfg).expect("schedule verifies");
    }
}
