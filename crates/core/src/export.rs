//! Dependency-free JSON export of compiled schedules.
//!
//! A schedule `Ω` is the deployment artifact of scheduled routing: each
//! communication processor needs its command list. [`Schedule::to_json`]
//! emits the whole schedule in a stable, documented JSON shape so a runtime
//! (or a notebook) can consume it without linking this crate:
//!
//! ```json
//! {
//!   "period_us": 62.5,
//!   "latency_us": 450.0,
//!   "guard_time_us": 0.0,
//!   "peak_utilization": 0.5,
//!   "messages": [ {"id": 0, "path": [0, 1, 3], "segments": [[10.0, 34.0]]} ],
//!   "nodes": [ {"node": 0, "commands": [
//!       {"start": 10.0, "end": 34.0, "from": "processor", "to": "link:2", "message": 0}
//!   ]} ]
//! }
//! ```
//!
//! Only idle-free entries are emitted (idle nodes appear with empty command
//! lists so array indices equal node ids).

use std::fmt::Write;

use crate::{Port, Schedule};

fn port_str(p: Port) -> String {
    match p {
        Port::Processor => "processor".to_string(),
        Port::Link(l) => format!("link:{}", l.index()),
    }
}

/// Formats an `f64` compactly but losslessly enough for schedules
/// (microsecond quantities with LP-derived fractions).
fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

impl Schedule {
    /// Serializes the schedule to the documented JSON shape (see the module
    /// docs). The output is deterministic.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "{{\"period_us\":{},\"latency_us\":{},\"guard_time_us\":{},\"peak_utilization\":{},",
            num(self.period),
            num(self.latency()),
            num(self.guard_time),
            num(self.peak_utilization)
        );

        s.push_str("\"messages\":[");
        for i in 0..self.assignment.len() {
            if i > 0 {
                s.push(',');
            }
            let m = sr_tfg::MessageId(i);
            let path: Vec<String> = self
                .assignment
                .path(m)
                .nodes()
                .iter()
                .map(|n| n.index().to_string())
                .collect();
            let segs: Vec<String> = self
                .segments
                .iter()
                .filter(|seg| seg.message == m)
                .map(|seg| format!("[{},{}]", num(seg.start), num(seg.end)))
                .collect();
            let _ = write!(
                s,
                "{{\"id\":{i},\"path\":[{}],\"segments\":[{}]}}",
                path.join(","),
                segs.join(",")
            );
        }
        s.push_str("],\"nodes\":[");
        for (n, ns) in self.node_schedules.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            let cmds: Vec<String> = ns
                .commands()
                .iter()
                .map(|c| {
                    format!(
                        "{{\"start\":{},\"end\":{},\"from\":\"{}\",\"to\":\"{}\",\"message\":{}}}",
                        num(c.start),
                        num(c.end),
                        port_str(c.connection.from),
                        port_str(c.connection.to),
                        c.message.index()
                    )
                })
                .collect();
            let _ = write!(
                s,
                "{{\"node\":{},\"commands\":[{}]}}",
                ns.node().index(),
                cmds.join(",")
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile, CompileConfig};
    use sr_tfg::{generators, Timing};
    use sr_topology::GeneralizedHypercube;

    fn compiled() -> crate::Schedule {
        let topo = GeneralizedHypercube::binary(3).unwrap();
        let tfg = generators::chain(3, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            100.0,
            &CompileConfig::default(),
        )
        .expect("compiles")
    }

    /// A minimal structural validator: balanced braces/brackets outside
    /// strings, no trailing commas before closers.
    fn check_json_structure(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        assert_ne!(prev, ',', "trailing comma before {c}");
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced closer");
                    }
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn json_is_structurally_valid_and_complete() {
        let s = compiled();
        let json = s.to_json();
        check_json_structure(&json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"period_us\":100.0",
            "\"latency_us\":",
            "\"peak_utilization\":",
            "\"messages\":[",
            "\"nodes\":[",
            "\"from\":\"processor\"",
            "\"to\":\"processor\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // One entry per message and per node.
        assert_eq!(json.matches("\"id\":").count(), 2);
        assert_eq!(json.matches("\"node\":").count(), 8);
        // Command count matches the schedule.
        let want: usize = s.node_schedules().iter().map(|n| n.commands().len()).sum();
        assert_eq!(json.matches("\"start\":").count(), want);
    }

    #[test]
    fn json_is_deterministic() {
        let s = compiled();
        assert_eq!(s.to_json(), s.to_json());
    }
}
