//! Event replay of a compiled schedule: the scheduled-routing counterpart
//! of the wormhole engine's event stream.
//!
//! [`replay_events`] unfolds the frame-relative switching tables over `n`
//! invocations and narrates them in the same [`SimEvent`] vocabulary the
//! wormhole simulator emits, so the OI analyzer
//! ([`sr_obs::analyze_oi`]) and the Chrome-trace / report renderers work
//! identically on both systems. The structural contrast is visible in the
//! stream itself: a scheduled-routing replay **never contains a
//! [`SimEventKind::HeaderBlocked`] event** — every message finds its whole
//! path clear by construction — whereas a contended wormhole run does,
//! and each block identifies the earlier-invocation culprit.
//!
//! Channel ids use the simulator's directed encoding (`2·link +
//! direction`, direction 1 when the hop goes from the higher-numbered node
//! to the lower), so per-channel occupancy lines up across the two engines.
//! A scheduled segment holds *all* channels of the message's path
//! simultaneously (circuit-style, the paper's "completely clear path"), so
//! the replay emits one acquire/release pair per path channel per segment.

use sr_obs::{SimEvent, SimEventKind, NO_ID};
use sr_tfg::{TaskFlowGraph, Timing};

use crate::execute::{unfold_invocation0, ExecuteError};
use crate::Schedule;

/// Replays `schedule` for `invocations` periodic invocations as a
/// [`SimEvent`] stream, sorted by timestamp (ties keep emission order:
/// message id, then hop, then event kind).
///
/// Event inventory per invocation `j` (all times shifted by `j·τ_in`):
///
/// * [`SimEventKind::MessageInjected`] when the source task completes;
/// * [`SimEventKind::LinkAcquired`] / [`SimEventKind::LinkReleased`] at
///   each unfolded segment's start/end, once per directed channel of the
///   message's path;
/// * [`SimEventKind::FlitDelivered`] at the end of the last segment (the
///   source task's completion for node-local messages);
/// * [`SimEventKind::OutputProduced`] when the last output task finishes.
///
/// # Errors
///
/// [`ExecuteError`] when the schedule breaks a promise — possible only for
/// hand-corrupted schedules (same contract as [`crate::execute`]).
pub fn replay_events(
    schedule: &Schedule,
    tfg: &TaskFlowGraph,
    timing: &Timing,
    invocations: usize,
) -> Result<Vec<SimEvent>, ExecuteError> {
    let period = schedule.period();
    let unfolded = unfold_invocation0(schedule, tfg, timing)?;

    // Directed channel ids per message, hop order.
    let channels: Vec<Vec<u32>> = tfg
        .iter_messages()
        .map(|(i, _)| {
            let nodes = schedule.assignment().path(i).nodes();
            schedule
                .assignment()
                .links(i)
                .iter()
                .zip(nodes.windows(2))
                .map(|(l, w)| (l.index() * 2 + usize::from(w[0] > w[1])) as u32)
                .collect()
        })
        .collect();

    let mut events = Vec::new();
    for j in 0..invocations {
        let shift = j as f64 * period;
        let inv = j as u32;
        for (i, msg) in tfg.iter_messages() {
            let m = i.index();
            events.push(SimEvent {
                time_us: unfolded.finish0[msg.src().index()] + shift,
                kind: SimEventKind::MessageInjected,
                message: m as u32,
                invocation: inv,
                channel: NO_ID,
            });
            for &(a, b) in &unfolded.segments0[m] {
                for &ch in &channels[m] {
                    events.push(SimEvent {
                        time_us: a + shift,
                        kind: SimEventKind::LinkAcquired,
                        message: m as u32,
                        invocation: inv,
                        channel: ch,
                    });
                    events.push(SimEvent {
                        time_us: b + shift,
                        kind: SimEventKind::LinkReleased,
                        message: m as u32,
                        invocation: inv,
                        channel: ch,
                    });
                }
            }
            events.push(SimEvent {
                time_us: unfolded.delivery[m] + shift,
                kind: SimEventKind::FlitDelivered,
                message: m as u32,
                invocation: inv,
                channel: NO_ID,
            });
        }
        events.push(SimEvent {
            time_us: unfolded.out0 + shift,
            kind: SimEventKind::OutputProduced,
            message: NO_ID,
            invocation: inv,
            channel: NO_ID,
        });
    }
    events.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileConfig};
    use sr_tfg::generators;
    use sr_topology::GeneralizedHypercube;

    fn setup() -> (TaskFlowGraph, Timing, Schedule) {
        let topo = GeneralizedHypercube::binary(4).unwrap();
        let tfg = generators::diamond(4, 500, 1280);
        let timing = Timing::new(64.0, 10.0);
        let alloc = sr_mapping::greedy(&tfg, &topo);
        let sched = compile(
            &topo,
            &tfg,
            &alloc,
            &timing,
            80.0,
            &CompileConfig::default(),
        )
        .expect("compiles");
        (tfg, timing, sched)
    }

    #[test]
    fn replay_is_blockfree_and_exactly_periodic() {
        let (tfg, timing, sched) = setup();
        let events = replay_events(&sched, &tfg, &timing, 12).expect("replays");
        assert!(!events.is_empty());
        // Scheduled routing never blocks a header.
        assert!(events.iter().all(|e| e.kind != SimEventKind::HeaderBlocked));
        // Sorted, with balanced acquire/release counts.
        assert!(events.windows(2).all(|w| w[1].time_us >= w[0].time_us));
        let count = |k: SimEventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(
            count(SimEventKind::LinkAcquired),
            count(SimEventKind::LinkReleased)
        );
        assert_eq!(count(SimEventKind::OutputProduced), 12);
        assert_eq!(
            count(SimEventKind::MessageInjected),
            12 * tfg.num_messages()
        );
        // The analyzer sees exactly-τ_in spacing — Eq. (1) operationally.
        let report = sr_obs::analyze_oi(&events, sched.period(), 2);
        assert_eq!(report.outputs.len(), 10);
        assert!(report.is_consistent(1e-9));
        assert!(report.stalls.is_empty());
        // And it agrees with execute() about the output instants.
        let alloc_topo = GeneralizedHypercube::binary(4).unwrap();
        let alloc = sr_mapping::greedy(&tfg, &alloc_topo);
        let exec = crate::execute(&sched, &tfg, &alloc, &timing, 12).unwrap();
        assert!((report.outputs[0] - exec.invocations()[2].output_time).abs() < 1e-9);
    }

    #[test]
    fn replay_rejects_corrupted_schedule() {
        let (tfg, timing, mut sched) = setup();
        let victim = (0..tfg.num_messages())
            .map(sr_tfg::MessageId)
            .find(|&m| !sched.assignment().links(m).is_empty())
            .unwrap();
        sched.segments.retain(|s| s.message != victim);
        let err = replay_events(&sched, &tfg, &timing, 3).unwrap_err();
        assert_eq!(err, ExecuteError::MissingSegments { message: victim });
    }
}
